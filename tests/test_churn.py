"""Tests for the federation churn subsystem.

Covers the churn schedule/controller lifecycle, replica groups and
client-side failover (retry policies, health tracking, dead-server
timeouts), the multi-worker server queue, and the end-to-end scenario the
subsystem exists for: a server crashes mid-run, clients fail over to a
replica, caches expire on schedule under the rewinding round clock, and the
crashed server's re-registration is rediscovered within one TTL.
"""

from __future__ import annotations

import pytest

from repro.churn import (
    ChurnController,
    ChurnEvent,
    ChurnEventKind,
    ChurnSchedule,
    ReplicaHealth,
    RetryPolicy,
    replica_server_id,
)
from repro.core.config import FederationConfig
from repro.core.errors import FederationConfigError
from repro.core.federation import Federation
from repro.dns.records import SrvData
from repro.geometry.point import LatLng
from repro.simulation.clock import SimulatedClock
from repro.simulation.network import SimulatedNetwork
from repro.simulation.queueing import ServerOverloadedError, ServerQueue, ServiceTimeModel
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.indoor import generate_store
from repro.worldgen.scenario import build_scenario

ANCHOR = LatLng(40.4410, -79.9570)


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
class TestChurnSchedule:
    SERVERS = ["alpha.example", "beta.example", "gamma.example"]

    def test_poisson_deterministic(self):
        def make(seed):
            return ChurnSchedule.poisson(
                self.SERVERS, rate_per_minute=4.0, horizon_seconds=600.0, seed=seed
            )

        assert make(1).events == make(1).events
        assert make(1).events != make(2).events

    def test_events_sorted_and_paired(self):
        schedule = ChurnSchedule.poisson(
            self.SERVERS, rate_per_minute=6.0, horizon_seconds=600.0,
            downtime_seconds=30.0, seed=3,
        )
        assert len(schedule) > 0
        times = [event.at_seconds for event in schedule]
        assert times == sorted(times)
        # Every failure is followed by exactly one rejoin 30s later.
        failures = [e for e in schedule if e.kind != ChurnEventKind.JOIN]
        joins = [e for e in schedule if e.kind == ChurnEventKind.JOIN]
        assert len(failures) == len(joins)
        join_times = {(e.server_id, e.at_seconds) for e in joins}
        for failure in failures:
            assert (failure.server_id, failure.at_seconds + 30.0) in join_times

    def test_never_fails_a_server_that_is_down(self):
        schedule = ChurnSchedule.poisson(
            ["solo.example"], rate_per_minute=60.0, horizon_seconds=600.0,
            downtime_seconds=120.0, seed=7,
        )
        down_until = 0.0
        for event in schedule:
            if event.kind == ChurnEventKind.JOIN:
                continue
            assert event.at_seconds >= down_until
            down_until = event.at_seconds + 120.0

    def test_zero_rate_or_no_servers_is_empty(self):
        assert len(ChurnSchedule.poisson([], 5.0, 100.0)) == 0
        assert len(ChurnSchedule.poisson(self.SERVERS, 0.0, 100.0)) == 0

    def test_crash_fraction_zero_gives_leaves(self):
        schedule = ChurnSchedule.poisson(
            self.SERVERS, rate_per_minute=6.0, horizon_seconds=600.0,
            crash_fraction=0.0, seed=1,
        )
        failures = [e for e in schedule if e.kind != ChurnEventKind.JOIN]
        assert failures and all(e.kind == ChurnEventKind.LEAVE for e in failures)

    def test_from_events_sorts(self):
        schedule = ChurnSchedule.from_events([
            ChurnEvent(20.0, ChurnEventKind.JOIN, "a"),
            ChurnEvent(5.0, ChurnEventKind.CRASH, "a"),
        ])
        assert [e.at_seconds for e in schedule] == [5.0, 20.0]
        assert schedule.horizon_seconds == 20.0
        assert schedule.servers == ("a",)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(-1.0, ChurnEventKind.CRASH, "a")
        with pytest.raises(ValueError):
            ChurnSchedule.poisson(self.SERVERS, -1.0, 100.0)
        with pytest.raises(ValueError):
            ChurnSchedule.poisson(self.SERVERS, 1.0, 100.0, downtime_seconds=0.0)
        with pytest.raises(ValueError):
            ChurnSchedule.poisson(self.SERVERS, 1.0, 100.0, crash_fraction=1.5)


# ----------------------------------------------------------------------
# Retry policies and health
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_immediate_never_waits(self):
        policy = RetryPolicy.immediate()
        assert policy.delay_ms(1) == 0.0
        assert policy.delay_ms(3, utilization=0.9) == 0.0

    def test_exponential_grows_and_caps(self):
        policy = RetryPolicy.exponential(base_delay_ms=10.0, multiplier=2.0, max_delay_ms=35.0)
        assert policy.delay_ms(1) == 10.0
        assert policy.delay_ms(2) == 20.0
        assert policy.delay_ms(3) == 35.0  # capped

    def test_utilization_scales_backoff(self):
        policy = RetryPolicy.utilization_aware(base_delay_ms=10.0, max_delay_ms=10_000.0)
        calm = policy.delay_ms(1, utilization=0.0)
        hot = policy.delay_ms(1, utilization=0.9)
        assert hot > calm
        assert hot == pytest.approx(10.0 / 0.1)
        # Dead server (utilization 1.0) is clamped, not infinite.
        assert policy.delay_ms(1, utilization=1.0) == pytest.approx(10.0 / 0.05)

    def test_no_delay_before_first_failure(self):
        assert RetryPolicy.exponential().delay_ms(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(kind="bogus")
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestReplicaHealth:
    def test_failure_demotes_until_cooldown(self):
        clock = SimulatedClock()
        health = ReplicaHealth(clock=clock, cooldown_seconds=30.0)
        assert health.is_healthy("r0")
        health.record_failure("r0")
        assert not health.is_healthy("r0")
        clock.advance(31.0)
        assert health.is_healthy("r0")
        # Serving out the demotion wipes the slate: a rejoined replica must
        # win traffic back rather than stay demoted by old history.
        assert health.failure_count("r0") == 0

    def test_success_rehabilitates_immediately(self):
        clock = SimulatedClock()
        health = ReplicaHealth(clock=clock, cooldown_seconds=30.0)
        health.record_failure("r0")
        health.record_success("r0")
        assert health.is_healthy("r0")
        assert health.failure_count("r0") == 0

    def test_sort_key_prefers_healthy_then_fewest_failures(self):
        clock = SimulatedClock()
        health = ReplicaHealth(clock=clock, cooldown_seconds=30.0)
        health.record_failure("r0")
        order = sorted(["r0", "r1"], key=health.sort_key)
        assert order == ["r1", "r0"]


# ----------------------------------------------------------------------
# Federation lifecycle + replica groups
# ----------------------------------------------------------------------
@pytest.fixture()
def federation() -> Federation:
    return Federation()


def deploy_store(federation: Federation, name: str = "churnstore.example", seed: int = 4):
    store = generate_store(name, ANCHOR, seed=seed)
    federation.add_map_server(name, store.map_data)
    return store


class TestFederationChurnLifecycle:
    def test_crash_keeps_records_but_unreaches_server(self, federation: Federation):
        deploy_store(federation)
        records_before = federation.registry.total_records
        federation.crash_map_server("churnstore.example")
        assert "churnstore.example" not in federation.servers
        assert federation.is_offline("churnstore.example")
        assert federation.registry.total_records == records_before
        assert federation.registration_for("churnstore.example") is not None

    def test_leave_withdraws_records_immediately(self, federation: Federation):
        deploy_store(federation)
        federation.leave_map_server("churnstore.example")
        assert federation.registry.total_records == 0
        assert federation.is_offline("churnstore.example")

    def test_revive_after_crash_keeps_registration(self, federation: Federation):
        deploy_store(federation)
        federation.crash_map_server("churnstore.example")
        server = federation.revive_map_server("churnstore.example")
        assert federation.servers["churnstore.example"] is server
        assert federation.registration_for("churnstore.example") is not None
        assert not federation.is_offline("churnstore.example")

    def test_revive_after_lease_expiry_reregisters(self, federation: Federation):
        deploy_store(federation)
        federation.crash_map_server("churnstore.example")
        federation.expire_registration("churnstore.example")
        assert federation.registration_for("churnstore.example") is None
        assert federation.registry.total_records == 0
        federation.revive_map_server("churnstore.example")
        assert federation.registration_for("churnstore.example") is not None
        assert federation.registry.total_records > 0

    def test_lifecycle_errors(self, federation: Federation):
        with pytest.raises(FederationConfigError):
            federation.crash_map_server("ghost.example")
        with pytest.raises(FederationConfigError):
            federation.leave_map_server("ghost.example")
        with pytest.raises(FederationConfigError):
            federation.revive_map_server("ghost.example")

    def test_offline_servers_listed(self, federation: Federation):
        deploy_store(federation)
        federation.crash_map_server("churnstore.example")
        assert federation.offline_server_ids == ("churnstore.example",)
        assert "churnstore.example" in federation.all_servers


class TestReplicaGroups:
    def test_replicas_share_spatial_names(self, federation: Federation):
        store = generate_store("shop.example", ANCHOR, seed=4)
        group = federation.add_replica_group("shop.example", store.map_data, replica_count=3)
        assert group.server_ids == (
            "r0.shop.example", "r1.shop.example", "r2.shop.example"
        )
        # Every covering cell advertises all three replicas.
        registration = federation.registration_for("r0.shop.example")
        assert registration is not None
        for cell in registration.cells:
            targets = {
                SrvData.decode(r.data).target
                for r in federation.registry.records_for_cell(cell)
            }
            assert set(group.server_ids) <= targets
        # Membership is recoverable from any replica id.
        assert federation.group_for("r1.shop.example") is group
        assert replica_server_id("shop.example", 1) == "r1.shop.example"

    def test_replica_discovery_returns_all_replicas(self, federation: Federation):
        store = generate_store("shop.example", ANCHOR, seed=4)
        federation.add_replica_group("shop.example", store.map_data, replica_count=2)
        client = federation.client()
        result = client.discover(store.entrance, uncertainty_meters=50.0)
        assert "r0.shop.example" in result.server_ids
        assert "r1.shop.example" in result.server_ids

    def test_replica_group_validation(self, federation: Federation):
        store = generate_store("shop.example", ANCHOR, seed=4)
        with pytest.raises(FederationConfigError):
            federation.add_replica_group("shop.example", store.map_data, replica_count=0)
        federation.add_replica_group("shop.example", store.map_data, replica_count=2)
        with pytest.raises(FederationConfigError):
            federation.add_replica_group("shop.example", store.map_data, replica_count=2)


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------
class TestChurnController:
    def make(self, federation: Federation, events, lease: float | None = None):
        return ChurnController(
            federation=federation,
            schedule=ChurnSchedule.from_events(events),
            lease_seconds=lease,
        )

    def test_applies_due_events_in_order(self, federation: Federation):
        deploy_store(federation)
        controller = self.make(federation, [
            ChurnEvent(10.0, ChurnEventKind.CRASH, "churnstore.example"),
            ChurnEvent(50.0, ChurnEventKind.JOIN, "churnstore.example"),
        ])
        assert controller.apply_until(5.0) == []
        applied = controller.apply_until(12.0)
        assert [e.kind for e in applied] == ["crash"]
        assert federation.is_offline("churnstore.example")
        applied = controller.apply_until(60.0)
        assert [e.kind for e in applied] == ["join"]
        assert "churnstore.example" in federation.servers
        assert controller.rejoined_at["churnstore.example"] == 50.0

    def test_lease_expiry_withdraws_records_of_crashed_server(self, federation: Federation):
        deploy_store(federation)
        controller = self.make(
            federation,
            [ChurnEvent(10.0, ChurnEventKind.CRASH, "churnstore.example")],
            lease=30.0,
        )
        controller.apply_until(15.0)
        assert federation.registry.total_records > 0  # lease still running
        applied = controller.apply_until(45.0)
        assert [e.kind for e in applied] == ["lease-expired"]
        assert federation.registry.total_records == 0

    def test_rejoin_before_lease_keeps_registration(self, federation: Federation):
        deploy_store(federation)
        controller = self.make(
            federation,
            [
                ChurnEvent(10.0, ChurnEventKind.CRASH, "churnstore.example"),
                ChurnEvent(20.0, ChurnEventKind.JOIN, "churnstore.example"),
            ],
            lease=30.0,
        )
        applied = controller.apply_until(100.0)
        kinds = [(e.kind, e.applied) for e in applied]
        assert ("crash", True) in kinds and ("join", True) in kinds
        # The rejoin refreshed the lease: the pending expiry was cancelled
        # outright, so the registration survives untouched.
        assert all(e.kind != "lease-expired" for e in applied)
        assert controller.pending_events == 0
        assert federation.registry.total_records > 0

    def test_rejoin_cancels_stale_lease_expiry(self, federation: Federation):
        """Regression: a crash→rejoin→crash sequence must not have the first
        crash's lease expiry withdraw the second crash's records early."""
        deploy_store(federation)
        controller = self.make(
            federation,
            [
                ChurnEvent(0.0, ChurnEventKind.CRASH, "churnstore.example"),
                ChurnEvent(10.0, ChurnEventKind.JOIN, "churnstore.example"),
                ChurnEvent(50.0, ChurnEventKind.CRASH, "churnstore.example"),
            ],
            lease=100.0,
        )
        # At t=120 only the second crash's lease (ends t=150) is running:
        # the records must still be there.
        applied = controller.apply_until(120.0)
        assert "lease-expired" not in [e.kind for e in applied]
        assert federation.registry.total_records > 0
        applied = controller.apply_until(160.0)
        assert [e.kind for e in applied] == ["lease-expired"]
        assert federation.registry.total_records == 0

    def test_inapplicable_events_are_recorded_not_fatal(self, federation: Federation):
        controller = self.make(federation, [
            ChurnEvent(1.0, ChurnEventKind.CRASH, "ghost.example"),
            ChurnEvent(2.0, ChurnEventKind.JOIN, "ghost.example"),
        ])
        applied = controller.apply_until(10.0)
        assert all(not event.applied for event in applied)

    def test_default_lease_is_registration_ttl(self, federation: Federation):
        controller = self.make(federation, [])
        assert controller.effective_lease_seconds == federation.config.registration_ttl_seconds


# ----------------------------------------------------------------------
# Multi-worker server queue (satellite: worker-count × per-worker queue)
# ----------------------------------------------------------------------
class TestMultiWorkerQueue:
    def make_queue(self, workers: int, service_ms: float = 10.0, capacity: int = 64) -> ServerQueue:
        return ServerQueue(
            network=SimulatedNetwork(),
            service_times=ServiceTimeModel(default_ms=service_ms),
            capacity=capacity,
            workers=workers,
        )

    def test_concurrent_arrivals_spread_across_workers(self):
        queue = self.make_queue(workers=2, service_ms=10.0)
        clock = queue.network.clock
        totals = []
        for _ in range(3):
            clock.rewind_to(0.0)
            totals.append(queue.process("search"))
        # Two requests run in parallel with zero wait; the third queues
        # behind the earliest-finishing worker.
        assert totals == [pytest.approx(10.0), pytest.approx(10.0), pytest.approx(20.0)]
        assert queue.stats.max_depth == 1

    def test_four_workers_quadruple_the_knee(self):
        def drive(workers: int) -> ServerQueue:
            queue = self.make_queue(workers=workers, service_ms=10.0, capacity=10_000)
            clock = queue.network.clock
            for index in range(200):
                arrival = index * 0.0025  # 4x a single worker's service rate
                if clock.now() > arrival:
                    clock.rewind_to(arrival)
                elif clock.now() < arrival:
                    clock.advance(arrival - clock.now())
                queue.process("search")
            return queue

        single = drive(1)
        quad = drive(4)
        # One worker at 4x offered load: the backlog grows without bound.
        assert single.stats.mean_wait_ms > 100.0
        # Four workers absorb the same stream at the saturation edge.
        assert quad.stats.mean_wait_ms < single.stats.mean_wait_ms / 10.0
        window = 200 * 0.0025
        assert quad.stats.utilization(window, workers=4) == pytest.approx(1.0, rel=0.1)

    def test_per_worker_capacity_bounds_backlog(self):
        queue = self.make_queue(workers=2, service_ms=10.0, capacity=1)
        clock = queue.network.clock
        for _ in range(2):
            clock.rewind_to(0.0)
            queue.process("search")
        clock.rewind_to(0.0)
        with pytest.raises(ServerOverloadedError):
            queue.process("search")
        assert queue.stats.dropped == 1

    def test_snapshot_reports_workers_and_normalized_utilization(self):
        queue = self.make_queue(workers=2, service_ms=10.0)
        clock = queue.network.clock
        for _ in range(2):
            clock.rewind_to(0.0)
            queue.process("search")
        snapshot = queue.snapshot(window_seconds=0.010)
        assert snapshot["workers"] == 2.0
        # 20ms of busy time over a 10ms window and 2 workers = fully busy.
        assert snapshot["utilization"] == pytest.approx(1.0)

    def test_worker_count_validated_and_wired_from_config(self):
        with pytest.raises(ValueError):
            ServerQueue(network=SimulatedNetwork(), workers=0)
        config = FederationConfig(
            service_times=ServiceTimeModel(default_ms=2.0), server_workers=3
        )
        federation = Federation(config=config)
        store = generate_store("multiworker.example", ANCHOR, seed=4)
        server = federation.add_map_server("multiworker.example", store.map_data)
        assert server.queue is not None and server.queue.workers == 3


# ----------------------------------------------------------------------
# Client-side failover
# ----------------------------------------------------------------------
def replicated_federation(replicas: int = 2, **config_kwargs) -> tuple[Federation, object]:
    config = FederationConfig(
        retry_policy=RetryPolicy.exponential(base_delay_ms=5.0, dead_server_timeout_ms=100.0),
        **config_kwargs,
    )
    federation = Federation(config=config)
    store = generate_store("shop.example", ANCHOR, seed=4)
    federation.add_replica_group("shop.example", store.map_data, replica_count=replicas)
    return federation, store


def first_pick(federation: Federation, seed: int, ids: tuple[str, ...]) -> str:
    """The replica a device with selection seed ``seed`` will try first.

    A probe client with the same seed replays the same weighted-selection
    RNG stream, so its first planning draw predicts the real client's.
    """
    probe = federation.client(selection_seed=seed)
    return probe.context.targets(list(ids))[0].candidate_ids[0]


class TestClientFailover:
    REPLICA_IDS = ("r0.shop.example", "r1.shop.example")

    def test_dead_replica_fails_over_to_live_one(self):
        federation, store = replicated_federation(replicas=2)
        # Crash the replica the client's weighted selection will try first,
        # so the run actually exercises a stale attempt + failover.
        federation.crash_map_server(first_pick(federation, 1, self.REPLICA_IDS))
        client = federation.client(selection_seed=1)
        result = client.search("milk", near=store.entrance, radius_meters=150.0)
        assert len(result) > 0
        recorder = client.context.failover
        assert recorder.chains_ok >= 1
        assert recorder.chains_failed == 0
        assert recorder.stale_attempts >= 1
        assert recorder.failovers >= 1
        assert len(recorder.failover_ms) == recorder.failovers
        # The dead attempt cost a full timeout message.
        assert federation.network.stats.messages_by_kind.get("mapserver.timeout", 0) >= 1
        # The client façade mirrors the recorder.
        stats = client.availability_stats()
        assert stats["failovers"] == float(recorder.failovers)
        assert stats["stale_attempts"] == float(recorder.stale_attempts)

    def test_health_tracker_avoids_known_dead_replica(self):
        federation, store = replicated_federation(replicas=2)
        federation.crash_map_server("r0.shop.example")
        client = federation.client()
        client.search("milk", near=store.entrance, radius_meters=150.0)
        timeouts_before = federation.network.stats.messages_by_kind.get("mapserver.timeout", 0)
        client.search("bread", near=store.entrance, radius_meters=150.0)
        timeouts_after = federation.network.stats.messages_by_kind.get("mapserver.timeout", 0)
        # Within the cooldown the demoted replica is not retried first.
        assert timeouts_after == timeouts_before

    def test_every_replica_dead_exhausts_chain(self):
        federation, store = replicated_federation(replicas=2)
        federation.crash_map_server("r0.shop.example")
        federation.crash_map_server("r1.shop.example")
        client = federation.client()
        result = client.search("milk", near=store.entrance, radius_meters=150.0)
        assert len(result) == 0
        recorder = client.context.failover
        assert recorder.chains_failed >= 1
        assert recorder.chains_ok == 0

    def test_overloaded_replica_fails_over(self):
        federation, store = replicated_federation(
            replicas=2,
            service_times=ServiceTimeModel(default_ms=60_000.0),
            server_queue_capacity=1,
        )
        # Saturate the first-picked replica's only queue slot far into the
        # future, then rewind close enough that an arriving request cannot
        # fit in the idle gap before the busy interval starts.
        clock = federation.network.clock
        victim = first_pick(federation, 1, self.REPLICA_IDS)
        clock.advance(100.0)
        federation.servers[victim].queue.process("search")
        clock.rewind_to(50.0)
        client = federation.client(selection_seed=1)
        result = client.search("milk", near=store.entrance, radius_meters=150.0)
        assert len(result) > 0
        recorder = client.context.failover
        assert recorder.failovers >= 1
        assert recorder.backoff_ms_total > 0.0  # the retry policy paced it

    def test_utilization_backoff_paced_by_failed_server_load(self):
        """Regression: the retry delay is scaled by the *failed* server's
        load, not by whichever candidate is tried next."""
        from repro.churn.failover import (
            FailoverRecorder,
            RequestTarget,
            execute_with_failover,
        )

        class Saturated:
            server_id = "hot"
            queue = None  # load unknown -> reads as 0.0 via queue=None

        class Idle:
            server_id = "cool"
            queue = None

        network = SimulatedNetwork()
        policy = RetryPolicy.utilization_aware(base_delay_ms=10.0, max_delay_ms=10_000.0)
        # Dead first candidate (load 1.0) then a live one: the backoff before
        # the live attempt must be paced by the dead server's load (1.0,
        # clamped to 0.95 -> 10/0.05 = 200ms), not the live server's 0.0.
        target = RequestTarget(key="g", candidates=(("dead", None), ("cool", Idle())))
        recorder = FailoverRecorder()
        result = execute_with_failover(
            target, lambda server: "ok", network=network, policy=policy,
            health=None, recorder=recorder,
        )
        assert result == "ok"
        assert recorder.backoff_ms_total == pytest.approx(10.0 / 0.05)

    def test_legacy_path_without_policy_skips_silently(self):
        config = FederationConfig()  # no retry policy
        federation = Federation(config=config)
        store = generate_store("shop.example", ANCHOR, seed=4)
        federation.add_map_server("shop.example", store.map_data)
        federation.crash_map_server("shop.example")
        client = federation.client()
        result = client.search("milk", near=store.entrance, radius_meters=150.0)
        assert len(result) == 0
        recorder = client.context.failover
        # No chain even started: the dead id was silently dropped, exactly
        # the historical behaviour (and zero timeout messages were paid).
        assert recorder.stale_attempts == 0
        assert recorder.chains_failed == 0
        assert federation.network.stats.messages_by_kind.get("mapserver.timeout", 0) == 0


# ----------------------------------------------------------------------
# End-to-end: crash mid-run, failover, cache expiry, rediscovery
# ----------------------------------------------------------------------
class TestEngineChurnEndToEnd:
    def churn_scenario(self, replicas: int, registration_ttl: float = 120.0):
        config = FederationConfig(
            registration_ttl_seconds=registration_ttl,
            device_discovery_cache_ttl_seconds=60.0,
            client_tile_cache_entries=64,
            service_times=ServiceTimeModel(default_ms=2.0),
            retry_policy=RetryPolicy.utilization_aware(),
        )
        return build_scenario(
            store_count=1, city_rows=4, city_cols=4, config=config, seed=21,
            store_replicas=replicas,
        )

    def test_crash_failover_and_rediscovery_within_one_ttl(self):
        scenario = self.churn_scenario(replicas=2)
        victim = scenario.store_replica_ids(0)[0]
        schedule = ChurnSchedule.from_events([
            ChurnEvent(15.0, ChurnEventKind.CRASH, victim),
            ChurnEvent(60.0, ChurnEventKind.JOIN, victim),
        ])
        engine = WorkloadEngine(
            scenario,
            WorkloadConfig(clients=10, steps=12, seed=3, step_seconds=10.0, churn=schedule),
        )
        report = engine.run()
        availability = report.availability()
        # Clients failed over to the surviving replica: no chain exhausted.
        assert availability["failovers"] > 0
        assert availability["failed_chains"] == 0.0
        assert availability["failover_p95_ms"] >= availability["failover_p50_ms"] > 0.0
        # The rejoined replica was rediscovered within one registration TTL.
        assert report.rediscoveries == 1
        assert availability["rediscovery_seconds_mean"] <= 120.0
        assert report.churn_events_applied == 2

    def test_single_replica_crash_degrades_availability(self):
        scenario = self.churn_scenario(replicas=1)
        victim = scenario.store_replica_ids(0)[0]
        schedule = ChurnSchedule.from_events([
            ChurnEvent(15.0, ChurnEventKind.CRASH, victim),
            ChurnEvent(80.0, ChurnEventKind.JOIN, victim),
        ])
        engine = WorkloadEngine(
            scenario,
            WorkloadConfig(clients=10, steps=10, seed=3, step_seconds=10.0, churn=schedule),
        )
        report = engine.run()
        availability = report.availability()
        assert availability["failed_chains"] > 0
        assert availability["stale_attempts"] > 0
        assert report.failed_requests > 0
        # Availability metrics land in the deterministic snapshot.
        snapshot = report.snapshot()
        assert snapshot["availability.failed_chains"] == availability["failed_chains"]
        assert snapshot["churn.crash"] == 1.0
        assert snapshot["churn.join"] == 1.0

    def test_churn_run_is_deterministic(self):
        def one_run():
            scenario = self.churn_scenario(replicas=2)
            victim = scenario.store_replica_ids(0)[0]
            schedule = ChurnSchedule.from_events([
                ChurnEvent(15.0, ChurnEventKind.CRASH, victim),
                ChurnEvent(60.0, ChurnEventKind.JOIN, victim),
            ])
            engine = WorkloadEngine(
                scenario,
                WorkloadConfig(clients=8, steps=6, seed=11, step_seconds=10.0, churn=schedule),
            )
            return engine.run().snapshot()

        assert one_run() == one_run()


class TestCacheExpiryUnderRewindingClock:
    """DnsCache/DiscoveryCache entries expire on schedule while the clock
    rewinds between concurrent branches, exactly as in an engine round."""

    def build(self):
        config = FederationConfig(
            registration_ttl_seconds=60.0,
            device_discovery_cache_ttl_seconds=120.0,
            retry_policy=RetryPolicy.exponential(),
        )
        federation = Federation(config=config)
        store = generate_store("churnstore.example", ANCHOR, seed=4)
        federation.add_map_server("churnstore.example", store.map_data)
        return federation, store

    def advance_with_rewinds(self, clock, seconds: float, chunk: float = 20.0) -> None:
        """Advance like the engine: overshoot then rewind within each round."""
        remaining = seconds
        while remaining > 0.0:
            step = min(chunk, remaining)
            start = clock.now()
            clock.advance(step + 1.0)
            clock.rewind_to(start + step)
            remaining -= step

    def test_stale_then_expired_then_rediscovered(self):
        federation, store = self.build()
        clock = federation.network.clock
        client = federation.client()
        def probe():
            return client.discover(store.entrance, uncertainty_meters=50.0).server_ids

        assert "churnstore.example" in probe()

        # Crash: records linger at the authority, caches are stale-but-live.
        federation.crash_map_server("churnstore.example")
        assert "churnstore.example" in probe()

        # Lease expiry: the authority stops answering immediately — but the
        # device keeps resolving the dead name from caches until TTLs lapse.
        federation.expire_registration("churnstore.example")
        assert "churnstore.example" in probe()
        dns_cache = federation.resolver.cache

        # 70 simulated seconds (> the 60s record TTL) pass in engine-style
        # rewound rounds; every cached answer lapses on schedule.
        self.advance_with_rewinds(clock, 70.0)
        assert "churnstore.example" not in probe()

        # The resolver cache holds no live positive entry naming the dead
        # server: every cached answer lapsed on schedule.
        for entry in list(dns_cache._positive.values()):
            assert entry.expires_at <= clock.now() or all(
                "churnstore" not in record.data for record in entry.records
            )

        # Revive: within one record TTL (which also bounds the negative
        # cache), the re-registered server is discoverable again.
        rejoined_at = clock.now()
        federation.revive_map_server("churnstore.example")
        self.advance_with_rewinds(clock, 61.0)
        assert "churnstore.example" in probe()
        # One TTL of waiting plus the discovery walk itself.
        assert clock.now() - rejoined_at <= 65.0