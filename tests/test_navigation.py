"""Tests for turn-by-turn navigation sessions over federated routes."""

from __future__ import annotations

import random

import pytest

from repro.localization.imu import MotionUpdate
from repro.services.navigation import NavigationSession, NavigationState
from repro.worldgen.scenario import build_scenario, outdoor_point_near


@pytest.fixture(scope="module")
def navigation_setup():
    scenario = build_scenario(store_count=1, include_campus=False, seed=77)
    client = scenario.federation.client()
    store = scenario.stores[0]
    origin = outdoor_point_near(scenario, 0, 160.0)
    destination = store.product_locations["wasabi seaweed snack"]
    route = client.route(origin, destination)
    return scenario, client, store, route


def _walk_route(session: NavigationSession, route, store, client_rng, cue_every: int = 3):
    """Walk the route points, feeding motion updates and periodic cues."""
    points = route.route.points
    step_index = 0
    for previous, current in zip(points, points[1:]):
        distance = previous.distance_to(current)
        if distance <= 0.01:
            continue
        step_index += 1
        motion = MotionUpdate(previous.initial_bearing_to(current), distance)
        cues = None
        if step_index % cue_every == 0 and store.map_data.covers_point(current):
            local = store.geographic_to_local(current)
            cues = store.sense_cues(local, client_rng)
        update = session.advance(motion, cues)
    return update


class TestNavigationSession:
    def test_requires_a_real_route(self, navigation_setup):
        scenario, client, store, route = navigation_setup
        session = NavigationSession(route=route, localizer=client.localizer)
        assert session.state == NavigationState.ON_ROUTE
        assert not session.has_arrived

    def test_walking_the_route_arrives(self, navigation_setup):
        scenario, client, store, route = navigation_setup
        session = NavigationSession(route=route, localizer=client.localizer, arrival_threshold_meters=8.0)
        rng = random.Random(1)
        last_update = _walk_route(session, route, store, rng)
        assert last_update.state == NavigationState.ARRIVED
        assert session.has_arrived
        assert last_update.remaining_meters < 25.0

    def test_updates_track_route_distance(self, navigation_setup):
        scenario, client, store, route = navigation_setup
        session = NavigationSession(route=route, localizer=client.localizer)
        rng = random.Random(2)
        _walk_route(session, route, store, rng)
        assert session.updates
        assert all(u.distance_to_route_meters < 40.0 for u in session.updates)
        remaining = [u.remaining_meters for u in session.updates]
        assert remaining[-1] < remaining[0]

    def test_guidance_hands_over_to_the_store_server(self, navigation_setup):
        scenario, client, store, route = navigation_setup
        if store.name not in route.servers:
            pytest.skip("route did not include an indoor leg for this seed")
        session = NavigationSession(route=route, localizer=client.localizer)
        rng = random.Random(3)
        _walk_route(session, route, store, rng)
        servers = session.servers_used()
        assert store.name in servers
        # Outdoor guidance precedes indoor guidance.
        assert servers[-1] == store.name

    def test_indoor_fixes_come_from_the_store(self, navigation_setup):
        scenario, client, store, route = navigation_setup
        session = NavigationSession(route=route, localizer=client.localizer)
        rng = random.Random(4)
        _walk_route(session, route, store, rng, cue_every=2)
        indoor_sources = {
            u.localization_source
            for u in session.updates
            if u.localization_source is not None
        }
        assert store.name in indoor_sources

    def test_wandering_off_route_is_detected(self, navigation_setup):
        scenario, client, store, route = navigation_setup
        session = NavigationSession(
            route=route, localizer=client.localizer, off_route_threshold_meters=25.0
        )
        # Walk perpendicular to the route's initial bearing for 100 m.
        points = route.route.points
        away_bearing = (points[0].initial_bearing_to(points[1]) + 90.0) % 360.0
        update = None
        for _ in range(10):
            update = session.advance(MotionUpdate(away_bearing, 10.0))
        assert update is not None
        assert update.state == NavigationState.OFF_ROUTE

    def test_degenerate_route_rejected(self, navigation_setup):
        scenario, client, store, route = navigation_setup
        from dataclasses import replace

        from repro.routing.stitching import StitchedRoute

        single_point = StitchedRoute(
            points=(route.route.points[0],),
            legs=route.route.legs[:1],
            connector_meters=0.0,
            total_cost=0.0,
        )
        broken = replace(route, route=single_point)
        with pytest.raises(ValueError):
            NavigationSession(route=broken, localizer=client.localizer)
