"""The event heap, cohort planning, and the large-fleet fast path.

The byte-identity half of the engine refactor is gated by
``test_engine_equivalence.py``; this module covers the new machinery
itself: deterministic heap ordering, cohort partitioning arithmetic,
tracer weighting, phantom load charging, and the fast path's scaling and
determinism properties.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.config import FederationConfig
from repro.simulation.queueing import ServiceTimeModel
from repro.workload import (
    Cohort,
    EventHeap,
    EventKind,
    WorkloadConfig,
    WorkloadEngine,
    plan_cohorts,
)
from repro.worldgen.scenario import build_scenario


def small_scenario(**kw):
    kw.setdefault("store_count", 2)
    kw.setdefault("city_rows", 4)
    kw.setdefault("city_cols", 4)
    kw.setdefault("seed", 33)
    kw.setdefault("reuse_worlds", True)
    return build_scenario(**kw)


class TestEventHeap:
    def test_orders_by_time_then_kind_then_sequence(self):
        heap = EventHeap()
        heap.push(5.0, EventKind.ROUND_END)
        heap.push(5.0, EventKind.CHURN)
        heap.push(1.0, EventKind.DEVICE, payload="late-pushed, early-time")
        heap.push(5.0, EventKind.DEVICE, payload="a")
        heap.push(5.0, EventKind.DEVICE, payload="b")
        heap.push(5.0, EventKind.CONTROL)
        popped = [heap.pop() for _ in range(len(heap))]
        assert [e.kind for e in popped] == [
            EventKind.DEVICE,  # t=1.0
            EventKind.CHURN,
            EventKind.CONTROL,
            EventKind.DEVICE,
            EventKind.DEVICE,
            EventKind.ROUND_END,
        ]
        # Same time + same kind pops FIFO by insertion sequence.
        assert [e.payload for e in popped[3:5]] == ["a", "b"]

    def test_kind_ranks_replicate_round_statement_order(self):
        """The legacy loop's statement order is churn → control → round
        begin → devices → round end; the IntEnum ranks must match it."""
        assert (
            EventKind.CHURN
            < EventKind.CONTROL
            < EventKind.ROUND_BEGIN
            < EventKind.DEVICE
            < EventKind.COHORT
            < EventKind.ROUND_END
        )

    def test_peek_and_bool(self):
        heap = EventHeap()
        assert not heap
        assert heap.peek() is None
        event = heap.push(2.0, EventKind.DEVICE)
        assert heap and heap.peek() is event


class TestCohortPlanning:
    def test_partitions_exactly_and_picks_lowest_indices(self):
        assignments = [(i, ("m", i % 3), f"m{i % 3}") for i in range(100)]
        cohorts = plan_cohorts(assignments, tracers_per_cohort=4)
        assert sum(c.population for c in cohorts) == 100
        for cohort in cohorts:
            assert len(cohort.tracer_indices) == 4
            assert cohort.tracer_indices == sorted(cohort.tracer_indices)
            # Tracers are the cohort's lowest indices, so their RNG streams
            # are exactly the streams those devices own in an exact run.
            family = cohort.key[1]
            assert cohort.tracer_indices == [family, family + 3, family + 6, family + 9]

    def test_weights_sum_exactly_to_population(self):
        cohort = Cohort(key="k", label="k", population=103, tracer_indices=list(range(5)))
        weights = cohort.tracer_weights()
        assert sum(weights) == 103
        assert weights == [21, 21, 21, 20, 20]
        assert cohort.phantom_count == 98

    def test_small_cohort_has_no_phantoms(self):
        assignments = [(i, "only", "only") for i in range(3)]
        (cohort,) = plan_cohorts(assignments, tracers_per_cohort=16)
        assert cohort.tracer_indices == [0, 1, 2]
        assert cohort.phantom_count == 0
        assert cohort.tracer_weights() == [1, 1, 1]

    def test_rejects_zero_tracers(self):
        with pytest.raises(ValueError):
            plan_cohorts([], tracers_per_cohort=0)


class TestConfigValidation:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            WorkloadConfig(engine="both")

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            WorkloadConfig(cohort_min_clients=0)
        with pytest.raises(ValueError):
            WorkloadConfig(tracers_per_cohort=0)


class TestCohortFastPath:
    def cohort_config(self, clients: int = 600, **kw) -> WorkloadConfig:
        kw.setdefault("steps", 3)
        kw.setdefault("seed", 7)
        kw.setdefault("cohort_min_clients", 500)  # force the fast path small
        return WorkloadConfig(clients=clients, **kw)

    def test_fleet_materializes_only_tracers(self):
        engine = WorkloadEngine(small_scenario(), self.cohort_config())
        assert engine._cohort_mode
        assert engine.cohorts
        tracers = sum(len(c.tracer_indices) for c in engine.cohorts)
        assert len(engine.fleet) == tracers < engine.config.clients
        assert sum(d.weight for d in engine.fleet) == engine.config.clients
        # Fleet order is index order regardless of cohort discovery order.
        indices = [d.index for d in engine.fleet]
        assert indices == sorted(indices)

    def test_report_carries_sampling_telemetry(self):
        engine = WorkloadEngine(small_scenario(), self.cohort_config())
        report = engine.run()
        assert report.sampling["fleet_clients"] == 600.0
        assert report.sampling["tracers"] == float(len(engine.fleet))
        assert report.sampling["cohorts"] == float(len(engine.cohorts))
        assert report.sampling["max_weight"] >= 1.0
        snapshot = report.snapshot()
        assert snapshot["sampling.fleet_clients"] == 600.0

    def test_cohort_runs_are_deterministic(self):
        def run() -> str:
            engine = WorkloadEngine(small_scenario(), self.cohort_config())
            return json.dumps(engine.run().snapshot(), sort_keys=True)

        assert run() == run()

    def test_weighted_counters_scale_with_population(self):
        """Doubling the fleet roughly doubles weighted request counts even
        though the simulated tracer count stays fixed."""

        def requests(clients: int) -> float:
            engine = WorkloadEngine(small_scenario(), self.cohort_config(clients=clients))
            return engine.run().snapshot()["requests"]

        small, large = requests(600), requests(1200)
        assert large == pytest.approx(2 * small, rel=0.05)

    def test_streaming_histograms_auto_enabled(self):
        engine = WorkloadEngine(small_scenario(), self.cohort_config())
        assert engine.metrics.streaming_histograms
        exact = WorkloadEngine(small_scenario(), WorkloadConfig(clients=10, seed=7))
        assert not exact.metrics.streaming_histograms

    def test_phantom_load_lands_on_server_queues(self):
        """With a queue model, phantom jobs must show up as real server-side
        arrivals: queue arrivals scale with the fleet, not the tracer count."""
        fed = FederationConfig(
            service_times=ServiceTimeModel(default_ms=1.0),
            server_queue_capacity=100_000,
        )

        def total_arrivals(clients: int) -> float:
            scenario = small_scenario(config=fed, reuse_worlds=False)
            engine = WorkloadEngine(scenario, self.cohort_config(clients=clients))
            engine.run()
            return sum(
                server.queue.stats.arrivals
                for server in scenario.federation.all_servers.values()
                if server.queue is not None
            )

        small, large = total_arrivals(600), total_arrivals(1800)
        assert large == pytest.approx(3 * small, rel=0.1)

    def test_legacy_engine_never_uses_cohorts(self):
        config = WorkloadConfig(
            clients=600, steps=1, seed=7, cohort_min_clients=500, engine="legacy"
        )
        engine = WorkloadEngine(small_scenario(), config)
        assert not engine._cohort_mode
        assert len(engine.fleet) == 600

    def test_scales_to_100k_clients_quickly(self):
        """The tentpole's scale target: a 100k-client fleet must build and
        run in interactive time (seconds, not minutes)."""
        started = time.perf_counter()
        engine = WorkloadEngine(
            small_scenario(), WorkloadConfig(clients=100_000, steps=2, seed=7)
        )
        report = engine.run()
        elapsed = time.perf_counter() - started
        assert report.sampling["fleet_clients"] == 100_000.0
        assert report.snapshot()["requests"] > 100_000.0
        assert elapsed < 30.0  # ~0.3 s in practice; huge headroom for CI noise
