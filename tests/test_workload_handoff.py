"""End-to-end multi-server test: a commuter crossing two map servers.

A client walks a commuter trace between two independently operated stores in
the same city.  Along the way its discovery results must hand off from one
store's map server to the other without ever losing the outdoor world
provider, the device discovery cache must never change what is discovered
(only what it costs), and a route that spans the boundary must stitch legs
from both sides.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import FederationConfig
from repro.workload.mobility import CommuterHandoff
from repro.worldgen.scenario import build_scenario, outdoor_point_near

SEED = 17
CITY_SERVER = "city.maps.example"
STORE_0 = "store-0.maps.example"
STORE_1 = "store-1.maps.example"


def _commuter_scenario(cached: bool):
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=300.0 if cached else 0.0,
    )
    return build_scenario(store_count=2, city_rows=5, city_cols=5, config=config, seed=SEED)


def _walk_trace(scenario, steps: int = 40) -> list:
    """The deterministic commuter trace between the two store entrances."""
    model = CommuterHandoff(
        [scenario.stores[0].entrance, scenario.stores[1].entrance], step_meters=40.0
    )
    rng = random.Random(SEED)
    trace = [model.reset(rng)]
    trace.extend(model.step(rng) for _ in range(steps))
    return trace


@pytest.fixture(scope="module")
def cached_scenario():
    return _commuter_scenario(cached=True)


@pytest.fixture(scope="module")
def uncached_scenario():
    return _commuter_scenario(cached=False)


class TestDiscoveryHandoff:
    def test_both_stores_discovered_at_their_entrances(self, cached_scenario):
        client = cached_scenario.federation.client()
        at_store_0 = client.discover(cached_scenario.stores[0].entrance, uncertainty_meters=30.0)
        at_store_1 = client.discover(cached_scenario.stores[1].entrance, uncertainty_meters=30.0)
        assert STORE_0 in at_store_0 and STORE_1 not in at_store_0
        assert STORE_1 in at_store_1 and STORE_0 not in at_store_1

    def test_walk_hands_off_between_servers(self, cached_scenario):
        client = cached_scenario.federation.client()
        seen_by_step = [
            set(client.discover(position, uncertainty_meters=30.0).server_ids)
            for position in _walk_trace(cached_scenario)
        ]
        # The world provider never drops out mid-walk...
        assert all(CITY_SERVER in seen for seen in seen_by_step)
        # ...both stores are reached...
        assert any(STORE_0 in seen for seen in seen_by_step)
        assert any(STORE_1 in seen for seen in seen_by_step)
        # ...and the middle of the leg belongs to the outdoor map alone.
        assert any(seen == {CITY_SERVER} for seen in seen_by_step)

    def test_device_cache_never_changes_what_is_discovered(
        self, cached_scenario, uncached_scenario
    ):
        """Same trace, cached vs uncached federation: identical server sets."""
        cached_client = cached_scenario.federation.client()
        uncached_client = uncached_scenario.federation.client()
        cached_walk = _walk_trace(cached_scenario)
        uncached_walk = _walk_trace(uncached_scenario)
        for cached_position, uncached_position in zip(cached_walk, uncached_walk):
            assert cached_position == uncached_position
            cached_seen = set(
                cached_client.discover(cached_position, uncertainty_meters=30.0).server_ids
            )
            uncached_seen = set(
                uncached_client.discover(uncached_position, uncertainty_meters=30.0).server_ids
            )
            assert cached_seen == uncached_seen
        assert cached_client.context.discoverer.device_cache_hits > 0


class TestRouteStitchingAcrossServers:
    def test_route_across_the_boundary_uses_both_sides(self, cached_scenario):
        client = cached_scenario.federation.client()
        origin = outdoor_point_near(cached_scenario, store_index=0, distance_meters=120.0)
        store_1 = cached_scenario.stores[1]
        product = sorted(store_1.product_locations)[0]
        destination = store_1.product_locations[product]

        result = client.route(origin, destination)
        assert STORE_1 in result.servers
        assert CITY_SERVER in result.servers
        assert result.legs_used >= 2
        # The stitched route actually arrives: its last leg ends near the shelf.
        assert result.route.legs[-1].end.distance_to(destination) < 30.0
        assert result.length_meters >= origin.distance_to(destination) * 0.8

    def test_route_is_stable_across_repeat_queries(self, cached_scenario):
        """Warm caches must not change the stitched route."""
        client = cached_scenario.federation.client()
        origin = outdoor_point_near(cached_scenario, store_index=0, distance_meters=120.0)
        destination = cached_scenario.stores[1].entrance
        first = client.route(origin, destination)
        second = client.route(origin, destination)
        assert first.servers == second.servers
        assert first.length_meters == pytest.approx(second.length_meters)
