"""Unit tests for the H3-like hexagonal grid."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.spatialindex.hexgrid import (
    MAX_RESOLUTION,
    HexCell,
    edge_length_meters,
    hex_for_point,
    hexes_covering_box,
)

CENTER = LatLng(40.44, -79.95)


class TestHexCellBasics:
    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            HexCell(MAX_RESOLUTION + 1, 0, 0)
        with pytest.raises(ValueError):
            hex_for_point(CENTER, -1)

    def test_edge_length_shrinks_with_resolution(self):
        assert edge_length_meters(5) > edge_length_meters(8) > edge_length_meters(12)

    def test_token_round_trip(self):
        cell = hex_for_point(CENTER, 9)
        assert HexCell.from_token(cell.token()) == cell

    def test_token_round_trip_negative_axes(self):
        cell = HexCell(7, -12, 5)
        assert HexCell.from_token(cell.token()) == cell

    def test_invalid_token_rejected(self):
        with pytest.raises(ValueError):
            HexCell.from_token("not-a-hex")
        with pytest.raises(ValueError):
            HexCell.from_token("hx1y2")

    def test_cell_contains_its_point(self):
        for resolution in (6, 9, 12):
            cell = hex_for_point(CENTER, resolution)
            assert cell.contains_point(CENTER)

    def test_center_maps_back_to_same_cell(self):
        cell = hex_for_point(CENTER, 10)
        assert hex_for_point(cell.center(), 10) == cell

    def test_boundary_has_six_corners_near_center(self):
        cell = hex_for_point(CENTER, 10)
        corners = cell.boundary()
        assert len(corners) == 6
        edge = edge_length_meters(10)
        for corner in corners:
            assert cell.center().distance_to(corner) == pytest.approx(edge, rel=0.05)

    def test_bounding_box_contains_center(self):
        cell = hex_for_point(CENTER, 10)
        assert cell.bounding_box().contains(cell.center())


class TestNeighboursAndRings:
    def test_six_distinct_neighbors(self):
        cell = hex_for_point(CENTER, 9)
        neighbors = cell.neighbors()
        assert len(set(neighbors)) == 6
        assert cell not in neighbors

    def test_neighbors_are_roughly_equidistant(self):
        # The equirectangular layout stretches east-west spacing by
        # 1/cos(latitude); at 40° that is ~30%, so the check is loose.
        cell = hex_for_point(CENTER, 9)
        distances = [cell.center().distance_to(n.center()) for n in cell.neighbors()]
        assert max(distances) <= min(distances) * 1.45

    def test_neighbors_are_equidistant_at_equator(self):
        cell = hex_for_point(LatLng(0.05, 10.0), 9)
        distances = [cell.center().distance_to(n.center()) for n in cell.neighbors()]
        assert max(distances) == pytest.approx(min(distances), rel=0.05)

    def test_ring_sizes(self):
        cell = hex_for_point(CENTER, 8)
        assert len(cell.ring(0)) == 1
        assert len(cell.ring(1)) == 6
        assert len(cell.ring(2)) == 12
        assert len(cell.disk(2)) == 1 + 6 + 12

    def test_ring_one_equals_neighbors(self):
        cell = hex_for_point(CENTER, 8)
        assert set(cell.ring(1)) == set(cell.neighbors())

    def test_negative_ring_rejected(self):
        with pytest.raises(ValueError):
            hex_for_point(CENTER, 8).ring(-1)

    def test_parent_contains_child_center(self):
        child = hex_for_point(CENTER, 10)
        parent = child.parent()
        assert parent.resolution == 9
        assert parent.contains_point(child.center())

    def test_resolution_zero_has_no_parent(self):
        with pytest.raises(ValueError):
            hex_for_point(CENTER, 0).parent()


class TestCoverage:
    def test_box_covering_contains_grid_points(self):
        box = BoundingBox.around(CENTER, 400.0)
        cells = hexes_covering_box(box, 9, max_cells=512)
        assert cells
        for probe in box.grid_points(4, 4):
            assert any(cell.contains_point(probe) for cell in cells)

    def test_covering_respects_cap(self):
        box = BoundingBox.around(CENTER, 2000.0)
        cells = hexes_covering_box(box, 12, max_cells=50)
        assert len(cells) <= 50

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            hexes_covering_box(BoundingBox.around(CENTER, 100.0), 9, max_cells=0)


class TestHexProperties:
    @given(
        st.floats(min_value=-60.0, max_value=60.0),
        st.floats(min_value=-170.0, max_value=170.0),
        st.integers(min_value=3, max_value=12),
    )
    def test_every_point_has_exactly_one_cell(self, lat, lng, resolution):
        point = LatLng(lat, lng)
        cell = hex_for_point(point, resolution)
        assert cell.contains_point(point)
        # The point is not claimed by any neighbouring cell.
        claiming = [n for n in cell.neighbors() if hex_for_point(point, resolution) == n]
        assert not claiming

    @given(
        st.floats(min_value=-60.0, max_value=60.0),
        st.floats(min_value=-170.0, max_value=170.0),
        st.integers(min_value=3, max_value=12),
    )
    def test_point_is_near_its_cell_center(self, lat, lng, resolution):
        # In the grid's own (equirectangular) plane the point is nearest to its
        # cell centre; measured geodesically the east-west stretch at high
        # latitude can make a neighbour slightly closer, so allow that margin.
        point = LatLng(lat, lng)
        cell = hex_for_point(point, resolution)
        own_distance = point.distance_to(cell.center())
        nearest_other = min(point.distance_to(n.center()) for n in cell.neighbors())
        assert own_distance <= nearest_other * 2.01
