"""The closed-loop autoscaler: policy machinery, warm pools, end-to-end.

Covers the stability state machine (hysteresis gate + cooldowns) in
isolation, the telemetry reader's query surface, the warm-pool lifecycle
on a live federation (extend → promote → drain → park → unpark), and two
end-to-end properties the subsystem exists for:

* a flash crowd is absorbed by warm-pool promotion and the capacity is
  ramped back down (4→2→1→0) and parked once the crowd ebbs;
* TTL-delayed client convergence (the 22–67 s window measured in E15)
  does **not** turn the control loop into a weight oscillator — a fleet
  with long cache TTLs and borderline load produces zero flaps.
"""

from __future__ import annotations

import json

import pytest

from repro.autoscale import AutoscalerConfig, Cooldown, HysteresisGate, WarmPool
from repro.autoscale.scaler import Autoscaler
from repro.churn.retry import RetryPolicy
from repro.core.config import FederationConfig
from repro.core.errors import FederationConfigError
from repro.faults.schedule import FaultPlan
from repro.simulation.queueing import ServiceTimeModel
from repro.telemetry import SLOConfig, TelemetryConfig
from repro.telemetry.pipeline import TelemetryPipeline
from repro.telemetry.reader import TelemetryReader
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario


def _federation_config(**overrides) -> FederationConfig:
    kw = dict(
        device_discovery_cache_ttl_seconds=30.0,
        registration_ttl_seconds=60.0,
        client_tile_cache_entries=256,
        service_times=ServiceTimeModel(
            default_ms=2.0,
            per_kind_ms={"search": 1.5, "routing": 4.0, "tiles": 0.5, "localization": 2.5},
        ),
        server_queue_capacity=256,
        retry_policy=RetryPolicy.full_jitter(),
    )
    kw.update(overrides)
    return FederationConfig(**kw)


def _scenario(**config_overrides):
    return build_scenario(
        store_count=2,
        city_rows=5,
        city_cols=5,
        config=_federation_config(**config_overrides),
        seed=33,
        reuse_worlds=True,
        store_replicas=2,
    )


class TestAutoscalerConfig:
    def test_defaults_are_valid(self):
        config = AutoscalerConfig()
        assert config.ramp_weights == (4, 2, 1, 0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"zone_level": 31},
            {"signal_windows": 0},
            {"wait_high_ms": 5.0, "wait_low_ms": 5.0},
            {"burn_high": 1.0, "burn_low": 1.0},
            {"shed_high": 1.5},
            {"p95_high_ms": 0.0},
            {"breach_evals": 0},
            {"recover_evals": 0},
            {"promote_weight": 0},
            {"ramp_weights": (4, 2)},
            {"ramp_weights": (2, 4, 0)},
            {"ramp_weights": (0,)},
            {"outlier_wait_ratio": -1.0},
            {"cooldown_seconds": -1.0},
            {"park_delay_seconds": -1.0},
        ],
    )
    def test_rejects_invalid(self, overrides):
        with pytest.raises(ValueError):
            AutoscalerConfig(**overrides)


class TestHysteresisGate:
    def test_breach_needs_consecutive_evals(self):
        gate = HysteresisGate(breach_evals=2, recover_evals=2)
        assert gate.update(True, False) == "hold"
        assert gate.update(True, False) == "breach"

    def test_recover_needs_consecutive_evals(self):
        gate = HysteresisGate(breach_evals=2, recover_evals=3)
        for _ in range(2):
            assert gate.update(False, True) == "hold"
        assert gate.update(False, True) == "recover"

    def test_dead_band_resets_both_streaks(self):
        gate = HysteresisGate(breach_evals=2, recover_evals=2)
        gate.update(True, False)
        assert gate.update(False, False) == "hold"
        # The earlier pressed evaluation no longer counts.
        assert gate.update(True, False) == "hold"
        assert gate.update(True, False) == "breach"

    def test_opposite_signal_resets_the_other_streak(self):
        gate = HysteresisGate(breach_evals=2, recover_evals=2)
        gate.update(True, False)
        gate.update(False, True)
        assert gate.update(True, False) == "hold"

    def test_sustained_breach_keeps_arming(self):
        """Cooldowns, not the gate, space repeated actions: once armed the
        gate stays armed while pressure holds."""
        gate = HysteresisGate(breach_evals=2, recover_evals=2)
        gate.update(True, False)
        assert gate.update(True, False) == "breach"
        assert gate.update(True, False) == "breach"

    def test_rejects_contradictory_signal(self):
        gate = HysteresisGate(breach_evals=1, recover_evals=1)
        with pytest.raises(ValueError):
            gate.update(True, True)

    def test_rejects_zero_streaks(self):
        with pytest.raises(ValueError):
            HysteresisGate(breach_evals=0, recover_evals=1)


class TestCooldown:
    def test_ready_before_first_stamp(self):
        assert Cooldown(90.0).ready(0.0)

    def test_blocks_inside_the_window_and_reopens_after(self):
        cooldown = Cooldown(90.0)
        cooldown.stamp(100.0)
        assert not cooldown.ready(189.9)
        assert cooldown.ready(190.0)

    def test_blocked_decision_does_not_reset_the_timer(self):
        """Only ``stamp`` moves the clock: asking ``ready`` repeatedly (a
        blocked controller retrying each evaluation) never pushes the
        reopen instant back."""
        cooldown = Cooldown(60.0)
        cooldown.stamp(0.0)
        for now in (10.0, 30.0, 59.0):
            assert not cooldown.ready(now)
        assert cooldown.ready(60.0)

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            Cooldown(-1.0)


class TestTelemetryReader:
    def _reader(self, steps: int = 6) -> TelemetryReader:
        scenario = _scenario()
        config = WorkloadConfig(
            clients=12,
            steps=steps,
            seed=7,
            step_seconds=20.0,
            telemetry=TelemetryConfig(window_seconds=40.0, slo=SLOConfig(latency_ms=250.0)),
        )
        engine = WorkloadEngine(scenario, config)
        engine.run()
        assert engine.telemetry is not None
        return TelemetryReader(pipeline=engine.telemetry)

    def test_window_count_and_last_windows(self):
        reader = self._reader()
        assert reader.window_count == len(reader.pipeline.windows) > 0
        trailing = reader.last_windows(2)
        assert trailing == tuple(reader.pipeline.windows[-2:])
        with pytest.raises(ValueError):
            reader.last_windows(0)

    def test_zonal_matches_zone_stats(self):
        reader = self._reader()
        zonal = reader.zonal(level=12, last=1)
        assert zonal
        zone, stats = sorted(zonal.items())[0]
        assert reader.zone_stats(zone, level=12, last=1) == stats

    def test_quiet_zone_reads_all_zero(self):
        reader = self._reader()
        stats = reader.zone_stats("nosuchzone", level=12)
        assert set(stats) >= {"mean_wait_ms", "shed_rate", "utilization"}
        assert all(value == 0.0 for value in stats.values())

    def test_server_rollup_derives_rates(self):
        reader = self._reader()
        rollup = reader.server_rollup(last=reader.window_count)
        assert rollup
        for stats in rollup.values():
            assert stats["shed_rate"] <= 1.0
            assert stats["mean_wait_ms"] >= 0.0

    def test_zonal_capacity_and_utilization(self):
        """The workers gauge threads through to a zonal capacity integral
        and a utilization in [0, 1] for single-worker servers."""
        reader = self._reader()
        zonal = reader.zonal(level=12, last=reader.window_count)
        assert any(stats["capacity_ms"] > 0.0 for stats in zonal.values())
        for stats in zonal.values():
            if stats["capacity_ms"]:
                assert 0.0 <= stats["utilization"] <= 1.0

    def test_demand_and_slope(self):
        reader = self._reader()
        demand = reader.demand(level=12, last=reader.window_count)
        assert demand and all(count > 0.0 for count in demand.values())
        zone = sorted(demand)[0]
        # The slope is bounded by the worst single-window rate.
        latest = reader.pipeline.windows[-1]
        rate = reader.demand_rate(zone, 12, latest)
        assert abs(reader.demand_slope(zone, 12)) <= max(
            rate, reader.demand_rate(zone, 12, reader.pipeline.windows[-2])
        )

    def test_slope_needs_two_windows(self):
        reader = self._reader(steps=2)
        if len(reader.pipeline.windows) < 2:
            assert reader.demand_slope("anything", 12) == 0.0

    def test_burn_and_attainment(self):
        reader = self._reader()
        assert reader.max_burn() >= 0.0
        assert 0.0 <= reader.attainment() <= 1.0

    def test_p95_reads_from_windows(self):
        reader = self._reader()
        assert reader.p95_ms(last=reader.window_count) > 0.0


class TestReaderEmptyWindow:
    """Every accessor on a sealed window holding *zero* samples (empty
    cell, all-shed round): neutral fallbacks for display, and a
    ``has_signal`` predicate so controllers can tell "quiet" from "blind"."""

    def _empty_reader(self, windows: int = 1) -> TelemetryReader:
        pipeline = TelemetryPipeline(config=TelemetryConfig(window_seconds=10.0))
        pipeline.begin(0.0)
        for index in range(windows):
            pipeline.flush(10.0 * (index + 1))
        assert len(pipeline.windows) == windows
        assert all(not w.cells and not w.servers for w in pipeline.windows)
        return TelemetryReader(pipeline=pipeline)

    def test_has_signal_is_false_on_empty_windows(self):
        reader = self._empty_reader(windows=2)
        assert not reader.has_signal()
        assert not reader.has_signal(last=2)

    def test_has_signal_turns_true_with_a_single_sample(self):
        reader = self._empty_reader()
        reader.pipeline.record_request(
            cell="89c25a31", region=0, kind="search", latency_ms=5.0
        )
        reader.pipeline.flush(20.0)
        assert reader.has_signal()

    def test_zonal_is_empty(self):
        assert self._empty_reader().zonal(level=12) == {}

    def test_zone_stats_reads_all_zero(self):
        stats = self._empty_reader().zone_stats("anyzone", level=12)
        assert all(value == 0.0 for value in stats.values())

    def test_server_rollup_is_empty(self):
        assert self._empty_reader().server_rollup() == {}

    def test_demand_is_empty_and_rate_zero(self):
        reader = self._empty_reader()
        assert reader.demand(level=12) == {}
        assert reader.demand_rate("anyzone", 12, reader.pipeline.windows[-1]) == 0.0

    def test_demand_slope_is_zero(self):
        assert self._empty_reader(windows=2).demand_slope("anyzone", 12) == 0.0

    def test_burn_and_max_burn_are_zero(self):
        reader = self._empty_reader()
        assert reader.burn(region=0) == 0.0
        assert reader.max_burn() == 0.0

    def test_p95_is_zero(self):
        assert self._empty_reader().p95_ms() == 0.0

    def test_attainment_is_one(self):
        assert self._empty_reader().attainment() == 1.0


class TestScalerNoSignal:
    def test_empty_window_resets_gate_streaks_not_scales_down(self):
        """Regression: an all-quiet sealed window used to read as pressure
        0.0 — wait 0 ≤ wait_low — advancing the *recovery* streak toward a
        scale-down.  Missing data must land in the gate's dead band."""
        scenario = _scenario()
        federation = scenario.federation
        group_id = sorted(federation.replica_groups)[0]
        federation.attach_warm_pool(group_id, 1)
        pipeline = TelemetryPipeline(
            config=TelemetryConfig(window_seconds=10.0, slo=SLOConfig(latency_ms=250.0))
        )
        pipeline.begin(0.0)
        scaler = Autoscaler(
            federation,
            TelemetryReader(pipeline=pipeline),
            config=AutoscalerConfig(breach_evals=2, recover_evals=2),
        )
        state = scaler._states[group_id]
        # One genuinely quiet (observed) evaluation has the recovery streak
        # one step from firing…
        state.gate.update(False, True)
        # …then a zero-sample window seals and the scaler evaluates it.
        pipeline.flush(10.0)
        scaler.begin(0.0)
        scaler.observe(0, 10.0)
        assert scaler.counters["evals"] == 1
        assert scaler.counters["actions"] == 0
        # The streak was reset: one more quiet evaluation holds rather than
        # completing the (now voided) recover pair.
        assert state.gate.update(False, True) == "hold"
        # Symmetrically, a pressed streak is voided too.
        state.gate.update(True, False)
        pipeline.flush(20.0)
        scaler.observe(1, 20.0)
        assert state.gate.update(True, False) == "hold"


class TestWarmPool:
    def test_provision_extends_group_at_weight_zero(self):
        scenario = _scenario()
        federation = scenario.federation
        group_id = sorted(federation.replica_groups)[0]
        before = federation.replica_groups[group_id].server_ids
        federation.attach_warm_pool(group_id, 2)
        pool = federation.warm_pools[group_id]
        assert isinstance(pool, WarmPool)
        assert len(pool.standby_ids) == 2
        group = federation.replica_groups[group_id]
        assert group.server_ids == before + pool.standby_ids
        for standby in pool.standby_ids:
            # Registered (discoverable) but weight 0 (last resort).
            assert not pool.is_parked(standby)
            assert pool.weight_of(standby) == 0
        assert pool.pooled_ids() == pool.standby_ids
        assert pool.serving_ids() == ()

    def test_standby_ids_continue_the_replica_sequence(self):
        scenario = _scenario()
        federation = scenario.federation
        group_id = sorted(federation.replica_groups)[0]
        federation.attach_warm_pool(group_id, 1)
        (standby,) = federation.warm_pools[group_id].standby_ids
        assert standby == f"r2.{group_id}"

    def test_park_refuses_weighted_standby(self):
        scenario = _scenario()
        federation = scenario.federation
        group_id = sorted(federation.replica_groups)[0]
        federation.attach_warm_pool(group_id, 1)
        pool = federation.warm_pools[group_id]
        (standby,) = pool.standby_ids
        federation.set_srv(standby, weight=4)
        with pytest.raises(ValueError, match="drain it before parking"):
            pool.park(standby)

    def test_park_unpark_roundtrip(self):
        scenario = _scenario()
        federation = scenario.federation
        group_id = sorted(federation.replica_groups)[0]
        federation.attach_warm_pool(group_id, 1)
        pool = federation.warm_pools[group_id]
        (standby,) = pool.standby_ids
        assert pool.park(standby) > 0
        assert pool.is_parked(standby)
        # The server itself stays reachable for stale-cached clients.
        assert standby in federation.servers
        # Parking is idempotent through the federation primitive.
        assert federation.park_map_server(standby) == 0
        pool.ensure_registered(standby)
        assert not pool.is_parked(standby)
        assert pool.weight_of(standby) == 0

    def test_pool_rejects_foreign_server(self):
        scenario = _scenario()
        federation = scenario.federation
        group_id = sorted(federation.replica_groups)[0]
        federation.attach_warm_pool(group_id, 1)
        pool = federation.warm_pools[group_id]
        member = federation.replica_groups[group_id].server_ids[0]
        with pytest.raises(ValueError, match="not a standby"):
            pool.park(member)

    def test_attach_rejects_unknown_group_and_double_attach(self):
        scenario = _scenario()
        federation = scenario.federation
        group_id = sorted(federation.replica_groups)[0]
        with pytest.raises(FederationConfigError):
            federation.attach_warm_pool("no-such-group", 1)
        federation.attach_warm_pool(group_id, 1)
        with pytest.raises(FederationConfigError, match="already has a warm pool"):
            federation.attach_warm_pool(group_id, 1)

    def test_extend_rejects_duplicate_member(self):
        scenario = _scenario()
        federation = scenario.federation
        group_id = sorted(federation.replica_groups)[0]
        group = federation.replica_groups[group_id]
        with pytest.raises(ValueError, match="already a member"):
            group.extend((group.server_ids[0],))


def _flash_crowd_run(steps: int = 36, *, autoscale: AutoscalerConfig | None, **fed_kw):
    """The shared e2e fixture: store 0 takes a 60–240 s flash crowd."""
    scenario = _scenario(**fed_kw)
    federation = scenario.federation
    group_id = sorted(federation.replica_groups)[0]
    federation.attach_warm_pool(group_id, 2)
    plan = FaultPlan.flash_crowd(
        tuple(scenario.store_replica_ids(0)), 60.0, 240.0, extra_load=300
    )
    config = WorkloadConfig(
        clients=24,
        steps=steps,
        seed=7,
        step_seconds=20.0,
        resolver_pools=2,
        faults=plan,
        telemetry=TelemetryConfig(window_seconds=40.0, slo=SLOConfig(latency_ms=250.0)),
        autoscale=autoscale,
    )
    engine = WorkloadEngine(scenario, config)
    report = engine.run()
    return scenario, engine, report


_E2E_AUTOSCALE = AutoscalerConfig(
    wait_high_ms=25.0,
    wait_low_ms=8.0,
    burn_high=0.0,
    breach_evals=1,
    recover_evals=2,
    cooldown_seconds=60.0,
    ramp_cooldown_seconds=30.0,
    park_delay_seconds=40.0,
)


class TestAutoscalerEndToEnd:
    def test_flash_crowd_full_lifecycle(self):
        """The crowd triggers promotion; the ebb triggers gradual ramps and
        a park — and every op the scaler issued was accepted."""
        scenario, engine, report = _flash_crowd_run(autoscale=_E2E_AUTOSCALE)
        scaler = engine.autoscaler
        assert scaler is not None
        stats = report.autoscale_stats
        assert stats["promotions"] == 2.0
        assert stats["ramp_steps"] >= 3.0
        assert stats["parks"] >= 1.0
        assert stats["flaps"] == 0.0
        assert stats["ops_rejected"] == 0.0
        assert stats["active_peak"] == 4.0
        assert stats["replica_seconds"] > 0.0
        # Promotions landed inside the crowd window; the decision tape is
        # audited on the scaler's own control plane.
        promoted = [
            event
            for event in scaler.control.applied
            if event.weight == scaler.config.promote_weight
        ]
        assert promoted and all(45.0 <= event.at_seconds <= 250.0 for event in promoted)
        # Ramps are gradual: each standby steps down the ladder, never a
        # promote-weight → 0 cliff.
        for standby in scaler.pools[sorted(scaler.pools)[0]].standby_ids:
            weights = [
                event.weight
                for event in scaler.control.applied
                if event.server_id == standby and event.applied
            ]
            for before, after in zip(weights, weights[1:]):
                assert not (before == scaler.config.promote_weight and after == 0)

    def test_snapshot_gains_autoscale_keys(self):
        _scenario_, _engine, report = _flash_crowd_run(steps=8, autoscale=_E2E_AUTOSCALE)
        snapshot = report.snapshot()
        assert snapshot["autoscale.groups"] == 1.0
        assert snapshot["autoscale.standbys"] == 2.0
        assert json.dumps(snapshot, sort_keys=True)  # JSON-serializable

    def test_evaluations_pace_to_sealed_windows(self):
        _scenario_, engine, report = _flash_crowd_run(steps=8, autoscale=_E2E_AUTOSCALE)
        assert engine.telemetry is not None
        # One evaluation per sealed window per group, no more.
        assert report.autoscale_stats["evals"] == float(len(engine.telemetry.windows))

    def test_delayed_convergence_does_not_oscillate(self):
        """The oscillation gate: with cache TTLs stretching client
        convergence past a minute (the E15 regime) and a sustained
        borderline crowd, hysteresis + cooldown keep the loop monotonic —
        promotions bounded by the pool, zero flaps, a bounded weight tape."""
        _scenario_, engine, report = _flash_crowd_run(
            autoscale=_E2E_AUTOSCALE,
            device_discovery_cache_ttl_seconds=60.0,
            registration_ttl_seconds=80.0,
        )
        stats = report.autoscale_stats
        assert stats["flaps"] == 0.0
        assert stats["promotions"] <= 2.0
        assert stats["weight_changes"] <= 8.0
        # No server was scaled in both directions within one convergence
        # window (80 s): the cooldowns kept actions farther apart.
        scaler = engine.autoscaler
        assert scaler is not None
        last_action: dict[str, float] = {}
        for event in scaler.control.applied:
            if not event.applied:
                continue
            previous = last_action.get(event.server_id)
            if previous is not None:
                assert event.at_seconds - previous >= 30.0
            last_action[event.server_id] = event.at_seconds

    def test_off_by_default_builds_nothing(self):
        scenario = _scenario()
        config = WorkloadConfig(clients=6, steps=2, seed=7)
        engine = WorkloadEngine(scenario, config)
        assert engine.autoscaler is None
        assert engine._round_observers == []
        report = engine.run()
        assert report.autoscale_stats == {}
        assert not any(key.startswith("autoscale.") for key in report.snapshot())

    def test_autoscale_requires_telemetry(self):
        with pytest.raises(ValueError, match="telemetry"):
            WorkloadConfig(autoscale=AutoscalerConfig())

    def test_decision_tape_is_deterministic(self):
        def tape() -> list[tuple[float, str, str, bool]]:
            _scenario_, engine, _report = _flash_crowd_run(
                steps=18, autoscale=_E2E_AUTOSCALE
            )
            scaler = engine.autoscaler
            assert scaler is not None
            return [
                (event.at_seconds, event.kind, event.server_id, event.applied)
                for event in scaler.control.applied
            ]

        first = tape()
        assert first  # the run actually scaled
        assert first == tape()
