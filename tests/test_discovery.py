"""Unit tests for spatial naming, registration and discovery."""

from __future__ import annotations

import pytest

from repro.discovery.discoverer import Discoverer
from repro.discovery.naming import SpatialNaming
from repro.discovery.registry import DiscoveryRegistry
from repro.dns.records import RecordType
from repro.dns.resolver import RecursiveResolver, StubResolver
from repro.dns.server import NameServer
from repro.dns.zone import Zone
from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.simulation.network import SimulatedNetwork
from repro.spatialindex.cellid import CellId
from repro.spatialindex.covering import CoveringOptions

CENTER = LatLng(40.44, -79.95)


class TestSpatialNaming:
    def test_cell_name_round_trip(self):
        naming = SpatialNaming("loc.test.example")
        cell = CellId.from_point(CENTER, 12)
        name = naming.cell_to_name(cell)
        assert name.endswith("loc.test.example")
        assert naming.name_to_cell(name) == cell

    def test_root_cell_is_bare_suffix(self):
        naming = SpatialNaming("loc.test.example")
        assert naming.cell_to_name(CellId.root()) == "loc.test.example"
        assert naming.name_to_cell("loc.test.example") == CellId.root()

    def test_child_name_is_under_parent_name(self):
        naming = SpatialNaming()
        cell = CellId.from_point(CENTER, 8)
        child = cell.children()[0]
        parent_name = naming.cell_to_name(cell)
        child_name = naming.cell_to_name(child)
        assert child_name.endswith(parent_name)

    def test_foreign_name_rejected(self):
        naming = SpatialNaming("loc.test.example")
        with pytest.raises(ValueError):
            naming.name_to_cell("1.2.other.example")

    def test_is_spatial_name(self):
        naming = SpatialNaming("loc.test.example")
        assert naming.is_spatial_name("0.1.loc.test.example")
        assert not naming.is_spatial_name("www.example")

    def test_ancestor_names(self):
        naming = SpatialNaming()
        cell = CellId.from_point(CENTER, 4)
        names = naming.ancestor_names(cell)
        assert len(names) == 5  # levels 4..0
        assert names[-1] == naming.suffix

    def test_empty_suffix_rejected(self):
        with pytest.raises(ValueError):
            SpatialNaming("")


@pytest.fixture()
def registry() -> DiscoveryRegistry:
    return DiscoveryRegistry(
        covering_options=CoveringOptions(min_level=9, max_level=13, max_cells=32)
    )


class TestRegistry:
    def test_register_region_creates_records(self, registry: DiscoveryRegistry):
        region = Polygon.regular(CENTER, 200.0)
        registration = registry.register_region("store.example", region)
        assert registration.record_count == len(registration.cells) >= 1
        assert registry.total_records == registration.record_count
        assert "store.example" in registry.registered_servers()

    def test_register_empty_covering_rejected(self, registry: DiscoveryRegistry):
        with pytest.raises(ValueError):
            registry.register_covering("x", [])

    def test_duplicate_registration_rejected(self, registry: DiscoveryRegistry):
        region = Polygon.regular(CENTER, 100.0)
        registry.register_region("store.example", region)
        with pytest.raises(ValueError):
            registry.register_region("store.example", region)

    def test_deregister_removes_records(self, registry: DiscoveryRegistry):
        region = Polygon.regular(CENTER, 150.0)
        registration = registry.register_region("store.example", region)
        removed = registry.deregister("store.example")
        assert removed == registration.record_count
        assert registry.total_records == 0
        assert registry.deregister("store.example") == 0

    def test_deregister_keeps_other_servers(self, registry: DiscoveryRegistry):
        region = Polygon.regular(CENTER, 150.0)
        registry.register_region("a.example", region)
        registry.register_region("b.example", Polygon.regular(CENTER, 140.0))
        registry.deregister("a.example")
        assert "b.example" in registry.registered_servers()
        assert registry.total_records > 0

    def test_servers_at_cell(self, registry: DiscoveryRegistry):
        region = Polygon.regular(CENTER, 100.0)
        registration = registry.register_region("store.example", region)
        assert "store.example" in registry.servers_at_cell(registration.cells[0])

    def test_deregister_one_replica_at_shared_cells(self, registry: DiscoveryRegistry):
        """Replicas share every covering cell; removal must be surgical."""
        region = Polygon.regular(CENTER, 150.0)
        first = registry.register_region("r0.shop.example", region)
        second = registry.register_region("r1.shop.example", region)
        assert first.cells == second.cells  # identical coverings
        removed = registry.deregister("r0.shop.example")
        assert removed == first.record_count
        for cell in second.cells:
            servers = registry.servers_at_cell(cell)
            assert "r1.shop.example" in servers
            assert "r0.shop.example" not in servers
        # The shared names still exist at the authority (no NXDOMAIN window
        # for the surviving replica).
        name = registry.naming.cell_to_name(second.cells[0])
        assert registry.zone.contains_name(name)


def _wire_discovery(registry: DiscoveryRegistry, network: SimulatedNetwork) -> Discoverer:
    """Root delegates the discovery suffix to the registry's authority."""
    root_zone = Zone(origin="")
    root_zone.add(registry.naming.suffix, RecordType.NS, registry.authority.server_id)
    root = NameServer(server_id="root", zones={"": root_zone})
    resolver = RecursiveResolver(
        root=root,
        servers={"root": root, registry.authority.server_id: registry.authority},
        network=network,
    )
    stub = StubResolver(recursive=resolver, network=network)
    return Discoverer(resolver=stub, naming=registry.naming, query_level=13)


class TestDiscoverer:
    def test_discovers_registered_server(self, registry: DiscoveryRegistry):
        network = SimulatedNetwork()
        registry.register_region("store.example", Polygon.regular(CENTER, 200.0))
        discoverer = _wire_discovery(registry, network)
        result = discoverer.discover_at(CENTER, uncertainty_meters=50.0)
        assert "store.example" in result.server_ids
        assert result.dns_lookups > 0

    def test_far_away_location_discovers_nothing(self, registry: DiscoveryRegistry):
        network = SimulatedNetwork()
        registry.register_region("store.example", Polygon.regular(CENTER, 200.0))
        discoverer = _wire_discovery(registry, network)
        result = discoverer.discover_at(LatLng(41.5, -75.0), uncertainty_meters=50.0)
        assert result.server_ids == ()

    def test_multiple_overlapping_servers_discovered(self, registry: DiscoveryRegistry):
        network = SimulatedNetwork()
        registry.register_region("a.example", Polygon.regular(CENTER, 250.0))
        registry.register_region("b.example", Polygon.regular(CENTER.destination(90.0, 50.0), 250.0))
        discoverer = _wire_discovery(registry, network)
        result = discoverer.discover_at(CENTER, uncertainty_meters=100.0)
        assert set(result.server_ids) >= {"a.example", "b.example"}

    def test_results_deduplicated(self, registry: DiscoveryRegistry):
        network = SimulatedNetwork()
        registry.register_region("a.example", Polygon.regular(CENTER, 400.0))
        discoverer = _wire_discovery(registry, network)
        result = discoverer.discover_at(CENTER, uncertainty_meters=300.0)
        assert list(result.server_ids).count("a.example") == 1

    def test_discover_region(self, registry: DiscoveryRegistry):
        network = SimulatedNetwork()
        registry.register_region("a.example", Polygon.regular(CENTER, 200.0))
        discoverer = _wire_discovery(registry, network)
        result = discoverer.discover_region(Polygon.regular(CENTER, 500.0))
        assert "a.example" in result.server_ids

    def test_discover_along_path(self, registry: DiscoveryRegistry):
        network = SimulatedNetwork()
        near_start = CENTER
        near_end = CENTER.destination(90.0, 800.0)
        registry.register_region("start.example", Polygon.regular(near_start, 150.0))
        registry.register_region("end.example", Polygon.regular(near_end, 150.0))
        discoverer = _wire_discovery(registry, network)
        result = discoverer.discover_along([near_start, near_end], corridor_meters=200.0)
        assert {"start.example", "end.example"} <= set(result.server_ids)

    def test_discover_along_empty_waypoints_rejected(self, registry: DiscoveryRegistry):
        network = SimulatedNetwork()
        discoverer = _wire_discovery(registry, network)
        with pytest.raises(ValueError):
            discoverer.discover_along([])

    def test_caching_reduces_authority_traffic(self, registry: DiscoveryRegistry):
        network = SimulatedNetwork()
        registry.register_region("store.example", Polygon.regular(CENTER, 200.0))
        discoverer = _wire_discovery(registry, network)
        discoverer.discover_at(CENTER, uncertainty_meters=50.0)
        upstream_before = network.stats.messages_by_kind.get("dns.resolver_authority", 0)
        discoverer.discover_at(CENTER, uncertainty_meters=50.0)
        upstream_after = network.stats.messages_by_kind.get("dns.resolver_authority", 0)
        assert upstream_after == upstream_before  # all answers served from cache

    def test_fuzzy_boundary_over_discovery_is_possible(self, registry: DiscoveryRegistry):
        """A point just outside the polygon can still discover the server.

        This is the intended consequence of approximating regions by cell
        coverings (Section 3/5.1); the client filters afterwards.
        """
        network = SimulatedNetwork()
        region = Polygon.regular(CENTER, 100.0)
        registration = registry.register_region("store.example", region)
        discoverer = _wire_discovery(registry, network)
        outside_point = CENTER.destination(45.0, 130.0)
        result = discoverer.discover_at(outside_point)
        covering_contains = any(cell.contains_point(outside_point) for cell in registration.cells)
        assert ("store.example" in result.server_ids) == covering_contains
