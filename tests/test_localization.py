"""Unit tests for the localization substrate (cues, fingerprints, fusion)."""

from __future__ import annotations

import random

import pytest

from repro.geometry.point import LatLng, LocalPoint
from repro.localization.cues import (
    BeaconCue,
    BeaconReading,
    CueBundle,
    CueType,
    FiducialCue,
    GnssCue,
    ImageCue,
    LocalizationResult,
)
from repro.localization.fingerprint import (
    BeaconFingerprint,
    BeaconFingerprintDatabase,
    FiducialRegistry,
    ImageFingerprint,
    ImageFingerprintDatabase,
    rssi_at_distance,
)
from repro.localization.fusion import LocalizationSelector
from repro.localization.imu import DeadReckoningTracker, MotionUpdate, consistency_score
from repro.localization.particle_filter import ParticleFilter

ANCHOR = LatLng(40.44, -79.95)


class TestCues:
    def test_cue_types(self):
        assert GnssCue(ANCHOR).cue_type == CueType.GNSS
        assert BeaconCue((BeaconReading("b", -60.0),)).cue_type == CueType.BEACON
        assert ImageCue((1.0, 2.0)).cue_type == CueType.IMAGE
        assert FiducialCue("tag").cue_type == CueType.FIDUCIAL

    def test_bundle_available_types(self):
        bundle = CueBundle(gnss=GnssCue(ANCHOR), image=ImageCue((0.1, 0.2)))
        assert bundle.available_types() == {CueType.GNSS, CueType.IMAGE}
        assert bundle.cue_for(CueType.IMAGE) is bundle.image
        assert bundle.cue_for(CueType.BEACON) is None

    def test_empty_beacon_cue_not_available(self):
        bundle = CueBundle(beacons=BeaconCue(()))
        assert CueType.BEACON not in bundle.available_types()

    def test_result_validation(self):
        with pytest.raises(ValueError):
            LocalizationResult("s", ANCHOR, accuracy_meters=1.0, confidence=1.5, cue_type=CueType.GNSS)
        with pytest.raises(ValueError):
            LocalizationResult("s", ANCHOR, accuracy_meters=-1.0, confidence=0.5, cue_type=CueType.GNSS)

    def test_reading_map(self):
        cue = BeaconCue((BeaconReading("a", -50.0), BeaconReading("b", -70.0)))
        assert cue.reading_map() == {"a": -50.0, "b": -70.0}


class TestRssiModel:
    def test_rssi_decreases_with_distance(self):
        assert rssi_at_distance(1.0) > rssi_at_distance(10.0) > rssi_at_distance(50.0)

    def test_rssi_clamped_near_zero_distance(self):
        assert rssi_at_distance(0.0) == rssi_at_distance(0.4)


def _beacon_world() -> tuple[dict[str, LocalPoint], BeaconFingerprintDatabase]:
    """Four beacons at the corners of a 20x20 m room, surveyed on a 2 m grid."""
    beacons = {
        "b0": LocalPoint(0.0, 0.0, "room"),
        "b1": LocalPoint(20.0, 0.0, "room"),
        "b2": LocalPoint(0.0, 20.0, "room"),
        "b3": LocalPoint(20.0, 20.0, "room"),
    }
    database = BeaconFingerprintDatabase()
    from repro.geometry.projection import LocalProjection

    projection = LocalProjection(ANCHOR, frame="room")
    for xi in range(0, 21, 2):
        for yi in range(0, 21, 2):
            point = LocalPoint(float(xi), float(yi), "room")
            signature = {
                beacon_id: rssi_at_distance(point.distance_to(position))
                for beacon_id, position in beacons.items()
            }
            database.add(BeaconFingerprint(projection.to_geographic(point), signature))
    return beacons, database


class TestBeaconFingerprinting:
    def test_localizes_near_true_position(self):
        beacons, database = _beacon_world()
        from repro.geometry.projection import LocalProjection

        projection = LocalProjection(ANCHOR, frame="room")
        rng = random.Random(0)
        errors = []
        for _ in range(20):
            true = LocalPoint(rng.uniform(2.0, 18.0), rng.uniform(2.0, 18.0), "room")
            readings = tuple(
                BeaconReading(bid, rssi_at_distance(true.distance_to(pos)) + rng.gauss(0.0, 2.0))
                for bid, pos in beacons.items()
            )
            result = database.localize(BeaconCue(readings), "server")
            assert result is not None
            errors.append(result.location.distance_to(projection.to_geographic(true)))
        assert sum(errors) / len(errors) < 5.0

    def test_no_overlapping_beacons_returns_none(self):
        _, database = _beacon_world()
        cue = BeaconCue((BeaconReading("unknown", -50.0),))
        assert database.localize(cue, "server") is None

    def test_empty_database_returns_none(self):
        database = BeaconFingerprintDatabase()
        cue = BeaconCue((BeaconReading("b0", -50.0),))
        assert database.localize(cue, "server") is None

    def test_empty_cue_returns_none(self):
        _, database = _beacon_world()
        assert database.localize(BeaconCue(()), "server") is None

    def test_result_metadata(self):
        beacons, database = _beacon_world()
        readings = tuple(BeaconReading(bid, rssi_at_distance(10.0)) for bid in beacons)
        result = database.localize(BeaconCue(readings), "my-server")
        assert result is not None
        assert result.server_id == "my-server"
        assert result.cue_type == CueType.BEACON
        assert 0.0 <= result.confidence <= 1.0


class TestImageFingerprinting:
    def _database(self) -> tuple[ImageFingerprintDatabase, list[tuple[LatLng, tuple[float, ...]]]]:
        database = ImageFingerprintDatabase()
        entries = []
        for index in range(25):
            location = ANCHOR.destination(90.0, index * 4.0)
            # One-hot descriptors: each surveyed spot looks unlike the others.
            descriptor = tuple(1.0 if d == index else 0.0 for d in range(25))
            database.add(ImageFingerprint(location, descriptor))
            entries.append((location, descriptor))
        return database, entries

    def test_exact_descriptor_matches_location(self):
        database, entries = self._database()
        location, descriptor = entries[7]
        result = database.localize(ImageCue(descriptor), "server")
        assert result is not None
        assert result.location.distance_to(location) < 10.0

    def test_dissimilar_descriptor_rejected(self):
        database, _ = self._database()
        result = database.localize(ImageCue(tuple([-1.0] * 25)), "server")
        assert result is None or result.confidence < 0.5

    def test_zero_descriptor_returns_none(self):
        database, _ = self._database()
        assert database.localize(ImageCue((0.0,) * 25), "server") is None

    def test_dimension_mismatch_ignored(self):
        database, _ = self._database()
        assert database.localize(ImageCue((1.0, 2.0)), "server") is None

    def test_empty_database(self):
        assert ImageFingerprintDatabase().localize(ImageCue((1.0,)), "s") is None


class TestFiducials:
    def test_known_tag_localizes_precisely(self):
        registry = FiducialRegistry()
        tag_location = ANCHOR
        registry.add("tag-1", tag_location)
        result = registry.localize("tag-1", offset_east=3.0, offset_north=4.0, server_id="s")
        assert result is not None
        expected = tag_location.destination(90.0, 3.0).destination(0.0, 4.0)
        assert result.location.distance_to(expected) < 0.1
        assert result.accuracy_meters < 1.0

    def test_unknown_tag_returns_none(self):
        registry = FiducialRegistry()
        assert registry.localize("ghost", 0.0, 0.0, "s") is None


class TestDeadReckoning:
    def test_straight_walk(self):
        tracker = DeadReckoningTracker(anchor=ANCHOR)
        for _ in range(10):
            tracker.apply(MotionUpdate(heading_degrees=90.0, distance_meters=1.0))
        assert tracker.travelled_meters == pytest.approx(10.0)
        assert tracker.position.distance_to(ANCHOR.destination(90.0, 10.0)) < 0.1

    def test_uncertainty_grows_with_travel(self):
        tracker = DeadReckoningTracker(anchor=ANCHOR, drift_rate=0.1)
        start_uncertainty = tracker.uncertainty_meters
        tracker.apply(MotionUpdate(0.0, 50.0))
        assert tracker.uncertainty_meters > start_uncertainty

    def test_re_anchor_resets(self):
        tracker = DeadReckoningTracker(anchor=ANCHOR)
        tracker.apply(MotionUpdate(0.0, 30.0))
        new_anchor = ANCHOR.destination(45.0, 100.0)
        tracker.re_anchor(new_anchor, accuracy_meters=0.5)
        assert tracker.travelled_meters == 0.0
        assert tracker.position == new_anchor

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            MotionUpdate(0.0, -1.0)

    def test_consistency_score_decays_with_distance(self):
        tracker = DeadReckoningTracker(anchor=ANCHOR)
        near = consistency_score(tracker, ANCHOR.destination(0.0, 1.0))
        far = consistency_score(tracker, ANCHOR.destination(0.0, 5.0))
        very_far = consistency_score(tracker, ANCHOR.destination(0.0, 500.0))
        assert near > far > very_far
        assert 0.0 < far < near <= 1.0
        assert very_far == pytest.approx(0.0, abs=1e-6)


class TestParticleFilter:
    def test_requires_initialization(self):
        particle_filter = ParticleFilter()
        with pytest.raises(RuntimeError):
            particle_filter.predict(MotionUpdate(0.0, 1.0))

    def test_converges_to_fixes(self):
        particle_filter = ParticleFilter(particle_count=400, seed=3)
        particle_filter.initialize(ANCHOR, spread_meters=8.0)
        true_position = ANCHOR
        for step in range(15):
            true_position = true_position.destination(90.0, 1.0)
            particle_filter.predict(MotionUpdate(90.0, 1.0))
            particle_filter.update(true_position, accuracy_meters=2.0)
        estimate, dispersion = particle_filter.estimate()
        assert estimate.distance_to(true_position) < 3.0
        assert dispersion < 5.0

    def test_dispersion_grows_without_fixes(self):
        particle_filter = ParticleFilter(particle_count=200, motion_noise_meters=0.5, seed=4)
        particle_filter.initialize(ANCHOR, spread_meters=1.0)
        _, initial_dispersion = particle_filter.estimate()
        for _ in range(20):
            particle_filter.predict(MotionUpdate(0.0, 1.0))
        _, later_dispersion = particle_filter.estimate()
        assert later_dispersion > initial_dispersion

    def test_minimum_particles(self):
        with pytest.raises(ValueError):
            ParticleFilter(particle_count=5)


class TestSelector:
    def _result(self, server: str, location: LatLng, cue_type: CueType, confidence: float = 0.9) -> LocalizationResult:
        return LocalizationResult(server, location, accuracy_meters=2.0, confidence=confidence, cue_type=cue_type)

    def test_prefers_precise_technology_without_tracker(self):
        selector = LocalizationSelector()
        gnss = self._result("a", ANCHOR, CueType.GNSS)
        image = self._result("b", ANCHOR.destination(0.0, 5.0), CueType.IMAGE)
        best = selector.select([gnss, image])
        assert best is not None
        assert best.result.server_id == "b"

    def test_tracker_rejects_implausible_result(self):
        selector = LocalizationSelector()
        tracker = DeadReckoningTracker(anchor=ANCHOR)
        plausible = self._result("near", ANCHOR.destination(0.0, 2.0), CueType.BEACON, 0.7)
        implausible = self._result("far", ANCHOR.destination(0.0, 500.0), CueType.IMAGE, 0.95)
        best = selector.select([implausible, plausible], tracker)
        assert best is not None
        assert best.result.server_id == "near"

    def test_empty_candidates(self):
        assert LocalizationSelector().select([]) is None

    def test_threshold_filters_weak_results(self):
        selector = LocalizationSelector(min_plausibility=0.5)
        weak = self._result("weak", ANCHOR, CueType.GNSS, confidence=0.1)
        assert selector.select([weak]) is None

    def test_rank_is_sorted(self):
        selector = LocalizationSelector()
        results = [
            self._result("a", ANCHOR, CueType.GNSS, 0.5),
            self._result("b", ANCHOR, CueType.FIDUCIAL, 0.9),
            self._result("c", ANCHOR, CueType.BEACON, 0.7),
        ]
        ranked = selector.rank(results)
        scores = [r.plausibility for r in ranked]
        assert scores == sorted(scores, reverse=True)
        assert ranked[0].result.server_id == "b"
