"""Shared fixtures for the test suite.

Scenario construction is comparatively expensive (world generation, fingerprint
surveys, contraction hierarchies), so the standard scenario and its derived
objects are session-scoped.  Tests that mutate state build their own objects.
"""

from __future__ import annotations

import random

import pytest

from repro.geometry.point import LatLng
from repro.worldgen.indoor import IndoorWorld, generate_store
from repro.worldgen.outdoor import CityWorld, generate_city
from repro.worldgen.scenario import FederatedScenario, build_scenario

PITTSBURGH = LatLng(40.4406, -79.9959)


@pytest.fixture(scope="session")
def city() -> CityWorld:
    """A small deterministic city used by map/routing/service tests."""
    return generate_city(rows=5, cols=5, seed=3)


@pytest.fixture(scope="session")
def store() -> IndoorWorld:
    """A deterministic grocery store with survey data."""
    return generate_store(
        name="teststore.example",
        anchor=LatLng(40.4410, -79.9570),
        product_count=40,
        seed=11,
        street_address="300 Forbes Street",
    )


@pytest.fixture(scope="session")
def scenario() -> FederatedScenario:
    """The standard federated scenario: city + two stores + campus."""
    return build_scenario(store_count=2, include_campus=True, seed=5)


@pytest.fixture(scope="session")
def client(scenario: FederatedScenario):
    """An anonymous OpenFLAME client attached to the standard scenario."""
    return scenario.federation.client()


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)
