"""Unit tests for the OSM-style map data model."""

from __future__ import annotations

import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.osm.builder import MapBuilder
from repro.osm.elements import ElementRef, ElementType, Node, Relation, Way
from repro.osm.mapdata import MapData, MapDataError, MapMetadata


@pytest.fixture()
def simple_map() -> MapData:
    """Three nodes on a street plus one POI and one relation."""
    map_data = MapData(metadata=MapMetadata(name="simple", operator="test"))
    map_data.add_node(Node(1, LatLng(40.0, -80.0), {"name": "Corner A"}))
    map_data.add_node(Node(2, LatLng(40.001, -80.0), {"name": "Corner B"}))
    map_data.add_node(Node(3, LatLng(40.002, -80.0)))
    map_data.add_node(Node(4, LatLng(40.0005, -80.0005), {"amenity": "cafe", "name": "Cafe X"}))
    map_data.add_way(Way(10, [1, 2, 3], {"highway": "residential", "name": "Main Street"}))
    map_data.add_relation(
        Relation(100, [ElementRef(ElementType.WAY, 10), ElementRef(ElementType.NODE, 4)], {"type": "street"})
    )
    return map_data


class TestElements:
    def test_node_tag_helpers(self):
        node = Node(1, LatLng(0.0, 0.0), {"name": "X", "amenity": "cafe"})
        assert node.name == "X"
        assert node.tag("amenity") == "cafe"
        assert node.tag("missing", "default") == "default"
        assert node.has_tag("amenity")
        assert node.has_tag("amenity", "cafe")
        assert not node.has_tag("amenity", "bar")

    def test_way_is_closed(self):
        assert Way(1, [1, 2, 3, 1]).is_closed
        assert not Way(2, [1, 2, 3]).is_closed
        assert not Way(3, [1, 1]).is_closed

    def test_relation_members_of_type(self):
        relation = Relation(
            1,
            [
                ElementRef(ElementType.NODE, 1),
                ElementRef(ElementType.WAY, 2, "outer"),
                ElementRef(ElementType.NODE, 3),
            ],
        )
        assert len(relation.members_of_type(ElementType.NODE)) == 2
        assert len(relation.members_of_type(ElementType.WAY)) == 1


class TestStructuralIntegrity:
    def test_duplicate_node_rejected(self, simple_map: MapData):
        with pytest.raises(MapDataError):
            simple_map.add_node(Node(1, LatLng(0.0, 0.0)))

    def test_way_with_missing_node_rejected(self, simple_map: MapData):
        with pytest.raises(MapDataError):
            simple_map.add_way(Way(11, [1, 99]))

    def test_relation_with_missing_member_rejected(self, simple_map: MapData):
        with pytest.raises(MapDataError):
            simple_map.add_relation(Relation(101, [ElementRef(ElementType.WAY, 999)]))

    def test_remove_referenced_node_rejected(self, simple_map: MapData):
        with pytest.raises(MapDataError):
            simple_map.remove_node(2)

    def test_remove_unreferenced_node(self, simple_map: MapData):
        simple_map.remove_node(4)
        assert simple_map.node_count == 3

    def test_unknown_lookups_raise(self, simple_map: MapData):
        with pytest.raises(MapDataError):
            simple_map.node(999)
        with pytest.raises(MapDataError):
            simple_map.way(999)
        with pytest.raises(MapDataError):
            simple_map.relation(999)


class TestQueries:
    def test_counts(self, simple_map: MapData):
        assert simple_map.node_count == 4
        assert simple_map.way_count == 1
        assert simple_map.relation_count == 1

    def test_way_nodes_in_order(self, simple_map: MapData):
        nodes = simple_map.way_nodes(10)
        assert [n.node_id for n in nodes] == [1, 2, 3]

    def test_way_length(self, simple_map: MapData):
        length = simple_map.way_length_meters(10)
        assert length == pytest.approx(2 * 111.19, rel=0.05)  # ~0.002 deg of latitude

    def test_find_by_tag(self, simple_map: MapData):
        cafes = simple_map.find_nodes_by_tag("amenity", "cafe")
        assert [n.node_id for n in cafes] == [4]
        assert simple_map.find_ways_by_tag("highway") != []

    def test_find_by_name_case_insensitive(self, simple_map: MapData):
        assert simple_map.find_nodes_by_name("cafe x")[0].node_id == 4

    def test_nodes_near(self, simple_map: MapData):
        near = simple_map.nodes_near(LatLng(40.0, -80.0), 80.0)
        assert {n.node_id for n in near} == {1, 4}

    def test_nodes_in_box(self, simple_map: MapData):
        box = BoundingBox(39.9995, -80.001, 40.0012, -79.999)
        ids = {n.node_id for n in simple_map.nodes_in_box(box)}
        assert ids == {1, 2, 4}

    def test_nearest_nodes(self, simple_map: MapData):
        nearest = simple_map.nearest_nodes(LatLng(40.0021, -80.0), count=1)
        assert nearest[0].node_id == 3

    def test_spatial_index_updates_after_insert(self, simple_map: MapData):
        simple_map.nodes_near(LatLng(40.0, -80.0), 10.0)  # build index
        simple_map.add_node(Node(50, LatLng(40.0001, -80.0), {"name": "new"}))
        near = simple_map.nodes_near(LatLng(40.0001, -80.0), 5.0)
        assert any(n.node_id == 50 for n in near)


class TestCoverage:
    def test_default_coverage_is_bbox(self, simple_map: MapData):
        coverage = simple_map.coverage
        for node in simple_map.nodes():
            assert coverage.contains(node.location)

    def test_explicit_coverage(self, simple_map: MapData):
        polygon = Polygon.regular(LatLng(40.001, -80.0), 500.0)
        simple_map.set_coverage(polygon)
        assert simple_map.coverage is polygon

    def test_empty_map_coverage_raises(self):
        empty = MapData()
        with pytest.raises(MapDataError):
            _ = empty.coverage
        with pytest.raises(MapDataError):
            empty.bounding_box()


class TestMerge:
    def test_merge_offsets_ids(self, simple_map: MapData):
        other = MapData(metadata=MapMetadata(name="other"))
        other.add_node(Node(1, LatLng(41.0, -80.0), {"name": "other node"}))
        other.add_node(Node(2, LatLng(41.001, -80.0)))
        other.add_way(Way(1, [1, 2], {"highway": "path"}))
        before_nodes = simple_map.node_count
        simple_map.merge(other, id_offset=1000)
        assert simple_map.node_count == before_nodes + 2
        assert simple_map.node(1001).name == "other node"
        assert simple_map.way(1001).node_ids == [1001, 1002]

    def test_merge_collision_rejected(self, simple_map: MapData):
        other = MapData()
        other.add_node(Node(1, LatLng(41.0, -80.0)))
        with pytest.raises(MapDataError):
            simple_map.merge(other, id_offset=0)

    def test_max_element_id(self, simple_map: MapData):
        assert simple_map.max_element_id() == 100


class TestBuilder:
    def test_builder_auto_ids(self):
        builder = MapBuilder(name="built")
        a = builder.add_node(LatLng(40.0, -80.0), {"name": "a"})
        b = builder.add_node(LatLng(40.001, -80.0))
        way = builder.add_way([a, b], {"highway": "path"})
        built = builder.build()
        assert a.node_id != b.node_id
        assert built.way(way.way_id).node_ids == [a.node_id, b.node_id]

    def test_builder_add_path(self):
        builder = MapBuilder(name="built")
        way = builder.add_path(
            [LatLng(40.0, -80.0), LatLng(40.001, -80.0), LatLng(40.002, -80.0)],
            {"highway": "footway"},
        )
        assert len(way.node_ids) == 3

    def test_add_local_node_requires_projection(self):
        from repro.geometry.point import LocalPoint

        builder = MapBuilder(name="built")
        with pytest.raises(ValueError):
            builder.add_local_node(LocalPoint(1.0, 1.0))

    def test_add_local_node_with_projection(self):
        from repro.geometry.point import LocalPoint
        from repro.geometry.projection import LocalProjection

        projection = LocalProjection(LatLng(40.0, -80.0), frame="store")
        builder = MapBuilder(name="built", projection=projection)
        node = builder.add_local_node(LocalPoint(10.0, 5.0, "store"), {"name": "shelf"})
        assert node.local_position == LocalPoint(10.0, 5.0, "store")
        assert node.location.distance_to(LatLng(40.0, -80.0)) == pytest.approx(11.18, rel=0.05)

    def test_builder_relation(self):
        builder = MapBuilder(name="built")
        a = builder.add_node(LatLng(40.0, -80.0))
        b = builder.add_node(LatLng(40.001, -80.0))
        way = builder.add_way([a, b])
        relation = builder.add_relation(
            [(ElementType.WAY, way.way_id, "outer"), (ElementType.NODE, a.node_id, "")],
            {"type": "building"},
        )
        built = builder.build()
        assert built.relation(relation.relation_id).members[0].role == "outer"
