"""Unit tests for polygons."""

from __future__ import annotations

import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon


@pytest.fixture()
def square() -> Polygon:
    return Polygon(
        [
            LatLng(40.0, -80.0),
            LatLng(40.0, -79.0),
            LatLng(41.0, -79.0),
            LatLng(41.0, -80.0),
        ]
    )


class TestConstruction:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([LatLng(0.0, 0.0), LatLng(1.0, 1.0)])

    def test_from_bbox_corners(self):
        box = BoundingBox(40.0, -80.0, 41.0, -79.0)
        polygon = Polygon.from_bbox(box)
        assert len(polygon.vertices) == 4

    def test_regular_polygon(self):
        center = LatLng(40.44, -79.95)
        polygon = Polygon.regular(center, 100.0, sides=6)
        assert len(polygon.vertices) == 6
        assert polygon.contains(center)

    def test_regular_polygon_needs_three_sides(self):
        with pytest.raises(ValueError):
            Polygon.regular(LatLng(0.0, 0.0), 10.0, sides=2)


class TestContainment:
    def test_contains_center(self, square: Polygon):
        assert square.contains(LatLng(40.5, -79.5))

    def test_excludes_outside_point(self, square: Polygon):
        assert not square.contains(LatLng(42.0, -79.5))
        assert not square.contains(LatLng(40.5, -81.0))

    def test_vertex_counts_as_inside(self, square: Polygon):
        assert square.contains(LatLng(40.0, -80.0))

    def test_edge_point_counts_as_inside(self, square: Polygon):
        assert square.contains(LatLng(40.0, -79.5))

    def test_concave_polygon(self):
        # An L-shaped polygon; the notch must be outside.
        polygon = Polygon(
            [
                LatLng(0.0, 0.0),
                LatLng(0.0, 4.0),
                LatLng(2.0, 4.0),
                LatLng(2.0, 2.0),
                LatLng(4.0, 2.0),
                LatLng(4.0, 0.0),
            ]
        )
        assert polygon.contains(LatLng(1.0, 1.0))
        assert polygon.contains(LatLng(1.0, 3.0))
        assert not polygon.contains(LatLng(3.0, 3.0))


class TestMeasurements:
    def test_square_area(self, square: Polygon):
        # roughly 111 km x 85 km at latitude 40.5
        area = square.area_square_meters()
        assert 8.0e9 < area < 1.1e10

    def test_perimeter_positive(self, square: Polygon):
        assert square.perimeter_meters() > 0

    def test_centroid_inside_convex(self, square: Polygon):
        assert square.contains(square.centroid)

    def test_bounding_box_contains_vertices(self, square: Polygon):
        box = square.bounding_box
        assert all(box.contains(v) for v in square.vertices)


class TestBoxIntersection:
    def test_intersects_overlapping_box(self, square: Polygon):
        box = BoundingBox(40.5, -79.5, 41.5, -78.5)
        assert square.intersects_box(box)

    def test_box_entirely_inside(self, square: Polygon):
        box = BoundingBox(40.4, -79.6, 40.6, -79.4)
        assert square.intersects_box(box)

    def test_polygon_entirely_inside_box(self, square: Polygon):
        box = BoundingBox(39.0, -81.0, 42.0, -78.0)
        assert square.intersects_box(box)

    def test_disjoint_box(self, square: Polygon):
        box = BoundingBox(45.0, -70.0, 46.0, -69.0)
        assert not square.intersects_box(box)

    def test_edge_crossing_box_without_contained_vertices(self):
        # A thin polygon crossing the box like a band: no polygon vertex is in
        # the box and no box corner is in the polygon, but edges cross.
        polygon = Polygon(
            [
                LatLng(40.45, -81.0),
                LatLng(40.55, -81.0),
                LatLng(40.55, -78.0),
                LatLng(40.45, -78.0),
            ]
        )
        box = BoundingBox(40.0, -79.6, 41.0, -79.4)
        assert polygon.intersects_box(box)
