"""Smoke test for the telemetry heatmap example.

``examples/telemetry_heatmap.py`` is documentation that executes: it must
keep running end-to-end (fleet, pipeline, ASCII render, CSV dump) as the
telemetry API evolves.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_example():
    spec = importlib.util.spec_from_file_location(
        "telemetry_heatmap", REPO_ROOT / "examples" / "telemetry_heatmap.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("telemetry_heatmap", module)
    spec.loader.exec_module(module)
    return module


example = _load_example()


class TestHeatmapExample:
    def test_end_to_end_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "heatmap.csv"
        exit_code = example.main(
            ["--clients", "16", "--steps", "3", "--csv", str(csv_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Demand heatmap" in out
        assert "Hottest level-" in out

        lines = csv_path.read_text().splitlines()
        assert lines[0] == "level,cell,lat,lng,requests"
        assert len(lines) > 1
        for line in lines[1:]:
            level, token, lat, lng, requests = line.split(",")
            assert int(level) == len(token)
            assert -90.0 <= float(lat) <= 90.0
            assert -180.0 <= float(lng) <= 180.0
            assert float(requests) > 0.0

    def test_ascii_render_marks_occupied_cells(self):
        report = example.run_demo_fleet(clients=16, steps=3)
        heatmap = report.telemetry.demand_heatmap()
        level = min(heatmap)
        art = example.render_ascii(heatmap[level])
        # Some glyph beyond blank space must appear, and the heaviest
        # bucket is always awarded to the hottest cell.
        assert any(glyph in art for glyph in example.INTENSITY[1:])
        assert example.INTENSITY[-1] in art

    def test_ascii_render_empty_heatmap(self):
        assert "no demand" in example.render_ascii({})

    def test_csv_mass_matches_heatmap(self):
        report = example.run_demo_fleet(clients=16, steps=3)
        heatmap = report.telemetry.demand_heatmap()
        rows = example.csv_rows(heatmap)
        total = sum(float(row.rsplit(",", 1)[1]) for row in rows[1:])
        expected = sum(sum(level.values()) for level in heatmap.values())
        assert abs(total - expected) < 1.0
