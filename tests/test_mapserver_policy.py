"""Unit tests for credentials and the Section 5.3 access-control model."""

from __future__ import annotations

import pytest

from repro.geometry.point import LatLng
from repro.mapserver.auth import ANONYMOUS, Credential
from repro.mapserver.policy import AccessDenied, AccessPolicy, ServiceName, ServiceRule
from repro.osm.elements import TAG_PRIVACY, Node


class TestCredential:
    def test_anonymous(self):
        assert ANONYMOUS.is_anonymous
        assert ANONYMOUS.email_domain is None

    def test_email_domain(self):
        cred = Credential(user_id="alice", email="alice@campus.edu")
        assert cred.email_domain == "campus.edu"
        assert not cred.is_anonymous

    def test_email_domain_case_insensitive(self):
        assert Credential(email="x@Campus.EDU").email_domain == "campus.edu"

    def test_malformed_email(self):
        assert Credential(email="not-an-email").email_domain is None

    def test_with_token(self):
        cred = Credential(user_id="bob").with_token("t1").with_token("t2")
        assert cred.tokens == frozenset({"t1", "t2"})
        assert cred.user_id == "bob"


class TestServiceRule:
    def test_empty_rule_allows_everyone(self):
        assert ServiceRule().evaluate(ANONYMOUS) is None

    def test_anonymous_blocked(self):
        rule = ServiceRule(allow_anonymous=False)
        assert rule.evaluate(ANONYMOUS) is not None
        assert rule.evaluate(Credential(user_id="alice", email="a@x.com")) is None

    def test_domain_restriction(self):
        rule = ServiceRule(allowed_email_domains={"campus.edu"}, allow_anonymous=False)
        assert rule.evaluate(Credential(email="a@campus.edu")) is None
        assert rule.evaluate(Credential(email="a@other.com")) is not None
        assert rule.evaluate(Credential(user_id="x")) is not None

    def test_application_restriction(self):
        rule = ServiceRule(allowed_applications={"campus-nav"})
        assert rule.evaluate(Credential(application_id="campus-nav")) is None
        assert rule.evaluate(Credential(application_id="other-app")) is not None

    def test_token_requirement(self):
        rule = ServiceRule(required_tokens={"door-badge"})
        assert rule.evaluate(Credential(tokens=frozenset({"door-badge"}))) is None
        assert rule.evaluate(ANONYMOUS) is not None

    def test_all_constraints_must_pass(self):
        rule = ServiceRule(
            allowed_email_domains={"campus.edu"},
            allowed_applications={"campus-nav"},
            allow_anonymous=False,
        )
        ok = Credential(email="a@campus.edu", application_id="campus-nav")
        wrong_app = Credential(email="a@campus.edu", application_id="other")
        assert rule.evaluate(ok) is None
        assert rule.evaluate(wrong_app) is not None


class TestAccessPolicy:
    def test_default_policy_is_open(self):
        policy = AccessPolicy()
        for service in ServiceName:
            policy.check(service, ANONYMOUS)
        assert policy.checks_performed == len(ServiceName)

    def test_user_level_control(self):
        """Section 5.3: only university users get fine-grained map data."""
        policy = AccessPolicy()
        policy.restrict_to_domain(ServiceName.SEARCH, "campus.edu")
        student = Credential(email="s@campus.edu")
        outsider = Credential(email="o@gmail.com")
        policy.check(ServiceName.SEARCH, student)
        with pytest.raises(AccessDenied):
            policy.check(ServiceName.SEARCH, outsider)
        with pytest.raises(AccessDenied):
            policy.check(ServiceName.SEARCH, ANONYMOUS)

    def test_service_level_control(self):
        """Section 5.3: tiles for everyone, localization only with a token."""
        policy = AccessPolicy()
        policy.require_token(ServiceName.LOCALIZATION, "physical-access")
        policy.check(ServiceName.TILES, ANONYMOUS)
        with pytest.raises(AccessDenied):
            policy.check(ServiceName.LOCALIZATION, ANONYMOUS)
        policy.check(ServiceName.LOCALIZATION, ANONYMOUS.with_token("physical-access"))

    def test_application_level_control(self):
        """Section 5.3: localization only from the campus navigation app."""
        policy = AccessPolicy()
        policy.restrict_to_application(ServiceName.LOCALIZATION, "campus-nav")
        policy.check(ServiceName.LOCALIZATION, Credential(application_id="campus-nav"))
        with pytest.raises(AccessDenied):
            policy.check(ServiceName.LOCALIZATION, Credential(application_id="random-app"))

    def test_allows_does_not_raise(self):
        policy = AccessPolicy()
        policy.restrict_to_domain(ServiceName.GEOCODE, "campus.edu")
        assert not policy.allows(ServiceName.GEOCODE, ANONYMOUS)
        assert policy.allows(ServiceName.TILES, ANONYMOUS)

    def test_access_denied_carries_reason(self):
        policy = AccessPolicy()
        policy.restrict_to_domain(ServiceName.SEARCH, "campus.edu")
        with pytest.raises(AccessDenied) as excinfo:
            policy.check(ServiceName.SEARCH, ANONYMOUS)
        assert excinfo.value.service == ServiceName.SEARCH
        assert "anonymous" in excinfo.value.reason


class TestPrivateDataFiltering:
    def _nodes(self) -> list[Node]:
        return [
            Node(1, LatLng(0.0, 0.0), {"name": "public lobby"}),
            Node(2, LatLng(0.0, 0.001), {"name": "server room", TAG_PRIVACY: "private"}),
        ]

    def test_open_policy_shows_everything(self):
        policy = AccessPolicy()
        assert len(policy.filter_nodes(self._nodes(), ANONYMOUS)) == 2

    def test_private_nodes_hidden_from_outsiders(self):
        policy = AccessPolicy()
        policy.private_data_domains.add("campus.edu")
        visible = policy.filter_nodes(self._nodes(), ANONYMOUS)
        assert [n.node_id for n in visible] == [1]

    def test_private_nodes_visible_to_domain_members(self):
        policy = AccessPolicy()
        policy.private_data_domains.add("campus.edu")
        insider = Credential(email="a@campus.edu")
        assert len(policy.filter_nodes(self._nodes(), insider)) == 2

    def test_private_nodes_visible_with_token(self):
        policy = AccessPolicy()
        policy.private_data_tokens.add("staff")
        assert len(policy.filter_nodes(self._nodes(), ANONYMOUS.with_token("staff"))) == 2
        assert len(policy.filter_nodes(self._nodes(), ANONYMOUS)) == 1
