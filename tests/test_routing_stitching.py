"""Unit tests for client-side route stitching."""

from __future__ import annotations

import pytest

from repro.geometry.point import LatLng
from repro.routing.stitching import (
    RouteLeg,
    RouteStitcher,
    StitchError,
    route_stretch,
)

START = LatLng(40.0, -80.0)


def _leg(server_id: str, points: list[LatLng], cost: float | None = None) -> RouteLeg:
    total = cost if cost is not None else sum(a.distance_to(b) for a, b in zip(points, points[1:]))
    return RouteLeg(server_id=server_id, points=tuple(points), cost=total)


class TestRouteLeg:
    def test_leg_endpoints_and_length(self):
        points = [START, START.destination(90.0, 100.0), START.destination(90.0, 200.0)]
        leg = _leg("a", points)
        assert leg.start == points[0]
        assert leg.end == points[-1]
        assert leg.length_meters() == pytest.approx(200.0, rel=1e-2)

    def test_empty_leg_rejected(self):
        with pytest.raises(ValueError):
            RouteLeg("a", (), 0.0)


class TestStitcher:
    def test_single_leg_stitch(self):
        destination = START.destination(90.0, 300.0)
        leg = _leg("city", [START, START.destination(90.0, 150.0), destination])
        stitched = RouteStitcher().stitch(START, destination, [leg])
        assert stitched.servers == ("city",)
        assert stitched.points[0] == START
        assert stitched.points[-1] == destination
        assert stitched.connector_meters == pytest.approx(0.0, abs=1.0)

    def test_two_legs_in_order(self):
        handover = START.destination(90.0, 300.0)
        destination = handover.destination(0.0, 100.0)
        city_leg = _leg("city", [START, handover])
        store_leg = _leg("store", [handover, destination])
        stitched = RouteStitcher().stitch(START, destination, [city_leg, store_leg])
        assert stitched.servers == ("city", "store")
        assert stitched.length_meters() == pytest.approx(400.0, rel=1e-2)

    def test_legs_given_out_of_order_are_reordered(self):
        handover = START.destination(90.0, 300.0)
        destination = handover.destination(0.0, 100.0)
        city_leg = _leg("city", [START, handover])
        store_leg = _leg("store", [handover, destination])
        stitched = RouteStitcher().stitch(START, destination, [store_leg, city_leg])
        assert stitched.servers == ("city", "store")

    def test_reversed_leg_is_flipped(self):
        handover = START.destination(90.0, 300.0)
        destination = handover.destination(0.0, 100.0)
        city_leg = _leg("city", [handover, START])  # reversed on purpose
        store_leg = _leg("store", [handover, destination])
        stitched = RouteStitcher().stitch(START, destination, [city_leg, store_leg])
        assert stitched.points[0] == START
        assert stitched.points[-1] == destination

    def test_small_gap_bridged_and_counted(self):
        handover = START.destination(90.0, 300.0)
        near_handover = handover.destination(0.0, 40.0)
        destination = near_handover.destination(0.0, 100.0)
        city_leg = _leg("city", [START, handover])
        store_leg = _leg("store", [near_handover, destination])
        stitched = RouteStitcher(max_gap_meters=60.0).stitch(START, destination, [city_leg, store_leg])
        assert stitched.connector_meters == pytest.approx(40.0, rel=0.05)

    def test_gap_exceeding_limit_fails(self):
        far_away = START.destination(90.0, 5_000.0)
        destination = far_away.destination(0.0, 100.0)
        leg_a = _leg("a", [START, START.destination(90.0, 100.0)])
        leg_b = _leg("b", [far_away, destination])
        with pytest.raises(StitchError):
            RouteStitcher(max_gap_meters=100.0).stitch(START, destination, [leg_a, leg_b])

    def test_route_not_reaching_destination_fails(self):
        destination = START.destination(90.0, 2_000.0)
        leg = _leg("a", [START, START.destination(90.0, 100.0)])
        with pytest.raises(StitchError):
            RouteStitcher(max_gap_meters=150.0).stitch(START, destination, [leg])

    def test_no_legs_fails(self):
        with pytest.raises(StitchError):
            RouteStitcher().stitch(START, START, [])

    def test_total_cost_includes_connectors(self):
        handover = START.destination(90.0, 200.0)
        near = handover.destination(0.0, 30.0)
        destination = near.destination(0.0, 100.0)
        legs = [_leg("a", [START, handover]), _leg("b", [near, destination])]
        stitched = RouteStitcher(max_gap_meters=60.0).stitch(START, destination, legs)
        assert stitched.total_cost == pytest.approx(sum(leg.cost for leg in legs) + stitched.connector_meters, rel=1e-6)

    def test_three_servers(self):
        p1 = START.destination(90.0, 200.0)
        p2 = p1.destination(90.0, 200.0)
        destination = p2.destination(90.0, 200.0)
        legs = [_leg("a", [START, p1]), _leg("b", [p1, p2]), _leg("c", [p2, destination])]
        stitched = RouteStitcher().stitch(START, destination, legs)
        assert stitched.servers == ("a", "b", "c")
        assert stitched.length_meters() == pytest.approx(600.0, rel=1e-2)


class TestStretch:
    def test_stretch_of_optimal_route_is_one(self):
        destination = START.destination(90.0, 500.0)
        leg = _leg("a", [START, destination])
        stitched = RouteStitcher().stitch(START, destination, [leg])
        assert route_stretch(stitched, 500.0) == pytest.approx(1.0, rel=1e-2)

    def test_stretch_greater_than_one_for_detour(self):
        detour_mid = START.destination(0.0, 300.0)
        destination = START.destination(90.0, 500.0)
        leg = _leg("a", [START, detour_mid, destination])
        stitched = RouteStitcher().stitch(START, destination, [leg])
        assert route_stretch(stitched, 500.0) > 1.2

    def test_invalid_optimal_rejected(self):
        leg = _leg("a", [START, START.destination(90.0, 10.0)])
        stitched = RouteStitcher().stitch(START, START.destination(90.0, 10.0), [leg])
        with pytest.raises(ValueError):
            route_stretch(stitched, 0.0)
