"""Unit tests for the quadtree and R-tree indexes."""

from __future__ import annotations

import random

import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.spatialindex.quadtree import QuadTree
from repro.spatialindex.rtree import RTree

AREA = BoundingBox(40.0, -80.0, 41.0, -79.0)


def _random_points(count: int, seed: int = 0) -> list[LatLng]:
    rng = random.Random(seed)
    return [
        LatLng(rng.uniform(AREA.south, AREA.north), rng.uniform(AREA.west, AREA.east))
        for _ in range(count)
    ]


class TestQuadTree:
    def test_insert_and_len(self):
        tree: QuadTree[int] = QuadTree(AREA)
        for index, point in enumerate(_random_points(50)):
            tree.insert(point, index)
        assert len(tree) == 50

    def test_insert_outside_bounds_rejected(self):
        tree: QuadTree[int] = QuadTree(AREA)
        with pytest.raises(ValueError):
            tree.insert(LatLng(50.0, -79.5), 1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            QuadTree(AREA, capacity=0)

    def test_box_query_matches_brute_force(self):
        points = _random_points(300, seed=2)
        tree: QuadTree[int] = QuadTree(AREA)
        for index, point in enumerate(points):
            tree.insert(point, index)
        query = BoundingBox(40.2, -79.8, 40.6, -79.3)
        expected = {i for i, p in enumerate(points) if query.contains(p)}
        got = {value for _, value in tree.query_box(query)}
        assert got == expected

    def test_radius_query_matches_brute_force(self):
        points = _random_points(200, seed=3)
        tree: QuadTree[int] = QuadTree(AREA)
        for index, point in enumerate(points):
            tree.insert(point, index)
        center = LatLng(40.5, -79.5)
        radius = 15_000.0
        expected = {i for i, p in enumerate(points) if center.distance_to(p) <= radius}
        got = {value for _, value in tree.query_radius(center, radius)}
        assert got == expected

    def test_nearest_returns_closest(self):
        points = _random_points(100, seed=4)
        tree: QuadTree[int] = QuadTree(AREA)
        for index, point in enumerate(points):
            tree.insert(point, index)
        center = LatLng(40.5, -79.5)
        nearest = tree.nearest(center, count=5)
        assert len(nearest) == 5
        brute = sorted(range(len(points)), key=lambda i: center.distance_to(points[i]))[:5]
        assert {value for _, value in nearest} == set(brute)

    def test_nearest_on_empty_tree(self):
        tree: QuadTree[int] = QuadTree(AREA)
        assert tree.nearest(LatLng(40.5, -79.5)) == []

    def test_nearest_invalid_count(self):
        tree: QuadTree[int] = QuadTree(AREA)
        with pytest.raises(ValueError):
            tree.nearest(LatLng(40.5, -79.5), count=0)

    def test_iteration_yields_all(self):
        points = _random_points(40, seed=5)
        tree: QuadTree[int] = QuadTree(AREA)
        for index, point in enumerate(points):
            tree.insert(point, index)
        assert {value for _, value in tree} == set(range(40))

    def test_duplicate_points_allowed(self):
        tree: QuadTree[str] = QuadTree(AREA)
        point = LatLng(40.5, -79.5)
        for label in "abcdefghijklmnopqrstuvwxyz":
            tree.insert(point, label)
        assert len(tree.query_radius(point, 1.0)) == 26


class TestRTree:
    @staticmethod
    def _random_boxes(count: int, seed: int = 0) -> list[BoundingBox]:
        rng = random.Random(seed)
        boxes = []
        for _ in range(count):
            south = rng.uniform(40.0, 40.9)
            west = rng.uniform(-80.0, -79.1)
            boxes.append(BoundingBox(south, west, south + rng.uniform(0.001, 0.05), west + rng.uniform(0.001, 0.05)))
        return boxes

    def test_insert_and_len(self):
        tree: RTree[int] = RTree()
        for index, box in enumerate(self._random_boxes(60)):
            tree.insert(box, index)
        assert len(tree) == 60
        assert len(tree.all_entries()) == 60

    def test_box_query_matches_brute_force(self):
        boxes = self._random_boxes(150, seed=7)
        tree: RTree[int] = RTree()
        for index, box in enumerate(boxes):
            tree.insert(box, index)
        query = BoundingBox(40.3, -79.7, 40.5, -79.4)
        expected = {i for i, box in enumerate(boxes) if box.intersects(query)}
        got = {value for _, value in tree.query_box(query)}
        assert got == expected

    def test_point_query(self):
        boxes = self._random_boxes(80, seed=8)
        tree: RTree[int] = RTree()
        for index, box in enumerate(boxes):
            tree.insert(box, index)
        point = LatLng(40.45, -79.55)
        expected = {i for i, box in enumerate(boxes) if box.contains(point)}
        got = {value for _, value in tree.query_point(point)}
        assert got == expected

    def test_empty_tree_queries(self):
        tree: RTree[int] = RTree()
        assert tree.query_box(AREA) == []
        assert tree.query_point(LatLng(40.5, -79.5)) == []
