"""Tests for the server-side load model (service times + bounded queue).

Covers the queueing model in isolation (service, backlog, drops, the
utilization→1 saturation property), its wiring into map servers and the
federation, and the jittered latency / resolver-pool refinements that ride
on the same fleet experiments.
"""

from __future__ import annotations

import pytest

from repro.core.config import FederationConfig
from repro.simulation.network import LatencyModel, SimulatedNetwork
from repro.simulation.queueing import (
    QueueStats,
    ServerOverloadedError,
    ServerQueue,
    ServiceTimeModel,
)
from repro.worldgen.scenario import build_scenario


def drive_open_arrivals(queue: ServerQueue, interarrival_s: float, count: int) -> None:
    """Feed ``count`` arrivals spaced ``interarrival_s`` apart.

    ``process`` advances the clock past each request's completion (the caller
    waits synchronously), so the driver rewinds/advances the clock to each
    arrival instant — the same concurrent-branch pattern the workload engine
    uses for fleet rounds.
    """
    clock = queue.network.clock
    for index in range(count):
        arrival = index * interarrival_s
        if clock.now() > arrival:
            clock.rewind_to(arrival)
        elif clock.now() < arrival:
            clock.advance(arrival - clock.now())
        try:
            queue.process("search")
        except ServerOverloadedError:
            pass  # shed load still counts in queue.stats.dropped


class TestServiceTimeModel:
    def test_default_and_override(self):
        model = ServiceTimeModel(default_ms=2.0, per_kind_ms={"routing": 8.0})
        assert model.service_ms("search") == 2.0
        assert model.service_ms("routing") == 8.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ServiceTimeModel(default_ms=-1.0)
        with pytest.raises(ValueError):
            ServiceTimeModel(per_kind_ms={"tiles": -0.5})


class TestServerQueue:
    def make_queue(self, service_ms: float = 10.0, capacity: int = 64) -> ServerQueue:
        return ServerQueue(
            network=SimulatedNetwork(),
            service_times=ServiceTimeModel(default_ms=service_ms),
            capacity=capacity,
        )

    def test_idle_server_charges_only_service_time(self):
        queue = self.make_queue(service_ms=10.0)
        total_ms = queue.process("search")
        assert total_ms == pytest.approx(10.0)
        assert queue.network.clock.now() == pytest.approx(0.010)
        assert queue.network.stats.total_latency_ms == pytest.approx(10.0)
        assert queue.stats.mean_wait_ms == 0.0

    def test_concurrent_arrivals_queue_behind_each_other(self):
        # Three requests arriving at the same instant (clock rewound between
        # them, as the workload engine does within a round) serialize: the
        # k-th pays k-1 service times of waiting.
        queue = self.make_queue(service_ms=10.0)
        clock = queue.network.clock
        totals = []
        for _ in range(3):
            clock.rewind_to(0.0)
            totals.append(queue.process("search"))
        assert totals == [pytest.approx(10.0), pytest.approx(20.0), pytest.approx(30.0)]
        assert queue.stats.max_depth == 2

    def test_backlog_drains_with_time(self):
        queue = self.make_queue(service_ms=10.0)
        clock = queue.network.clock
        for _ in range(3):
            clock.rewind_to(0.0)
            queue.process("search")
        clock.rewind_to(0.0)
        clock.advance(1.0)  # everything has completed by now
        assert queue.depth == 0
        assert queue.process("search") == pytest.approx(10.0)

    def test_bounded_queue_drops_when_full(self):
        queue = self.make_queue(service_ms=10.0, capacity=2)
        clock = queue.network.clock
        for _ in range(2):
            clock.rewind_to(0.0)
            queue.process("search")
        clock.rewind_to(0.0)
        with pytest.raises(ServerOverloadedError):
            queue.process("search")
        assert queue.stats.dropped == 1
        assert queue.stats.served == 2
        assert queue.stats.drop_rate == pytest.approx(1.0 / 3.0)

    def test_utilization_tracks_offered_load(self):
        # Offered load rho = service / interarrival; utilization ~= rho.
        for rho in (0.25, 0.5, 0.9):
            queue = self.make_queue(service_ms=10.0, capacity=10_000)
            drive_open_arrivals(queue, interarrival_s=0.010 / rho, count=400)
            window = 400 * (0.010 / rho)
            assert queue.stats.utilization(window) == pytest.approx(rho, rel=0.05)

    def test_utilization_approaches_one_at_saturation(self):
        # Offered load beyond the service rate: the server is busy the whole
        # horizon it worked through, i.e. utilization -> 1.
        queue = self.make_queue(service_ms=10.0, capacity=10_000)
        drive_open_arrivals(queue, interarrival_s=0.005, count=400)  # rho = 2
        utilization = queue.stats.utilization(queue.busy_until)
        assert utilization == pytest.approx(1.0, rel=0.01)
        assert queue.stats.mean_wait_ms > 100.0  # backlog grew without bound

    def test_deterministic(self):
        def one_run() -> dict[str, float]:
            queue = self.make_queue(service_ms=7.0, capacity=32)
            drive_open_arrivals(queue, interarrival_s=0.004, count=100)
            return queue.stats.snapshot(window_seconds=queue.busy_until)

        assert one_run() == one_run()

    def test_snapshot_fields(self):
        queue = self.make_queue()
        queue.process("search")
        snapshot = queue.stats.snapshot(window_seconds=1.0)
        for key in ("arrivals", "served", "dropped", "drop_rate", "busy_ms",
                    "mean_wait_ms", "mean_depth", "max_depth", "utilization"):
            assert key in snapshot

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            ServerQueue(network=SimulatedNetwork(), capacity=0)


class TestMapServerQueueWiring:
    def make_scenario(self, **config_kwargs):
        config = FederationConfig(
            service_times=ServiceTimeModel(default_ms=5.0, per_kind_ms={"routing": 12.0}),
            **config_kwargs,
        )
        return build_scenario(store_count=1, city_rows=3, city_cols=3, config=config, seed=11)

    def test_servers_get_queues_and_charge_latency(self):
        scenario = self.make_scenario()
        federation = scenario.federation
        assert all(server.queue is not None for server in federation.servers.values())
        client = federation.client()
        before = federation.network.stats.server_processing_ms
        client.search("milk", near=scenario.stores[0].entrance, radius_meters=200.0)
        after = federation.network.stats.server_processing_ms
        assert after > before  # the consulted servers' service time was charged

    def test_no_service_times_means_no_queue(self):
        scenario = build_scenario(store_count=1, city_rows=3, city_cols=3, seed=11)
        assert all(server.queue is None for server in scenario.federation.servers.values())

    def test_overloaded_server_is_skipped_not_fatal(self):
        config = FederationConfig(
            # One slot, and a service slow enough that the backlog outlives
            # the client's own DNS walk to the server.
            service_times=ServiceTimeModel(default_ms=60_000.0),
            server_queue_capacity=1,
        )
        scenario = build_scenario(store_count=1, city_rows=3, city_cols=3, config=config, seed=11)
        federation = scenario.federation
        server = scenario.store_server(0)
        # Saturate the store server's queue with a request whose completion
        # (at t=160s) outlives everything the client's fan-out does first —
        # including a full 60s service at the city server.
        clock = federation.network.clock
        clock.advance(100.0)
        server.queue.process("search")
        clock.rewind_to(10.0)
        client = federation.client()
        # The fan-out search must survive the overloaded server (it is
        # skipped like a denied one) and still consult the city server.
        result = client.search("milk", near=scenario.stores[0].entrance, radius_meters=200.0)
        assert result.servers_consulted >= 1
        assert server.queue.stats.dropped >= 1


class TestJitteredLatency:
    def test_default_latency_model_is_deterministic(self):
        model = LatencyModel()
        assert not model.is_stochastic
        network = SimulatedNetwork(latency=model)
        assert network.client_map_server_exchange() == pytest.approx(50.0)

    def test_jitter_varies_latency_reproducibly(self):
        model = LatencyModel(jitter_sigma=0.5)

        def draws(seed: int) -> list[float]:
            network = SimulatedNetwork(latency=model, jitter_seed=seed)
            network.reseed_jitter(7)
            return [network.client_map_server_exchange() for _ in range(5)]

        first = draws(1)
        assert draws(1) == first  # deterministic per seed/stream
        assert draws(2) != first  # distinct streams differ
        assert len(set(first)) > 1  # latency actually varies

    def test_loss_charges_retransmissions(self):
        model = LatencyModel(loss_probability=0.5)
        network = SimulatedNetwork(latency=model, jitter_seed=3)
        network.reseed_jitter(1)
        total = sum(network.client_map_server_exchange() for _ in range(50))
        assert network.stats.retransmissions > 0
        # Every retransmission costs one extra full round trip.
        expected = 50 * 50.0 + network.stats.retransmissions * 50.0
        assert total == pytest.approx(expected)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(jitter_sigma=-0.1)
        with pytest.raises(ValueError):
            LatencyModel(loss_probability=1.0)


class TestQueueStatsEdgeCases:
    def test_empty_stats(self):
        stats = QueueStats()
        assert stats.drop_rate == 0.0
        assert stats.mean_wait_ms == 0.0
        assert stats.mean_depth == 0.0
        assert stats.utilization(0.0) == 0.0


class TestPhantomArrivals:
    """The cohort fast path's batch admission must match sequential reality."""

    def make_queue(self, service_ms: float = 10.0, capacity: int = 8, workers: int = 1) -> ServerQueue:
        return ServerQueue(
            network=SimulatedNetwork(),
            service_times=ServiceTimeModel(default_ms=service_ms),
            capacity=capacity,
            workers=workers,
        )

    def test_batch_matches_sequential_concurrent_admissions(self):
        """One phantom_arrivals(n) call must book the same aggregate stats as
        n sequential same-instant process() calls (the concurrent-round
        rewind pattern the engine uses)."""
        count = 30
        sequential = self.make_queue(service_ms=2.0, capacity=8, workers=3)
        clock = sequential.network.clock
        for _ in range(count):
            start = clock.now()
            try:
                sequential.process("search")
            except ServerOverloadedError:
                pass
            clock.rewind_to(start)

        batch = self.make_queue(service_ms=2.0, capacity=8, workers=3)
        batch.phantom_arrivals("search", count)

        a, b = sequential.stats, batch.stats
        assert (a.arrivals, a.served, a.dropped) == (b.arrivals, b.served, b.dropped)
        assert a.busy_ms == pytest.approx(b.busy_ms)
        assert a.wait_ms_total == pytest.approx(b.wait_ms_total)
        assert a.depth_total == b.depth_total
        assert a.max_depth == b.max_depth

    def test_phantoms_never_advance_the_clock(self):
        queue = self.make_queue()
        queue.phantom_arrivals("search", 5)
        assert queue.network.clock.now() == 0.0

    def test_later_real_request_queues_behind_phantom_load(self):
        """Phantom jobs occupy real worker time: a request issued after a
        batch waits behind it rather than seeing an idle server."""
        queue = self.make_queue(service_ms=10.0, capacity=8, workers=1)
        queue.phantom_arrivals("search", 3)
        total_ms = queue.process("search")
        assert total_ms == pytest.approx(40.0)  # 3 phantoms ahead + own service

    def test_capacity_bounds_batch_admission(self):
        queue = self.make_queue(service_ms=10.0, capacity=4, workers=2)
        admitted, dropped = queue.phantom_arrivals("search", 100)
        assert admitted == 8  # capacity x workers
        assert dropped == 92
        assert queue.stats.dropped == 92

    def test_kind_arrivals_tracks_per_kind_counts(self):
        queue = self.make_queue(capacity=64)
        queue.process("search")
        queue.process("search")
        queue.process("tiles")
        assert queue.kind_arrivals == {"search": 2, "tiles": 1}
        # ...and deliberately stays out of the committed snapshot keys.
        assert not any("kind" in key for key in queue.snapshot(window_seconds=1.0))

    def test_rejects_negative_count_and_accepts_zero(self):
        queue = self.make_queue()
        with pytest.raises(ValueError):
            queue.phantom_arrivals("search", -1)
        assert queue.phantom_arrivals("search", 0) == (0, 0)
        assert queue.stats.arrivals == 0
