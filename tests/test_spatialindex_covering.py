"""Unit tests for region coverings."""

from __future__ import annotations

import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.spatialindex.covering import (
    CoveringOptions,
    RegionCoverer,
    covering_area_square_meters,
    covering_contains_point,
    normalize_covering,
)
from repro.spatialindex.cellid import CellId

CENTER = LatLng(40.44, -79.95)


class TestCoveringOptions:
    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            CoveringOptions(min_level=10, max_level=5)
        with pytest.raises(ValueError):
            CoveringOptions(min_level=-1)

    def test_invalid_max_cells_rejected(self):
        with pytest.raises(ValueError):
            CoveringOptions(max_cells=0)


class TestDiscCovering:
    def test_disc_covering_contains_center(self):
        coverer = RegionCoverer(CoveringOptions(min_level=6, max_level=14, max_cells=16))
        cells = coverer.cover_disc(CENTER, 200.0)
        assert cells
        assert covering_contains_point(cells, CENTER)

    def test_disc_covering_contains_perimeter_points(self):
        coverer = RegionCoverer(CoveringOptions(min_level=6, max_level=14, max_cells=32))
        cells = coverer.cover_disc(CENTER, 300.0)
        for bearing in range(0, 360, 45):
            assert covering_contains_point(cells, CENTER.destination(bearing, 290.0))

    def test_max_cells_respected(self):
        for budget in (4, 8, 16):
            coverer = RegionCoverer(CoveringOptions(min_level=6, max_level=16, max_cells=budget))
            cells = coverer.cover_disc(CENTER, 500.0)
            assert len(cells) <= budget

    def test_finer_max_level_gives_tighter_covering(self):
        coarse = RegionCoverer(CoveringOptions(min_level=4, max_level=8, max_cells=64))
        fine = RegionCoverer(CoveringOptions(min_level=4, max_level=14, max_cells=64))
        coarse_area = covering_area_square_meters(coarse.cover_disc(CENTER, 200.0))
        fine_area = covering_area_square_meters(fine.cover_disc(CENTER, 200.0))
        assert fine_area < coarse_area

    def test_point_covering(self):
        coverer = RegionCoverer(CoveringOptions(min_level=4, max_level=12, max_cells=8))
        cells = coverer.cover_point(CENTER)
        assert len(cells) == 1
        assert cells[0].level == 12
        assert cells[0].contains_point(CENTER)


class TestBoxAndPolygonCovering:
    def test_box_covering_contains_box(self):
        box = BoundingBox.around(CENTER, 400.0)
        coverer = RegionCoverer(CoveringOptions(min_level=6, max_level=13, max_cells=32))
        cells = coverer.cover_box(box)
        for point in box.grid_points(4, 4):
            assert covering_contains_point(cells, point)

    def test_polygon_covering_contains_polygon(self):
        polygon = Polygon.regular(CENTER, 250.0, sides=8)
        coverer = RegionCoverer(CoveringOptions(min_level=6, max_level=13, max_cells=32))
        cells = coverer.cover_polygon(polygon)
        assert covering_contains_point(cells, CENTER)
        for vertex in polygon.vertices:
            assert covering_contains_point(cells, vertex)

    def test_covering_over_approximates(self):
        polygon = Polygon.regular(CENTER, 100.0, sides=12)
        coverer = RegionCoverer(CoveringOptions(min_level=8, max_level=12, max_cells=16))
        cells = coverer.cover_polygon(polygon)
        assert covering_area_square_meters(cells) >= polygon.area_square_meters()


class TestNormalization:
    def test_normalize_removes_duplicates(self):
        cells = [CellId("01"), CellId("01"), CellId("02")]
        assert len(normalize_covering(cells)) == 2

    def test_normalize_removes_contained_cells(self):
        cells = [CellId("01"), CellId("0123"), CellId("02")]
        normalized = normalize_covering(cells)
        assert CellId("0123") not in normalized
        assert CellId("01") in normalized

    def test_normalize_sorted_output(self):
        cells = [CellId("3"), CellId("1"), CellId("20")]
        normalized = normalize_covering(cells)
        assert normalized == sorted(normalized, key=lambda c: (c.level, c.token))

    def test_empty_covering_contains_nothing(self):
        assert not covering_contains_point([], CENTER)
