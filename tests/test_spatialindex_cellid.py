"""Unit tests for hierarchical spatial cells."""

from __future__ import annotations

import pytest

from repro.geometry.point import LatLng
from repro.spatialindex.cellid import MAX_LEVEL, CellId


class TestConstruction:
    def test_root_cell(self):
        root = CellId.root()
        assert root.is_root
        assert root.level == 0
        assert root.bounds().contains(LatLng(0.0, 0.0))
        assert root.bounds().contains(LatLng(89.0, 179.0))

    def test_invalid_token_digits_rejected(self):
        with pytest.raises(ValueError):
            CellId("0421")

    def test_too_deep_token_rejected(self):
        with pytest.raises(ValueError):
            CellId("0" * (MAX_LEVEL + 1))

    def test_from_point_level(self):
        cell = CellId.from_point(LatLng(40.44, -79.95), 10)
        assert cell.level == 10
        assert len(cell.token) == 10

    def test_from_point_invalid_level(self):
        with pytest.raises(ValueError):
            CellId.from_point(LatLng(0.0, 0.0), MAX_LEVEL + 1)
        with pytest.raises(ValueError):
            CellId.from_point(LatLng(0.0, 0.0), -1)


class TestContainmentHierarchy:
    def test_cell_contains_its_point(self):
        point = LatLng(40.44, -79.95)
        for level in range(0, 20, 4):
            cell = CellId.from_point(point, level)
            assert cell.contains_point(point)

    def test_parent_contains_child(self):
        point = LatLng(40.44, -79.95)
        child = CellId.from_point(point, 12)
        parent = child.parent()
        assert parent.level == 11
        assert parent.contains(child)
        assert not child.contains(parent)

    def test_parent_at_level(self):
        cell = CellId.from_point(LatLng(10.0, 20.0), 10)
        ancestor = cell.parent(4)
        assert ancestor.level == 4
        assert ancestor.contains(cell)

    def test_parent_invalid_level(self):
        cell = CellId.from_point(LatLng(10.0, 20.0), 5)
        with pytest.raises(ValueError):
            cell.parent(6)

    def test_children_partition_parent(self):
        cell = CellId.from_point(LatLng(40.0, -80.0), 6)
        children = cell.children()
        assert len(children) == 4
        assert all(cell.contains(child) for child in children)
        # Children cover the parent's centre points of each quadrant.
        parent_box = cell.bounds()
        for child in children:
            assert parent_box.contains_box(child.bounds())

    def test_from_point_is_prefix_consistent(self):
        point = LatLng(40.44, -79.95)
        coarse = CellId.from_point(point, 6)
        fine = CellId.from_point(point, 14)
        assert fine.token.startswith(coarse.token)

    def test_contains_self(self):
        cell = CellId("0123")
        assert cell.contains(cell)

    def test_intersects_cell(self):
        parent = CellId("01")
        child = CellId("0123")
        sibling = CellId("02")
        assert parent.intersects_cell(child)
        assert child.intersects_cell(parent)
        assert not child.intersects_cell(sibling)


class TestGeometry:
    def test_bounds_shrink_with_level(self):
        point = LatLng(40.44, -79.95)
        sizes = [CellId.from_point(point, level).approximate_size_meters() for level in (4, 8, 12)]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_bounds_quarter_each_level(self):
        cell = CellId.from_point(LatLng(40.0, -80.0), 5)
        child = CellId.from_point(LatLng(40.0, -80.0), 6)
        assert child.bounds().area_square_meters() == pytest.approx(
            cell.bounds().area_square_meters() / 4.0, rel=0.1
        )

    def test_center_inside_bounds(self):
        cell = CellId.from_point(LatLng(12.3, 45.6), 9)
        assert cell.bounds().contains(cell.center())

    def test_neighbors_same_level_and_adjacent(self):
        cell = CellId.from_point(LatLng(40.44, -79.95), 10)
        neighbors = cell.neighbors()
        assert 3 <= len(neighbors) <= 8
        for neighbor in neighbors:
            assert neighbor.level == cell.level
            assert neighbor != cell
            # Neighbour boxes touch or nearly touch the cell box.
            assert neighbor.bounds().expanded(10.0).intersects(cell.bounds())

    def test_root_has_no_neighbors(self):
        assert CellId.root().neighbors() == []


class TestOrdering:
    def test_ordering_by_level_then_token(self):
        assert CellId("0") < CellId("00")
        assert CellId("01") < CellId("02")

    def test_cells_usable_in_sets(self):
        cells = {CellId("01"), CellId("01"), CellId("02")}
        assert len(cells) == 2
