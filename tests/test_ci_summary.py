"""The CI summary renderer must degrade gracefully, never traceback.

``scripts/ci_summary.py`` runs as the last CI step and feeds
``$GITHUB_STEP_SUMMARY``; a single corrupt or absent benchmark artifact
must turn into a note in the rendered markdown, not an exception that
kills the step and hides every other table.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_ci_summary():
    spec = importlib.util.spec_from_file_location(
        "ci_summary", REPO_ROOT / "scripts" / "ci_summary.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("ci_summary", module)
    spec.loader.exec_module(module)
    return module


ci_summary = _load_ci_summary()


class TestGracefulDegradation:
    def test_empty_directory_renders_missing_notes(self, tmp_path):
        lines = ci_summary.summarize(tmp_path)
        text = "\n".join(lines)
        assert "# Benchmark smoke headlines" in text
        for name, _render in ci_summary.RENDERERS:
            assert f"## {name}" in text
        assert text.count("_missing — smoke stage did not produce it_") == len(
            ci_summary.RENDERERS
        )

    def test_malformed_json_becomes_note_not_traceback(self, tmp_path):
        (tmp_path / "BENCH_e17.json").write_text("{not json at all")
        lines = ci_summary.summarize(tmp_path)
        text = "\n".join(lines)
        assert "## BENCH_e17.json" in text
        assert "_unreadable — " in text

    def test_wrong_shape_becomes_note_not_traceback(self, tmp_path):
        # Valid JSON, wrong shape: rows is a string, scenarios a number.
        (tmp_path / "BENCH_e16.json").write_text(json.dumps({"rows": "oops"}))
        (tmp_path / "BENCH_e17.json").write_text(json.dumps({"scenarios": 7}))
        lines = ci_summary.summarize(tmp_path)
        text = "\n".join(lines)
        assert text.count("_unreadable — ") == 2

    def test_one_bad_artifact_does_not_hide_the_good_ones(self, tmp_path):
        (tmp_path / "BENCH_e13.json").write_text("][")
        (tmp_path / "BENCH_e17.json").write_text(
            json.dumps(
                {
                    "scenarios": [
                        {
                            "name": "regional-partition",
                            "metrics": {"availability": 0.99, "failovers": 3},
                            "band_failures": [],
                        }
                    ]
                }
            )
        )
        text = "\n".join(ci_summary.summarize(tmp_path))
        assert "regional-partition" in text  # the good table rendered
        assert "_unreadable — " in text  # the bad one became a note

    def test_e18_renderer_emits_all_three_probes(self, tmp_path):
        (tmp_path / "BENCH_e18.json").write_text(
            json.dumps(
                {
                    "hotspot": {
                        "top_drop_cell": "2122211320",
                        "top_cell_drop_share": 1.0,
                        "global_p95_inflation": 1.1,
                    },
                    "slo_burn": {
                        "hit_region": 1,
                        "max_burn": 12.5,
                        "alert_windows": 2,
                        "baseline_max_burn": 0.4,
                    },
                    "overhead": {
                        "clients": 100_000,
                        "records": 300000.0,
                        "windows_retained": 8,
                        "measured": {"overhead_pct": 3.5},
                    },
                }
            )
        )
        text = "\n".join(ci_summary.summarize(tmp_path))
        assert "hot-spot localization" in text
        assert "2122211320" in text
        assert "SLO burn alerting" in text
        assert "telemetry-on overhead" in text
        assert "100000 clients" in text
