"""Tests for the operator control plane: live re-weighting, drains, standbys.

Covers the imperative :class:`~repro.control.plane.ControlPlane` API
(set_weight / drain / undrain / promote) against a live federation, weight
preservation across the churn lifecycle, the
:class:`~repro.control.schedule.ControlSchedule` tape and its round-boundary
application, the client-side staleness machinery
(:class:`~repro.control.view.DeviceSrvView`, ``Discoverer.srv_view``), and
the end-to-end drain/standby experiments the E15 benchmark sweeps.
"""

from __future__ import annotations

import random

import pytest

from repro.churn import RetryPolicy, rfc2782_order
from repro.churn.schedule import ChurnEvent, ChurnEventKind, ChurnSchedule
from repro.control import (
    ControlEvent,
    ControlEventKind,
    ControlOp,
    ControlPlane,
    ControlSchedule,
    DeviceSrvView,
)
from repro.core.config import FederationConfig
from repro.core.errors import FederationConfigError
from repro.core.federation import Federation
from repro.dns.records import SrvData
from repro.geometry.point import LatLng
from repro.simulation.queueing import ServiceTimeModel
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.indoor import generate_store
from repro.worldgen.scenario import build_scenario

ANCHOR = LatLng(40.4410, -79.9570)


def replicated_federation(weights=(1, 1, 1), priorities=None) -> Federation:
    federation = Federation()
    store = generate_store("shop.example", ANCHOR, seed=4)
    federation.add_replica_group(
        "shop.example",
        store.map_data,
        replica_count=len(weights),
        weights=weights,
        priorities=priorities,
    )
    return federation


def advertised_srv(federation: Federation, server_id: str) -> SrvData:
    """The SRV data the authority currently serves for a server."""
    registration = federation.registration_for(server_id)
    assert registration is not None
    for cell in registration.cells:
        for record in federation.registry.records_for_cell(cell):
            srv = SrvData.decode(record.data)
            if srv.target == registration.target:
                return srv
    raise AssertionError(f"no record found for {server_id!r}")


# ----------------------------------------------------------------------
# Imperative API
# ----------------------------------------------------------------------
class TestControlPlaneOps:
    def test_set_weight_propagates_to_records_group_and_srv_of(self):
        federation = replicated_federation()
        plane = ControlPlane(federation)
        assert plane.set_weight("r0.shop.example", 5) == (0, 5)
        assert federation.srv_of("r0.shop.example") == (0, 5)
        assert federation.replica_groups["shop.example"].weights == (5, 1, 1)
        assert advertised_srv(federation, "r0.shop.example").weight == 5
        assert advertised_srv(federation, "r1.shop.example").weight == 1

    def test_drain_and_undrain_restore_previous_weight(self):
        federation = replicated_federation(weights=(3, 1, 1))
        plane = ControlPlane(federation)
        plane.drain("r0.shop.example")
        assert plane.is_drained("r0.shop.example")
        assert federation.srv_of("r0.shop.example") == (0, 0)
        assert advertised_srv(federation, "r0.shop.example").weight == 0
        plane.undrain("r0.shop.example")
        assert federation.srv_of("r0.shop.example") == (0, 3)

    def test_undrain_without_memory_uses_default_weight(self):
        federation = replicated_federation(weights=(0, 1, 1))
        plane = ControlPlane(federation)
        # r0 was deployed at weight 0 — the plane has nothing remembered.
        plane.undrain("r0.shop.example")
        assert federation.srv_of("r0.shop.example")[1] == 1

    def test_undrain_with_explicit_weight_wins(self):
        federation = replicated_federation(weights=(3, 1, 1))
        plane = ControlPlane(federation)
        plane.drain("r0.shop.example")
        plane.undrain("r0.shop.example", weight=7)
        assert federation.srv_of("r0.shop.example") == (0, 7)

    def test_rejected_undrain_keeps_the_predrain_memory(self):
        """Regression: a failed restore must not consume the remembered
        weight — the operator retries once the server is back."""
        federation = replicated_federation(weights=(3, 1, 1))
        store = generate_store("shop.example", ANCHOR, seed=4)
        plane = ControlPlane(federation)
        plane.drain("r0.shop.example")
        federation.remove_map_server("r0.shop.example")
        with pytest.raises(FederationConfigError):
            plane.undrain("r0.shop.example")
        # Redeployed later, the retry still restores the pre-drain weight.
        federation.add_map_server("r0.shop.example", store.map_data)
        plane.undrain("r0.shop.example")
        assert federation.srv_of("r0.shop.example")[1] == 3

    def test_explicit_set_weight_clears_drain_memory(self):
        federation = replicated_federation(weights=(3, 1, 1))
        plane = ControlPlane(federation)
        plane.drain("r0.shop.example")
        plane.set_weight("r0.shop.example", 2)
        plane.drain("r0.shop.example")
        plane.undrain("r0.shop.example")
        assert federation.srv_of("r0.shop.example") == (0, 2)

    def test_promote_moves_tier_and_reorders_chains(self):
        federation = replicated_federation(weights=(1, 1), priorities=(0, 1))
        plane = ControlPlane(federation)
        srv_of = {
            "r0.shop.example": federation.srv_of("r0.shop.example"),
            "r1.shop.example": federation.srv_of("r1.shop.example"),
        }
        chain = rfc2782_order(sorted(srv_of), srv_of, random.Random(0))
        assert chain[0] == "r0.shop.example"  # tier 0 first
        plane.promote("r1.shop.example", 0)
        plane.promote("r0.shop.example", 1)
        srv_of = {sid: federation.srv_of(sid) for sid in srv_of}
        chain = rfc2782_order(sorted(srv_of), srv_of, random.Random(0))
        assert chain[0] == "r1.shop.example"  # tiers swapped
        assert advertised_srv(federation, "r1.shop.example").priority == 0

    def test_draining_last_positive_weight_is_rejected_atomically(self):
        federation = replicated_federation(weights=(1, 0, 0))
        plane = ControlPlane(federation)
        with pytest.raises(ValueError, match="no positive weight"):
            plane.drain("r0.shop.example")
        # Rejection left every layer untouched.
        assert federation.srv_of("r0.shop.example") == (0, 1)
        assert federation.replica_groups["shop.example"].weights == (1, 0, 0)
        assert advertised_srv(federation, "r0.shop.example").weight == 1

    def test_unknown_server_and_negative_values_raise(self):
        federation = replicated_federation()
        plane = ControlPlane(federation)
        with pytest.raises(FederationConfigError):
            plane.set_weight("ghost.example", 1)
        with pytest.raises(FederationConfigError):
            federation.set_srv("r0.shop.example", weight=-1)
        with pytest.raises(FederationConfigError):
            federation.set_srv("r0.shop.example", priority=-1)

    def test_standalone_server_can_be_reweighted(self):
        federation = Federation()
        store = generate_store("solo.example", ANCHOR, seed=4)
        federation.add_map_server("solo.example", store.map_data, srv_weight=2)
        ControlPlane(federation).set_weight("solo.example", 4)
        assert federation.srv_of("solo.example") == (0, 4)
        assert advertised_srv(federation, "solo.example").weight == 4


# ----------------------------------------------------------------------
# Batched application (the autoscaler's path)
# ----------------------------------------------------------------------
class TestApplyBatch:
    def test_second_op_on_same_server_sees_the_firsts_result(self):
        """Two ops targeting one server in one batch apply sequentially:
        the drain must remember the weight the batch's own set_weight just
        installed, not the pre-batch value."""
        federation = replicated_federation(weights=(3, 1, 1))
        plane = ControlPlane(federation)
        records = plane.apply_batch(
            10.0,
            [
                ControlOp(ControlEventKind.SET_WEIGHT, "r0.shop.example", 2),
                ControlOp(ControlEventKind.DRAIN, "r0.shop.example"),
            ],
        )
        assert [record.applied for record in records] == [True, True]
        assert federation.srv_of("r0.shop.example") == (0, 0)
        plane.undrain("r0.shop.example")
        assert federation.srv_of("r0.shop.example") == (0, 2)

    def test_drain_then_undrain_in_one_batch_round_trips(self):
        federation = replicated_federation(weights=(5, 1, 1))
        plane = ControlPlane(federation)
        records = plane.apply_batch(
            0.0,
            [
                ControlOp(ControlEventKind.DRAIN, "r0.shop.example"),
                ControlOp(ControlEventKind.UNDRAIN, "r0.shop.example"),
            ],
        )
        assert [(r.applied, r.weight) for r in records] == [(True, 0), (True, 5)]
        assert federation.srv_of("r0.shop.example") == (0, 5)

    def test_rejected_op_records_the_live_srv_state(self):
        """Regression: a rejected op used to fabricate ``(0, 0)`` in its
        audit record.  Conflicting drains in one batch (autoscaler ramp vs
        operator drain) must record the loser against the server's *true*
        live state — replay consumers and convergence tracking depend on
        the record, and (0, 0) is indistinguishable from a drained win."""
        federation = replicated_federation(weights=(1, 4))
        plane = ControlPlane(federation)
        records = plane.apply_batch(
            5.0,
            [
                ControlOp(ControlEventKind.DRAIN, "r0.shop.example"),
                ControlOp(ControlEventKind.DRAIN, "r1.shop.example"),
            ],
        )
        assert records[0].applied and records[0].weight == 0
        loser = records[1]
        assert not loser.applied
        # The record carries r1's real live SRV state, not (0, 0).
        assert (loser.priority, loser.weight) == federation.srv_of("r1.shop.example")
        assert loser.weight == 4

    def test_rejected_op_on_unknown_server_still_records_zeros(self):
        federation = replicated_federation()
        plane = ControlPlane(federation)
        [record] = plane.apply_batch(
            0.0, [ControlOp(ControlEventKind.DRAIN, "ghost.example")]
        )
        assert not record.applied
        assert (record.priority, record.weight) == (0, 0)

    def test_rejected_scheduled_event_records_live_state_too(self):
        """The tape path funnels through the same ``_perform``."""
        federation = replicated_federation(weights=(1, 0, 0))
        plane = ControlPlane(
            federation,
            schedule=ControlSchedule.from_events(
                [ControlEvent(0.0, ControlEventKind.DRAIN, "r0.shop.example")]
            ),
        )
        [record] = plane.apply_until(1.0)
        assert not record.applied
        assert (record.priority, record.weight) == (0, 1)


# ----------------------------------------------------------------------
# Interaction with the churn lifecycle
# ----------------------------------------------------------------------
class TestControlAcrossChurn:
    def test_new_weight_survives_crash_expire_revive(self):
        federation = replicated_federation(weights=(3, 1, 1))
        ControlPlane(federation).set_weight("r0.shop.example", 6)
        federation.crash_map_server("r0.shop.example")
        federation.expire_registration("r0.shop.example")
        federation.revive_map_server("r0.shop.example")
        assert federation.srv_of("r0.shop.example") == (0, 6)
        assert advertised_srv(federation, "r0.shop.example").weight == 6

    def test_reweight_while_crashed_updates_lingering_records(self):
        """A crashed server's records linger until the lease expires; an
        operator can still re-weight them (e.g. drain the corpse so caches
        converge away from it before the lease does)."""
        federation = replicated_federation(weights=(3, 1, 1))
        federation.crash_map_server("r0.shop.example")
        ControlPlane(federation).drain("r0.shop.example")
        assert advertised_srv(federation, "r0.shop.example").weight == 0

    def test_reweight_after_lease_expiry_applies_on_revival(self):
        federation = replicated_federation(weights=(3, 1, 1))
        federation.crash_map_server("r0.shop.example")
        federation.expire_registration("r0.shop.example")
        ControlPlane(federation).set_weight("r0.shop.example", 9)
        assert federation.registration_for("r0.shop.example") is None
        federation.revive_map_server("r0.shop.example")
        assert advertised_srv(federation, "r0.shop.example").weight == 9

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_random_control_and_churn_interleavings_stay_consistent(self, seed):
        """Any interleaving of set_srv with crash/expire/revive keeps the
        three layers (srv_of, group tuples, authority records) agreeing."""
        rng = random.Random(seed)
        federation = replicated_federation(weights=(2, 2, 2))
        replicas = list(federation.replica_groups["shop.example"].server_ids)
        for _ in range(120):
            server_id = rng.choice(replicas)
            op = rng.random()
            try:
                if op < 0.35:
                    federation.set_srv(
                        server_id,
                        priority=rng.randint(0, 2) if rng.random() < 0.4 else None,
                        weight=rng.randint(0, 4) if rng.random() < 0.9 else None,
                    )
                elif op < 0.55:
                    federation.crash_map_server(server_id)
                elif op < 0.7:
                    federation.expire_registration(server_id)
                elif op < 0.9:
                    federation.revive_map_server(server_id)
                else:
                    federation.leave_map_server(server_id)
            except (FederationConfigError, ValueError):
                continue  # inapplicable op for the current state — fine
        group = federation.replica_groups["shop.example"]
        for index, server_id in enumerate(group.server_ids):
            priority, weight = federation.srv_of(server_id)
            assert group.weights[index] == weight
            assert group.priorities[index] == priority
            if federation.registration_for(server_id) is not None:
                srv = advertised_srv(federation, server_id)
                assert (srv.priority, srv.weight) == (priority, weight)


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
class TestControlSchedule:
    def test_events_sort_and_validate(self):
        schedule = ControlSchedule.from_events(
            [
                ControlEvent(20.0, ControlEventKind.UNDRAIN, "b"),
                ControlEvent(10.0, ControlEventKind.DRAIN, "a"),
            ]
        )
        assert [event.at_seconds for event in schedule] == [10.0, 20.0]
        assert schedule.horizon_seconds == 20.0
        assert schedule.servers == ("a", "b")
        with pytest.raises(ValueError, match="predate"):
            ControlEvent(-1.0, ControlEventKind.DRAIN, "a")
        with pytest.raises(ValueError, match="need a value"):
            ControlEvent(0.0, ControlEventKind.SET_WEIGHT, "a")
        with pytest.raises(ValueError, match="negative"):
            ControlEvent(0.0, ControlEventKind.PROMOTE, "a", value=-2)

    def test_same_instant_events_keep_authored_order(self):
        """Regression: the tape must not alphabetize same-instant actions —
        "set the weight, THEN drain" at one instant means exactly that."""
        federation = replicated_federation(weights=(3, 1, 1))
        plane = ControlPlane(
            federation,
            schedule=ControlSchedule.from_events(
                [
                    ControlEvent(10.0, ControlEventKind.SET_WEIGHT, "r0.shop.example", 5),
                    ControlEvent(10.0, ControlEventKind.DRAIN, "r0.shop.example"),
                ]
            ),
        )
        assert [event.kind for event in plane.schedule] == [
            ControlEventKind.SET_WEIGHT,
            ControlEventKind.DRAIN,
        ]
        plane.apply_until(10.0)
        # Drained last, remembering the just-set weight for the undrain.
        assert federation.srv_of("r0.shop.example")[1] == 0
        plane.undrain("r0.shop.example")
        assert federation.srv_of("r0.shop.example")[1] == 5

    def test_drain_window_helper(self):
        schedule = ControlSchedule.drain_window("a", 10.0, 50.0)
        kinds = [event.kind for event in schedule]
        assert kinds == [ControlEventKind.DRAIN, ControlEventKind.UNDRAIN]
        with pytest.raises(ValueError, match="after"):
            ControlSchedule.drain_window("a", 10.0, 5.0)

    def test_apply_until_walks_the_tape_once(self):
        federation = replicated_federation(weights=(3, 1, 1))
        plane = ControlPlane(
            federation,
            schedule=ControlSchedule.drain_window("r0.shop.example", 10.0, 50.0),
        )
        assert plane.pending_events == 2
        applied = plane.apply_until(10.0)
        assert [event.kind for event in applied] == ["drain"]
        assert federation.srv_of("r0.shop.example")[1] == 0
        assert plane.apply_until(10.0) == []  # cursor moved on
        applied = plane.apply_until(100.0)
        assert [event.kind for event in applied] == ["undrain"]
        assert federation.srv_of("r0.shop.example")[1] == 3
        assert plane.pending_events == 0

    def test_rejected_events_are_recorded_not_fatal(self):
        federation = replicated_federation()
        plane = ControlPlane(
            federation,
            schedule=ControlSchedule.from_events(
                [
                    ControlEvent(0.0, ControlEventKind.DRAIN, "ghost.example"),
                    ControlEvent(1.0, ControlEventKind.SET_WEIGHT, "r1.shop.example", 4),
                ]
            ),
        )
        applied = plane.apply_until(5.0)
        assert [event.applied for event in applied] == [False, True]
        assert federation.srv_of("r1.shop.example") == (0, 4)


# ----------------------------------------------------------------------
# Client-side staleness
# ----------------------------------------------------------------------
class TestDeviceSrvView:
    def test_discovered_values_override_the_live_fallback(self):
        view = DeviceSrvView({"a": (0, 3)}, {"a": (0, 9), "b": (1, 2)})
        assert view["a"] == (0, 3)  # stale but first-hand
        assert view["b"] == (1, 2)  # never resolved: live value
        assert view.get("c") is None
        assert view.get("c", (0, 0)) == (0, 0)
        assert "a" in view and "b" in view and "c" not in view
        assert len(view) == 2 and set(view) == {"a", "b"}
        assert view.is_stale("a") and not view.is_stale("b")

    def test_context_view_goes_stale_then_converges_with_the_caches(self):
        """A client that discovered a server keeps the old weight after a
        live re-weight, until both its device cache and the resolver cache
        have expired — then a fresh discovery converges its view."""
        federation = Federation(
            FederationConfig(
                device_discovery_cache_ttl_seconds=30.0,
                registration_ttl_seconds=60.0,
            )
        )
        store = generate_store("shop.example", ANCHOR, seed=4)
        federation.add_replica_group(
            "shop.example", store.map_data, replica_count=2, weights=(3, 1)
        )
        client = federation.client()
        context = client.context
        context.discover_at(store.entrance)
        assert context.srv_of.get("r0.shop.example") == (0, 3)

        ControlPlane(federation).set_weight("r0.shop.example", 1)
        # Authority updated; the device still holds the cached view.
        context.discover_at(store.entrance)
        assert context.srv_of.get("r0.shop.example") == (0, 3)
        assert context.srv_of.is_stale("r0.shop.example")

        # Past every TTL, a fresh discovery converges the view.
        federation.network.clock.advance(61.0)
        context.discover_at(store.entrance)
        assert context.srv_of.get("r0.shop.example") == (0, 1)
        assert not context.srv_of.is_stale("r0.shop.example")

    def test_fresh_device_bootstraps_on_live_values(self):
        federation = replicated_federation(weights=(3, 1, 1))
        ControlPlane(federation).set_weight("r0.shop.example", 5)
        context = federation.client().context
        # Never discovered anything: the fallback serves the live value.
        assert context.srv_of.get("r0.shop.example") == (0, 5)


# ----------------------------------------------------------------------
# End-to-end through the workload engine
# ----------------------------------------------------------------------
class TestEngineControlIntegration:
    STEP_SECONDS = 20.0

    def _scenario(self, replicas=4, priorities=None):
        config = FederationConfig(
            device_discovery_cache_ttl_seconds=20.0,
            registration_ttl_seconds=60.0,
            service_times=ServiceTimeModel(default_ms=2.0),
            retry_policy=RetryPolicy.utilization_aware(),
        )
        return build_scenario(
            store_count=1,
            city_rows=5,
            city_cols=5,
            config=config,
            seed=33,
            reuse_worlds=True,
            store_replicas=replicas,
            store_replica_priorities=priorities,
        )

    def _run(self, scenario, control=None, churn=None, clients=12, steps=10):
        engine = WorkloadEngine(
            scenario,
            WorkloadConfig(
                clients=clients,
                steps=steps,
                seed=7,
                step_seconds=self.STEP_SECONDS,
                control=control,
                churn=churn,
            ),
        )
        return engine.run()

    def test_drain_converges_within_one_dns_ttl_with_zero_failures(self):
        scenario = self._scenario()
        drained = scenario.store_replica_ids(0)[0]
        report = self._run(
            scenario,
            control=ControlSchedule.from_events(
                [ControlEvent(2 * self.STEP_SECONDS, ControlEventKind.DRAIN, drained)]
            ),
        )
        stats = report.control_stats
        assert stats["events_applied"] == 1.0
        assert stats["devices_tracked"] > 0
        assert stats["devices_converged"] == stats["devices_tracked"]
        assert stats["devices_unconverged"] == 0.0
        # Within one DNS TTL + the device cache TTL + a round of quantization.
        assert 0.0 < stats["converge_p95_s"] <= 60.0 + 20.0 + 2 * self.STEP_SECONDS
        # A drain is not an outage.
        assert report.failed_requests == 0
        assert report.failover.stale_attempts == 0
        # The drained replica's traffic moved to its pool mates.
        arrivals = {
            sid: report.server_stats[sid]["arrivals"]
            for sid in scenario.store_replica_ids(0)
        }
        mates = [value for sid, value in arrivals.items() if sid != drained]
        assert arrivals[drained] < 0.5 * (sum(mates) / len(mates))
        # Convergence landed in the deterministic snapshot.
        assert report.snapshot()["control.devices_converged"] == stats["devices_converged"]

    def test_warm_standby_idles_until_tier0_dies(self):
        scenario = self._scenario(replicas=2, priorities=(0, 1))
        primary, standby = scenario.store_replica_ids(0)
        report = self._run(scenario)
        assert report.server_stats[standby]["arrivals"] == 0
        assert report.server_stats[primary]["arrivals"] > 0

        crashed = self._scenario(replicas=2, priorities=(0, 1))
        primary, standby = crashed.store_replica_ids(0)
        report = self._run(
            crashed,
            churn=ChurnSchedule.from_events(
                [ChurnEvent(2 * self.STEP_SECONDS, ChurnEventKind.CRASH, primary)]
            ),
        )
        assert report.server_stats[standby]["arrivals"] > 0
        assert report.failed_requests == 0

    def test_operator_promotion_beats_cold_failover(self):
        def run(promote: bool):
            scenario = self._scenario(replicas=2, priorities=(0, 1))
            primary, standby = scenario.store_replica_ids(0)
            crash_at = 2 * self.STEP_SECONDS
            control = None
            if promote:
                control = ControlSchedule.from_events(
                    [
                        ControlEvent(crash_at, ControlEventKind.PROMOTE, standby, 0),
                        ControlEvent(crash_at, ControlEventKind.SET_WEIGHT, primary, 0),
                    ]
                )
            return self._run(
                scenario,
                control=control,
                churn=ChurnSchedule.from_events(
                    [ChurnEvent(crash_at, ChurnEventKind.CRASH, primary)]
                ),
            )

        cold = run(False)
        promoted = run(True)
        assert promoted.failover.stale_attempts < cold.failover.stale_attempts
        assert promoted.failover.dead_detections_own <= cold.failover.dead_detections_own

    def test_undrain_inside_ttl_voids_stale_stopwatches(self):
        """Regression: an undrain landing before devices ever saw the drain
        must cancel their pending convergence toward the obsolete weight —
        not report a fully-converged fleet as unconverged."""
        scenario = self._scenario()
        drained = scenario.store_replica_ids(0)[0]
        engine = WorkloadEngine(
            scenario,
            WorkloadConfig(
                clients=12,
                steps=10,
                seed=7,
                step_seconds=self.STEP_SECONDS,
                # Drain and restore within one DNS TTL: most devices never
                # observe the zero-weight records at all.
                control=ControlSchedule.drain_window(
                    drained, 2 * self.STEP_SECONDS, 3 * self.STEP_SECONDS
                ),
            ),
        )
        report = engine.run()
        stats = report.control_stats
        assert stats["events_applied"] == 2.0
        # Books balance: every tracked episode either converged or is still
        # genuinely pending — no phantom non-convergence.
        assert (
            stats["devices_tracked"]
            == stats["devices_converged"] + stats["devices_unconverged"]
        )
        assert stats["devices_unconverged"] == 0.0
        # And the run's fleet really did end on the live advertisement.
        live = scenario.federation.srv_of(drained)
        for device in engine.fleet:
            held = device.client.context.srv_of.get(drained)
            assert held == live

    def test_control_runs_are_deterministic(self):
        def snapshot():
            scenario = self._scenario()
            drained = scenario.store_replica_ids(0)[0]
            report = self._run(
                scenario,
                control=ControlSchedule.drain_window(
                    drained, self.STEP_SECONDS, 6 * self.STEP_SECONDS
                ),
            )
            return report.snapshot()

        assert snapshot() == snapshot()

    def test_runs_without_control_report_empty_control_stats(self):
        report = self._run(self._scenario(), clients=4, steps=2)
        assert report.control_stats == {}
        assert not any(key.startswith("control.") for key in report.snapshot())
