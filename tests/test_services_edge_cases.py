"""Edge-case tests for the federated services, context and registry updates."""

from __future__ import annotations

import pytest

from repro.core.federation import Federation
from repro.discovery.registry import DiscoveryRegistry
from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.mapserver.auth import Credential
from repro.services.context import FederationContext, UnknownServerError
from repro.spatialindex.covering import CoveringOptions
from repro.worldgen.indoor import generate_store
from repro.worldgen.outdoor import generate_city

ANCHOR = LatLng(40.4415, -79.9575)


class TestRegistryUpdates:
    def test_update_region_replaces_covering(self):
        registry = DiscoveryRegistry(covering_options=CoveringOptions(min_level=13, max_level=17, max_cells=64))
        first_region = Polygon.regular(ANCHOR, 60.0)
        registry.register_region("store.example", first_region)
        first_records = registry.total_records

        moved_region = Polygon.regular(ANCHOR.destination(90.0, 2_000.0), 60.0)
        registration = registry.update_region("store.example", moved_region)
        assert registry.total_records == registration.record_count
        # No record for the old location remains.
        from repro.spatialindex.cellid import CellId

        old_cell = CellId.from_point(ANCHOR, 17)
        assert registry.servers_at_cell(old_cell) == []
        assert first_records > 0

    def test_update_unregistered_server_rejected(self):
        registry = DiscoveryRegistry()
        with pytest.raises(ValueError):
            registry.update_region("ghost.example", Polygon.regular(ANCHOR, 50.0))

    def test_store_relocation_visible_to_clients_after_ttl(self):
        federation = Federation()
        store = generate_store("moving-store.example", ANCHOR, seed=8)
        federation.add_map_server("moving-store.example", store.map_data)
        client = federation.client()
        assert "moving-store.example" in client.discover(ANCHOR, uncertainty_meters=40.0).server_ids

        new_anchor = ANCHOR.destination(90.0, 3_000.0)
        federation.registry.update_region(
            "moving-store.example", Polygon.regular(new_anchor, 60.0)
        )
        # After the old records' TTL expires the old location stops resolving
        # and the new one starts.
        federation.network.clock.advance(federation.config.registration_ttl_seconds + 61.0)
        assert "moving-store.example" not in client.discover(ANCHOR, uncertainty_meters=40.0).server_ids
        assert "moving-store.example" in client.discover(new_anchor, uncertainty_meters=40.0).server_ids


class TestContextEdgeCases:
    def _context(self) -> tuple[Federation, FederationContext]:
        federation = Federation()
        city = generate_city(rows=3, cols=3, seed=4)
        federation.add_map_server("city.example", city.map_data, is_world_provider=True)
        return federation, federation.build_context()

    def test_unknown_server_lookup_raises(self):
        _, context = self._context()
        with pytest.raises(UnknownServerError):
            context.server("not-deployed.example")

    def test_unreachable_discovered_servers_are_skipped(self):
        federation, context = self._context()
        # Simulate a stale DNS record: a server registered but no longer deployed.
        federation.registry.register_covering(
            "stale.example",
            [__import__("repro.spatialindex.cellid", fromlist=["CellId"]).CellId.from_point(ANCHOR, 17)],
        )
        servers = context.servers(("city.example", "stale.example"))
        assert [s.server_id for s in servers] == ["city.example"]

    def test_context_credential_default_is_anonymous(self):
        _, context = self._context()
        assert context.credential.is_anonymous


class TestFederatedServiceEdgeCases:
    @pytest.fixture()
    def small_federation(self) -> Federation:
        federation = Federation()
        city = generate_city(rows=3, cols=3, seed=4)
        federation.add_map_server("city.example", city.map_data, is_world_provider=True)
        return federation

    def test_search_with_no_matches_is_empty_not_error(self, small_federation):
        client = small_federation.client()
        center = small_federation.servers["city.example"].map_data.bounding_box().center
        result = client.search("quantum flux capacitor", near=center, radius_meters=400.0)
        assert len(result) == 0
        assert result.servers_consulted >= 1

    def test_search_with_empty_query_is_empty(self, small_federation):
        client = small_federation.client()
        center = small_federation.servers["city.example"].map_data.bounding_box().center
        result = client.search("   ", near=center, radius_meters=400.0)
        assert len(result) == 0

    def test_geocode_without_world_provider_still_answers_from_discovered_maps(self):
        federation = Federation()
        store = generate_store("lonely-store.example", ANCHOR, seed=9, street_address="1 Nowhere Lane")
        federation.add_map_server("lonely-store.example", store.map_data)
        client = federation.client()
        # Without a world provider the coarse stage is skipped entirely and
        # only the world provider-independent path can answer; with nothing to
        # discover from a text query, the result is empty rather than an error.
        result = client.geocode("lonely-store.example entrance")
        assert result.coarse_location is None
        assert result.best is None

    def test_localize_with_no_cues_far_from_servers(self, small_federation):
        from repro.localization.cues import CueBundle

        client = small_federation.client()
        result = client.localize(LatLng(10.0, 10.0), CueBundle())
        assert result.best is None
        assert result.candidates == ()

    def test_denied_servers_are_skipped_not_fatal(self):
        from repro.mapserver.policy import AccessPolicy, ServiceName

        federation = Federation()
        city = generate_city(rows=3, cols=3, seed=4)
        federation.add_map_server("city.example", city.map_data, is_world_provider=True)
        locked_policy = AccessPolicy()
        locked_policy.restrict_to_domain(ServiceName.SEARCH, "owner.example")
        store = generate_store("locked-store.example", city.intersections[1][1].location, seed=10)
        federation.add_map_server("locked-store.example", store.map_data, policy=locked_policy)

        client = federation.client()  # anonymous
        result = client.search("seaweed", near=store.entrance, radius_meters=300.0)
        assert not any(r.map_name == store.map_data.metadata.name for r in result.results)

        owner_client = federation.client(Credential(email="boss@owner.example"))
        owner_result = owner_client.search("seaweed", near=store.entrance, radius_meters=300.0)
        assert any(r.map_name == store.map_data.metadata.name for r in owner_result.results)
