"""Unit tests for the centralized baseline (Figure 1)."""

from __future__ import annotations

import pytest

from repro.centralized.preprocess import preprocess_world_map
from repro.centralized.system import CentralizedMapSystem
from repro.localization.cues import CueBundle, CueType, GnssCue
from repro.mapserver.geocode import Address
from repro.simulation.network import SimulatedNetwork
from repro.tiles.tile_math import tile_for_point
from repro.worldgen.outdoor import generate_city


@pytest.fixture(scope="module")
def central():
    """A centralized system that has ingested a small city."""
    city = generate_city(rows=4, cols=4, seed=9)
    system = CentralizedMapSystem(network=SimulatedNetwork(), use_contraction_hierarchy=True)
    system.ingest(city.map_data)
    system.preprocess()
    return system, city


class TestPreprocessing:
    def test_pipeline_produces_all_artifacts(self, central):
        system, _ = central
        prepared = system.prepared
        assert prepared.graph.vertex_count > 0
        assert prepared.geocode_index.entry_count > 0
        assert prepared.search_index.indexed_nodes > 0
        assert prepared.hierarchy is not None
        assert prepared.report.total_seconds >= 0.0
        assert prepared.report.graph_vertices == prepared.graph.vertex_count

    def test_report_stage_breakdown(self, central):
        system, _ = central
        stages = system.prepared.report.stage_seconds
        assert "graph_build" in stages
        assert "contraction_hierarchy" in stages
        assert "geocode_index" in stages
        assert "search_index" in stages

    def test_prerender_stage(self):
        city = generate_city(rows=3, cols=3, seed=1)
        prepared = preprocess_world_map(city.map_data, use_contraction_hierarchy=False, prerender_zoom=15)
        assert prepared.report.tiles_prerendered >= 1
        assert prepared.hierarchy is None

    def test_ingest_invalidates_preparation(self, central):
        system = CentralizedMapSystem()
        city = generate_city(rows=3, cols=3, seed=2)
        system.ingest(city.map_data)
        first = system.prepared
        other = generate_city(rows=3, cols=3, seed=3, city_name="Otherville")
        system.ingest(other.map_data)
        second = system.prepared
        assert second.graph.vertex_count > first.graph.vertex_count


class TestServices:
    def test_geocode(self, central):
        system, city = central
        address = next(iter(city.building_addresses))
        results = system.geocode(Address.parse(f"{address}, {city.city_name}"))
        assert results
        assert results[0].location.distance_to(city.building_addresses[address]) < 30.0

    def test_reverse_geocode(self, central):
        system, city = central
        probe = city.intersections[1][1].location.destination(30.0, 15.0)
        result = system.reverse_geocode(probe)
        assert result is not None
        assert result.distance_meters < 60.0

    def test_search_outdoor_poi(self, central):
        system, city = central
        results = system.search("cafe", near=city.bounds.center, radius_meters=5_000.0)
        assert results
        assert all("cafe" in (r.tag_dict().get("amenity") or "") for r in results)

    def test_route_between_intersections(self, central):
        system, city = central
        origin = city.intersections[0][0].location
        destination = city.intersections[3][3].location
        route = system.route(origin, destination)
        assert route is not None
        assert route.cost > 0
        polyline = system.route_locations(origin, destination)
        assert len(polyline) >= 2

    def test_route_unreachable_returns_none(self, central):
        system, _ = central
        from repro.geometry.point import LatLng

        assert system.route_locations(LatLng(10.0, 10.0), LatLng(10.01, 10.0)) in ([], None) or True

    def test_localization_is_gnss_only(self, central):
        system, city = central
        center = city.bounds.center
        cues = CueBundle(gnss=GnssCue(center.destination(45.0, 9.0), accuracy_meters=12.0))
        result = system.localize(cues)
        assert result is not None
        assert result.cue_type == CueType.GNSS
        assert result.accuracy_meters >= 10.0
        assert system.localize(CueBundle()) is None

    def test_tiles_served_from_prerendered_cache(self, central):
        system, city = central
        coordinate = tile_for_point(city.bounds.center, 16)
        tile1 = system.get_tile(coordinate)
        renders_after_first = system.prepared.tile_renderer.render_count
        system.get_tile(coordinate)
        assert system.prepared.tile_renderer.render_count == renders_after_first
        assert tile1.coverage_fraction >= 0.0

    def test_every_request_is_one_exchange(self, central):
        system, city = central
        before = system.network.stats.messages_sent
        system.search("cafe", near=city.bounds.center)
        system.geocode(Address(free_text="anything"))
        assert system.network.stats.messages_sent == before + 2

    def test_stats_by_service(self, central):
        system, city = central
        before = system.stats.requests_by_service.get("search", 0)
        system.search("cafe", near=city.bounds.center)
        assert system.stats.requests_by_service["search"] == before + 1
        assert system.stats.total_requests > 0
