"""Unit tests for DNS zones and authoritative servers."""

from __future__ import annotations

import pytest

from repro.dns.message import Question, ResponseCode
from repro.dns.records import RecordType, ResourceRecord
from repro.dns.server import NameServer
from repro.dns.zone import Zone, ZoneError


@pytest.fixture()
def zone() -> Zone:
    z = Zone(origin="maps.example")
    z.add("maps.example", RecordType.SOA, "admin.maps.example")
    z.add("city.maps.example", RecordType.A, "10.0.0.1")
    z.add("city.maps.example", RecordType.TXT, "city map server")
    z.add("alias.maps.example", RecordType.CNAME, "city.maps.example")
    # Delegation of the "stores" subtree, with in-bailiwick glue.
    z.add("stores.maps.example", RecordType.NS, "ns.stores.maps.example")
    z.add("ns.stores.maps.example", RecordType.A, "10.0.0.53")
    return z


class TestZone:
    def test_records_at_exact_name(self, zone: Zone):
        records = zone.records_at("city.maps.example", RecordType.A)
        assert len(records) == 1
        assert records[0].data == "10.0.0.1"

    def test_records_at_any_type(self, zone: Zone):
        records = zone.records_at("city.maps.example")
        assert {r.record_type for r in records} == {RecordType.A, RecordType.TXT}

    def test_out_of_zone_record_rejected(self, zone: Zone):
        with pytest.raises(ZoneError):
            zone.add("other.example", RecordType.A, "1.1.1.1")

    def test_duplicate_record_deduplicated(self, zone: Zone):
        before = zone.record_count
        zone.add("city.maps.example", RecordType.A, "10.0.0.1")
        assert zone.record_count == before

    def test_remove_records(self, zone: Zone):
        removed = zone.remove_records("city.maps.example", RecordType.TXT)
        assert removed == 1
        assert zone.records_at("city.maps.example", RecordType.TXT) == []

    def test_covering_delegation(self, zone: Zone):
        assert zone.covering_delegation("a.stores.maps.example") == "stores.maps.example"
        assert zone.covering_delegation("city.maps.example") is None

    def test_contains_name(self, zone: Zone):
        assert zone.contains_name("city.maps.example")
        assert not zone.contains_name("ghost.maps.example")

    def test_names(self, zone: Zone):
        assert "city.maps.example" in zone.names()


class TestZoneSurgicalRemoval:
    """Record removal must keep the name index and delegation state exact,
    so a deregistered server stops resolving at the authority immediately
    (only caches may stay stale)."""

    def test_remove_one_record_keeps_siblings(self):
        zone = Zone(origin="maps.example")
        first = zone.add("cell.maps.example", RecordType.SRV, "0 0 443 r0.shop")
        zone.add("cell.maps.example", RecordType.SRV, "0 0 443 r1.shop")
        assert zone.remove_record(first)
        remaining = zone.records_at("cell.maps.example", RecordType.SRV)
        assert [r.data for r in remaining] == ["0 0 443 r1.shop"]
        assert zone.contains_name("cell.maps.example")

    def test_removing_last_record_clears_name_immediately(self):
        zone = Zone(origin="maps.example")
        record = zone.add("cell.maps.example", RecordType.SRV, "0 0 443 r0.shop")
        assert zone.remove_record(record)
        assert not zone.contains_name("cell.maps.example")
        assert "cell.maps.example" not in zone.names()
        # The authority answers NXDOMAIN at once — no ghost records.
        server = NameServer(server_id="ns", zones={"maps.example": zone})
        response = server.handle(Question("cell.maps.example", RecordType.SRV))
        assert response.code == ResponseCode.NXDOMAIN

    def test_removing_last_ns_clears_delegation_walk(self):
        zone = Zone(origin="maps.example")
        ns1 = zone.add("child.maps.example", RecordType.NS, "ns1.example")
        ns2 = zone.add("child.maps.example", RecordType.NS, "ns2.example")
        assert zone.covering_delegation("deep.child.maps.example") == "child.maps.example"
        zone.remove_record(ns1)
        # One NS left: the delegation must survive.
        assert zone.covering_delegation("deep.child.maps.example") == "child.maps.example"
        zone.remove_record(ns2)
        assert zone.covering_delegation("deep.child.maps.example") is None

    def test_remove_missing_record_is_false(self):
        zone = Zone(origin="maps.example")
        ghost = ResourceRecord("cell.maps.example", RecordType.SRV, "0 0 443 nobody")
        assert not zone.remove_record(ghost)

    def test_remove_records_by_name_only(self):
        zone = Zone(origin="maps.example")
        zone.add("cell.maps.example", RecordType.SRV, "0 0 443 r0.shop")
        zone.add("cell.maps.example", RecordType.TXT, "note")
        assert zone.remove_records("cell.maps.example") == 2
        assert not zone.contains_name("cell.maps.example")
        assert zone.record_count == 0


class TestNameServer:
    @pytest.fixture()
    def server(self, zone: Zone) -> NameServer:
        ns = NameServer(server_id="ns.maps.example")
        ns.host_zone(zone)
        return ns

    def test_authoritative_answer(self, server: NameServer):
        response = server.handle(Question("city.maps.example", RecordType.A))
        assert response.code == ResponseCode.NOERROR
        assert response.authoritative
        assert response.answers[0].data == "10.0.0.1"

    def test_nxdomain_for_unknown_name(self, server: NameServer):
        response = server.handle(Question("ghost.maps.example", RecordType.A))
        assert response.code == ResponseCode.NXDOMAIN

    def test_nodata_for_known_name_wrong_type(self, server: NameServer):
        response = server.handle(Question("city.maps.example", RecordType.SRV))
        assert response.code == ResponseCode.NOERROR
        assert response.answers == []
        assert not response.is_referral

    def test_refused_outside_hosted_zones(self, server: NameServer):
        response = server.handle(Question("elsewhere.org", RecordType.A))
        assert response.code == ResponseCode.REFUSED

    def test_referral_below_delegation(self, server: NameServer):
        response = server.handle(Question("a.stores.maps.example", RecordType.A))
        assert response.is_referral
        assert response.authority[0].data == "ns.stores.maps.example"
        # Glue for the delegated server is included when available.
        assert any(r.record_type == RecordType.A for r in response.additional)

    def test_cname_chased_within_zone(self, server: NameServer):
        response = server.handle(Question("alias.maps.example", RecordType.A))
        types = {r.record_type for r in response.answers}
        assert RecordType.CNAME in types
        assert RecordType.A in types

    def test_query_counter(self, server: NameServer):
        server.handle(Question("city.maps.example", RecordType.A))
        server.handle(Question("city.maps.example", RecordType.A))
        assert server.queries_served == 2

    def test_most_specific_zone_wins(self, zone: Zone):
        child = Zone(origin="stores.maps.example")
        child.add("a.stores.maps.example", RecordType.A, "10.1.1.1")
        server = NameServer(server_id="ns")
        server.host_zone(zone)
        server.host_zone(child)
        response = server.handle(Question("a.stores.maps.example", RecordType.A))
        assert response.answers and response.answers[0].data == "10.1.1.1"
