"""Unit tests for the per-map-server services (geocode, search, routing, localization, tiles)."""

from __future__ import annotations

import random

import pytest

from repro.geometry.point import LatLng
from repro.localization.cues import CueType
from repro.mapserver.geocode import Address, GeocodeService
from repro.mapserver.routing_service import RoutingService
from repro.mapserver.search import SearchService
from repro.mapserver.server import MapServer
from repro.mapserver.tile_service import TileService
from repro.tiles.tile_math import tile_for_point


class TestAddressParsing:
    def test_parse_house_number_and_street(self):
        address = Address.parse("124 Fifth Street, Simville")
        assert address.house_number == "124"
        assert address.street == "Fifth Street"
        assert address.city == "Simville"

    def test_parse_place_name(self):
        address = Address.parse("City Cafe, Simville")
        assert address.place_name == "City Cafe"
        assert address.city == "Simville"

    def test_as_query_prefers_free_text(self):
        address = Address(free_text="  Some   Place ")
        assert address.as_query() == "some place"

    def test_as_query_from_components(self):
        address = Address(house_number="12", street="Oak Avenue", city="Simville")
        assert address.as_query() == "12 oak avenue simville"


class TestGeocodeService:
    def test_forward_geocode_building_address(self, city):
        service = GeocodeService(city.map_data)
        some_address = next(iter(city.building_addresses))
        results = service.geocode(Address.parse(f"{some_address}, {city.city_name}"))
        assert results
        assert results[0].label.lower().startswith(some_address.split()[0])
        expected_location = city.building_addresses[some_address]
        assert results[0].location.distance_to(expected_location) < 1.0

    def test_forward_geocode_poi_name(self, city):
        service = GeocodeService(city.map_data)
        poi_name = next(iter(city.poi_locations))
        results = service.geocode(Address(free_text=poi_name))
        assert results
        assert results[0].location.distance_to(city.poi_locations[poi_name]) < 1.0

    def test_unknown_address_returns_empty(self, city):
        service = GeocodeService(city.map_data)
        assert service.geocode(Address(free_text="zzz qqq nowhere")) == []

    def test_empty_query_returns_empty(self, city):
        service = GeocodeService(city.map_data)
        assert service.geocode(Address(free_text="   ")) == []

    def test_results_sorted_by_score(self, city):
        service = GeocodeService(city.map_data)
        results = service.geocode(Address(free_text="Street Simville"), limit=10)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_reverse_geocode_snaps_to_named_node(self, city):
        service = GeocodeService(city.map_data)
        target = city.intersections[1][1]
        probe = target.location.destination(45.0, 12.0)
        result = service.reverse_geocode(probe)
        assert result is not None
        assert result.distance_meters < 50.0
        assert result.label

    def test_reverse_geocode_nothing_nearby(self, city):
        service = GeocodeService(city.map_data)
        assert service.reverse_geocode(LatLng(10.0, 10.0)) is None

    def test_query_counter(self, city):
        service = GeocodeService(city.map_data)
        service.geocode(Address(free_text="anything"))
        service.reverse_geocode(city.bounds.center)
        assert service.queries_served == 2


class TestSearchService:
    def test_search_by_product_keyword(self, store):
        service = SearchService(store.map_data)
        results = service.search("seaweed", near=store.entrance, radius_meters=200.0)
        assert results
        assert any("seaweed" in (r.tag_dict().get("product") or "") for r in results)

    def test_search_by_amenity(self, city):
        service = SearchService(city.map_data)
        results = service.search("cafe", near=city.bounds.center, radius_meters=5_000.0)
        assert results
        assert all(r.distance_meters <= 5_000.0 for r in results)

    def test_radius_filter(self, city):
        service = SearchService(city.map_data)
        tight = service.search("cafe", near=city.bounds.center, radius_meters=10.0)
        loose = service.search("cafe", near=city.bounds.center, radius_meters=5_000.0)
        assert len(tight) <= len(loose)

    def test_no_match_returns_empty(self, store):
        service = SearchService(store.map_data)
        assert service.search("nonexistentproductxyz", near=store.entrance) == []

    def test_results_ranked_by_relevance(self, store):
        service = SearchService(store.map_data)
        results = service.search("seaweed snack", near=store.entrance, radius_meters=300.0)
        relevances = [r.relevance for r in results]
        assert relevances == sorted(relevances, reverse=True)

    def test_limit_respected(self, store):
        service = SearchService(store.map_data)
        results = service.search("shelf", near=store.entrance, radius_meters=300.0, limit=3)
        assert len(results) <= 3

    def test_proximity_breaks_ties(self, store):
        service = SearchService(store.map_data)
        results = service.search("aisle", near=store.entrance, radius_meters=300.0, limit=50)
        assert len(results) >= 2


class TestRoutingService:
    def test_route_between_points(self, city):
        service = RoutingService(city.map_data)
        origin = city.intersections[0][0].location
        destination = city.intersections[3][3].location
        response = service.route(origin, destination)
        assert response is not None
        assert len(response.points) >= 2
        assert response.cost > 0
        assert response.points[0].distance_to(origin) < 30.0

    def test_route_snapping_distance_reported(self, city):
        service = RoutingService(city.map_data)
        origin = city.intersections[0][0].location.destination(45.0, 25.0)
        destination = city.intersections[2][2].location
        response = service.route(origin, destination)
        assert response is not None
        assert response.entry_snap_meters == pytest.approx(25.0, rel=0.2)

    def test_route_as_leg(self, city):
        service = RoutingService(city.map_data)
        response = service.route(city.intersections[0][0].location, city.intersections[1][1].location)
        leg = response.as_leg("city-server")
        assert leg.server_id == "city-server"
        assert leg.points == response.points

    def test_contraction_algorithm_matches_dijkstra(self, city):
        plain = RoutingService(city.map_data, algorithm="dijkstra")
        fast = RoutingService(city.map_data, algorithm="contraction")
        rng = random.Random(0)
        for _ in range(5):
            i1, j1 = rng.randrange(5), rng.randrange(5)
            i2, j2 = rng.randrange(5), rng.randrange(5)
            a = city.intersections[i1][j1].location
            b = city.intersections[i2][j2].location
            r1 = plain.route(a, b)
            r2 = fast.route(a, b)
            assert r1.cost == pytest.approx(r2.cost, rel=1e-9)

    def test_contraction_hierarchy_is_built_lazily(self, city):
        service = RoutingService(city.map_data, algorithm="contraction")
        assert service._hierarchy is None  # nothing preprocessed at startup
        response = service.route(
            city.intersections[0][0].location, city.intersections[1][1].location
        )
        assert response is not None
        assert service._hierarchy is not None  # first query built it

    def test_contraction_falls_back_to_dijkstra_for_other_metrics(self, city):
        fast = RoutingService(city.map_data, algorithm="contraction")
        plain = RoutingService(city.map_data, algorithm="dijkstra")
        a = city.intersections[0][0].location
        b = city.intersections[2][2].location
        # The hierarchy is built for "distance"; a "time" query must fall
        # back to Dijkstra yet return the same cost as a plain service.
        assert fast.route(a, b, metric="time").cost == pytest.approx(
            plain.route(a, b, metric="time").cost, rel=1e-9
        )

    def test_contraction_settles_fewer_vertices_than_dijkstra(self, city):
        plain = RoutingService(city.map_data, algorithm="dijkstra")
        fast = RoutingService(city.map_data, algorithm="contraction")
        a = city.intersections[0][0].location
        b = city.intersections[4][4].location
        assert fast.route(a, b).settled_vertices <= plain.route(a, b).settled_vertices

    def test_unroutable_map_returns_none(self, store):
        # Build a map with no routable ways.
        from repro.osm.builder import MapBuilder

        builder = MapBuilder(name="norouting")
        builder.add_node(LatLng(40.0, -80.0), {"name": "isolated"})
        service = RoutingService(builder.build())
        assert not service.is_routable
        assert service.route(LatLng(40.0, -80.0), LatLng(40.001, -80.0)) is None


class TestTileService:
    def test_get_tile_counts_requests(self, city):
        service = TileService(city.map_data)
        coordinate = tile_for_point(city.bounds.center, 16)
        service.get_tile(coordinate)
        service.get_tile(coordinate)
        assert service.tiles_served == 2
        assert service.cache_size >= 1

    def test_prerender_coverage(self, store):
        service = TileService(store.map_data)
        count = service.prerender_coverage(zoom=19)
        assert count >= 1
        assert service.cache_size >= count


class TestMapServerFacade:
    def test_server_exposes_all_services(self, store):
        server = MapServer(server_id="s1", map_data=store.map_data)
        store.equip_map_server(server)
        assert server.name == store.map_data.metadata.name
        assert server.covers_point(store.entrance)
        assert CueType.BEACON in server.advertised_localization_technologies()

        search_results = server.search("seaweed", near=store.entrance, radius_meters=200.0)
        assert search_results

        route = server.route(store.entrance, search_results[0].location)
        assert route is not None

        tile = server.get_tile(tile_for_point(store.entrance, 19))
        assert tile.source_map == store.map_data.metadata.name

        assert server.stats.total_requests >= 3

    def test_localize_via_server(self, store, rng):
        server = MapServer(server_id="s1", map_data=store.map_data)
        store.equip_map_server(server)
        true_position = store.random_interior_point(rng)
        cues = store.sense_cues(true_position, rng)
        results = server.localize(cues)
        assert results
        best_error = min(
            r.location.distance_to(store.local_to_geographic(true_position)) for r in results
        )
        assert best_error < 8.0

    def test_covers_point_fuzzy_slack(self, store):
        server = MapServer(server_id="s1", map_data=store.map_data)
        just_outside = store.entrance.destination(180.0, 20.0)
        assert server.covers_point(just_outside, slack_meters=50.0)
        far_away = store.entrance.destination(180.0, 5_000.0)
        assert not server.covers_point(far_away)
