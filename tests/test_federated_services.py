"""Integration tests for the federated client-side services (Section 5.2)."""

from __future__ import annotations

import random

import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng
from repro.localization.cues import CueBundle, GnssCue
from repro.localization.imu import DeadReckoningTracker
from repro.mapserver.auth import Credential
from repro.services.routing import FederatedRoutingError
from repro.worldgen.scenario import outdoor_point_near


class TestDiscoveryThroughClient:
    def test_discovery_near_store_finds_city_and_store(self, scenario, client):
        store = scenario.stores[0]
        result = client.discover(store.entrance, uncertainty_meters=50.0)
        assert "city.maps.example" in result.server_ids
        assert store.name in result.server_ids

    def test_discovery_away_from_stores_finds_only_city(self, scenario, client):
        corner = scenario.city.intersections[0][0].location
        result = client.discover(corner, uncertainty_meters=30.0)
        assert "city.maps.example" in result.server_ids
        store_names = {store.name for store in scenario.stores}
        assert not store_names & set(result.server_ids)


class TestFederatedSearch:
    def test_indoor_product_found_via_federation(self, scenario, client):
        store = scenario.stores[0]
        result = client.search("seaweed", near=store.entrance, radius_meters=300.0)
        assert len(result) > 0
        assert any(store.name == r.map_name for r in result.results)
        assert result.servers_consulted >= 2

    def test_centralized_misses_withheld_indoor_data(self, scenario):
        store = scenario.stores[0]
        central_results = scenario.centralized.search("seaweed", near=store.entrance, radius_meters=300.0)
        assert central_results == []

    def test_outdoor_poi_found_by_both(self, scenario, client):
        poi_name, poi_location = next(iter(scenario.city.poi_locations.items()))
        keyword = poi_name.split()[1]  # e.g. "Restaurant"
        federated = client.search(keyword, near=poi_location, radius_meters=400.0)
        central = scenario.centralized.search(keyword, near=poi_location, radius_meters=400.0)
        assert len(federated) > 0
        assert len(central) > 0

    def test_ranking_is_relevance_ordered(self, scenario, client):
        store = scenario.stores[0]
        result = client.search("organic", near=store.entrance, radius_meters=300.0, limit=20)
        relevances = [r.relevance for r in result.results]
        assert relevances == sorted(relevances, reverse=True)

    def test_search_away_from_stores_returns_no_indoor_items(self, scenario, client):
        corner = scenario.city.intersections[0][0].location
        result = client.search("seaweed", near=corner, radius_meters=100.0)
        store_names = {store.name for store in scenario.stores}
        assert not any(r.map_name in store_names for r in result.results)


class TestFederatedGeocode:
    def test_city_address_geocodes(self, scenario, client):
        address = next(iter(scenario.city.building_addresses))
        result = client.geocode(f"{address}, {scenario.city.city_name}")
        assert result.best is not None
        expected = scenario.city.building_addresses[address]
        assert result.best.location.distance_to(expected) < 30.0

    def test_two_stage_geocode_reaches_store_entrance(self, scenario, client):
        store = scenario.stores[0]
        entrance_address = None
        for node in store.map_data.nodes():
            if "addr:full" in node.tags:
                entrance_address = node.tags["addr:full"]
                break
        assert entrance_address is not None
        result = client.geocode(f"{store.name} entrance, {entrance_address}")
        assert result.best is not None
        assert result.coarse_location is not None
        # The winning candidate should come from the store's own map and be
        # at (or extremely near) the entrance.
        assert result.best.location.distance_to(store.entrance) < 60.0

    def test_unknown_address(self, scenario, client):
        result = client.geocode("qqqq zzzz street, Nowhereville")
        assert result.best is None

    def test_reverse_geocode_prefers_fine_map(self, scenario, client):
        store = scenario.stores[0]
        inside_point = store.product_locations["wasabi seaweed snack"]
        result = client.reverse_geocode(inside_point, max_distance_meters=100.0)
        assert result.best is not None
        assert result.best.map_name == store.map_data.metadata.name
        assert result.best.distance_meters < 10.0

    def test_reverse_geocode_outdoors(self, scenario, client):
        corner = scenario.city.intersections[0][0].location
        result = client.reverse_geocode(corner.destination(45.0, 10.0))
        assert result.best is not None
        assert result.best.map_name == scenario.city.map_data.metadata.name


class TestFederatedRouting:
    def test_street_to_shelf_route_spans_two_maps(self, scenario, client):
        store = scenario.stores[0]
        origin = outdoor_point_near(scenario, 0, 200.0)
        destination = store.product_locations["wasabi seaweed snack"]
        result = client.route(origin, destination)
        assert result.legs_used >= 2
        assert "city.maps.example" in result.servers
        assert store.name in result.servers
        assert result.route.points[0].distance_to(origin) < 1.0
        assert result.route.points[-1].distance_to(destination) < 1.0

    def test_stitched_route_stretch_is_bounded(self, scenario, client):
        store = scenario.stores[0]
        origin = outdoor_point_near(scenario, 0, 200.0)
        destination = store.product_locations["wasabi seaweed snack"]
        result = client.route(origin, destination)
        straight_line = origin.distance_to(destination)
        assert result.length_meters < 4.0 * straight_line

    def test_outdoor_only_route(self, scenario, client):
        origin = scenario.city.intersections[0][0].location
        destination = scenario.city.intersections[4][4].location
        result = client.route(origin, destination)
        assert result.servers == ("city.maps.example",)
        central = scenario.centralized.route(origin, destination)
        assert central is not None
        # The federated outdoor route should match the centralized optimum,
        # both serve it from the same city graph.
        assert result.route.legs[0].cost == pytest.approx(central.cost, rel=1e-6)

    def test_route_with_waypoints_discovers_along_path(self, scenario, client):
        origin = scenario.city.intersections[0][0].location
        destination = scenario.city.intersections[4][4].location
        waypoints = [scenario.city.intersections[2][2].location]
        result = client.route(origin, destination, waypoints=waypoints)
        assert result.dns_lookups > 0

    def test_unroutable_region_raises(self, scenario, client):
        with pytest.raises(FederatedRoutingError):
            client.route(LatLng(10.0, 10.0), LatLng(10.001, 10.0))


class TestFederatedLocalization:
    def test_indoor_localization_beats_gnss(self, scenario, client):
        store = scenario.stores[0]
        rng = random.Random(7)
        federated_errors = []
        gnss_errors = []
        for _ in range(10):
            true_local = store.random_interior_point(rng)
            true_geo = store.local_to_geographic(true_local)
            cues = store.sense_cues(true_local, rng)
            result = client.localize(true_geo, cues)
            assert result.best is not None
            federated_errors.append(result.location.distance_to(true_geo))
            gnss_errors.append(cues.gnss.location.distance_to(true_geo))
        assert sum(federated_errors) / 10 < sum(gnss_errors) / 10
        assert sum(federated_errors) / 10 < 5.0

    def test_localization_far_from_any_indoor_map_degrades_to_gnss(self, scenario, client):
        corner = scenario.city.intersections[0][0].location
        cues = CueBundle(gnss=GnssCue(corner.destination(45.0, 8.0), accuracy_meters=10.0))
        result = client.localize(corner, cues)
        assert result.best is not None
        assert result.best.result.cue_type.value == "gnss"

    def test_tracker_rejects_wrong_store(self, scenario, client):
        """With dead reckoning anchored in store 0, a store-1 result is rejected."""
        store = scenario.stores[0]
        rng = random.Random(9)
        true_local = store.random_interior_point(rng)
        true_geo = store.local_to_geographic(true_local)
        tracker = DeadReckoningTracker(anchor=true_geo, anchor_accuracy_meters=2.0)
        cues = store.sense_cues(true_local, rng)
        result = client.localize(true_geo, cues, tracker=tracker)
        assert result.best is not None
        assert result.best.result.server_id in (store.name, "client.gnss")
        assert result.location.distance_to(true_geo) < 10.0

    def test_fiducial_gives_sub_meter_accuracy(self, scenario, client):
        store = scenario.stores[0]
        rng = random.Random(11)
        true_local = store.random_interior_point(rng)
        true_geo = store.local_to_geographic(true_local)
        cues = store.sense_cues(true_local, rng, include_fiducial=True)
        result = client.localize(true_geo, cues)
        assert result.best is not None
        assert result.location.distance_to(true_geo) < 2.0


class TestFederatedTiles:
    def test_viewport_near_store_composites_both_maps(self, scenario, client):
        store = scenario.stores[0]
        viewport = BoundingBox.around(store.entrance, 60.0)
        view = client.render_viewport(viewport, zoom=19)
        assert view.servers_consulted >= 2
        assert view.tiles_downloaded > 0
        assert view.coverage_fraction > 0.0
        contributing_maps = set()
        for composite in view.composites.values():
            contributing_maps.update(k for k, v in composite.contributions.items() if v > 0)
        assert store.map_data.metadata.name in contributing_maps

    def test_viewport_outdoors_uses_city_only(self, scenario, client):
        corner = scenario.city.intersections[0][0].location
        viewport = BoundingBox.around(corner, 60.0)
        view = client.render_viewport(viewport, zoom=18)
        contributing_maps = set()
        for composite in view.composites.values():
            contributing_maps.update(k for k, v in composite.contributions.items() if v > 0)
        store_names = {store.map_data.metadata.name for store in scenario.stores}
        assert not contributing_maps & store_names


class TestPolicyEnforcementThroughFederation:
    def test_campus_search_restricted_to_campus_users(self, scenario):
        campus = scenario.campus
        assert campus is not None
        building_name, building_location = next(iter(campus.building_locations.items()))

        outsider = scenario.federation.client()
        insider = scenario.federation.client(Credential(email="alice@campus.edu"))

        outsider_result = outsider.search("lab", near=building_location, radius_meters=300.0)
        insider_result = insider.search("lab", near=building_location, radius_meters=300.0)

        campus_map = campus.map_data.metadata.name
        assert not any(r.map_name == campus_map for r in outsider_result.results)
        assert any(r.map_name == campus_map for r in insider_result.results)

    def test_campus_localization_restricted_to_campus_app(self, scenario):
        campus = scenario.campus
        assert campus is not None
        campus_server = scenario.campus_server
        assert campus_server is not None
        from repro.localization.cues import CueBundle, GnssCue
        from repro.mapserver.policy import AccessDenied

        building_location = next(iter(campus.building_locations.values()))
        cues = CueBundle(gnss=GnssCue(building_location))

        with pytest.raises(AccessDenied):
            campus_server.localize(cues, Credential(application_id="random-app"))
        # The blessed application is allowed (even if the campus has no
        # fingerprint data, the request is authorised).
        campus_server.localize(cues, Credential(application_id=campus.navigation_app_id))

    def test_network_accounting_visible_to_client(self, scenario):
        fresh_client = scenario.federation.client()
        before = fresh_client.network_messages
        store = scenario.stores[0]
        fresh_client.search("seaweed", near=store.entrance, radius_meters=200.0)
        assert fresh_client.network_messages > before
        assert fresh_client.network_latency_ms > 0.0
