"""Smoke test for the autoscaling flash-crowd example.

``examples/autoscale_flashcrowd.py`` is documentation that executes: the
pressure timeline, the control-plane action log, and the closing stats
must keep rendering end-to-end as the autoscale API evolves.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_example():
    spec = importlib.util.spec_from_file_location(
        "autoscale_flashcrowd", REPO_ROOT / "examples" / "autoscale_flashcrowd.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("autoscale_flashcrowd", module)
    spec.loader.exec_module(module)
    return module


example = _load_example()


class TestAutoscaleExample:
    def test_end_to_end(self, capsys):
        # Long enough for promote AND the first ramp-down, short enough
        # for tier-1: the crowd ebbs at 240 s = step 12 of 20 s steps.
        exit_code = example.main(["--steps", "24"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Zone pressure per telemetry window" in out
        assert "action log" in out
        assert "promotions" in out
        # The crowd actually registered as pressure and the scaler acted.
        assert example.BAR_GLYPH * 4 in out
        assert "set-weight" in out
        assert "[REJECTED]" not in out

    def test_timeline_marks_crowd_windows_and_capacity(self):
        engine, report = example.build_run(steps=24)
        lines = example.pressure_timeline(engine)
        crowd_rows = [line for line in lines[1:] if "yes" in line]
        assert crowd_rows, "no telemetry window overlapped the crowd"
        assert report.autoscale_stats["promotions"] >= 1.0
        assert report.autoscale_stats["flaps"] == 0.0
