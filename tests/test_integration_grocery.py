"""End-to-end integration test of the Section 2 grocery-store walkthrough.

The paper's motivating application: a user on the street searches for a
specific product ("a particular flavor of seaweed"), the system discovers the
grocery store's own map server, finds the shelf, computes a route stitched
from the city map (street to storefront) and the store map (entrance to
shelf), and keeps the user localized — coarsely outdoors, precisely indoors.
"""

from __future__ import annotations

import random

import pytest

from repro.localization.imu import DeadReckoningTracker, MotionUpdate
from repro.worldgen.scenario import build_scenario, outdoor_point_near


@pytest.fixture(scope="module")
def walkthrough():
    scenario = build_scenario(store_count=1, include_campus=False, seed=21)
    client = scenario.federation.client()
    return scenario, client


class TestGrocerySearchToNavigation:
    def test_product_search_finds_the_shelf(self, walkthrough):
        scenario, client = walkthrough
        store = scenario.stores[0]
        user_location = outdoor_point_near(scenario, 0, 150.0)

        result = client.search("wasabi seaweed", near=user_location, radius_meters=400.0)
        assert len(result) > 0
        top = result.results[0]
        assert top.map_name == store.map_data.metadata.name
        expected_shelf = store.product_locations["wasabi seaweed snack"]
        assert top.location.distance_to(expected_shelf) < 2.0

    def test_route_spans_street_and_store(self, walkthrough):
        scenario, client = walkthrough
        store = scenario.stores[0]
        user_location = outdoor_point_near(scenario, 0, 150.0)
        shelf = store.product_locations["wasabi seaweed snack"]

        route = client.route(user_location, shelf)
        assert "city.maps.example" in route.servers
        assert store.name in route.servers
        assert route.route.points[0].distance_to(user_location) < 1.0
        assert route.route.points[-1].distance_to(shelf) < 1.0
        # The hand-over happens near the storefront: some stitched point lies
        # within a few tens of meters of the entrance.
        assert min(p.distance_to(store.entrance) for p in route.route.points) < 40.0

    def test_centralized_system_cannot_complete_the_task(self, walkthrough):
        """The centralized provider never ingested the store's map, so neither
        the product search nor the indoor leg of the route is possible."""
        scenario, _ = walkthrough
        store = scenario.stores[0]
        user_location = outdoor_point_near(scenario, 0, 150.0)
        shelf = store.product_locations["wasabi seaweed snack"]

        assert scenario.centralized.search("wasabi seaweed", near=user_location, radius_meters=400.0) == []
        central_route = scenario.centralized.route(user_location, shelf)
        if central_route is not None:
            polyline = scenario.centralized.route_locations(user_location, shelf)
            # The centralized route can only end at the nearest street vertex,
            # well short of the shelf inside the store.
            assert polyline[-1].distance_to(shelf) > 20.0

    def test_localization_switches_from_gnss_to_store(self, walkthrough):
        scenario, client = walkthrough
        store = scenario.stores[0]
        rng = random.Random(33)

        # Outdoors: only GNSS available, so the best result is the GNSS fix.
        street_point = outdoor_point_near(scenario, 0, 200.0)
        from repro.localization.cues import CueBundle, GnssCue

        outdoor_cues = CueBundle(gnss=GnssCue(street_point.destination(10.0, 7.0), accuracy_meters=10.0))
        outdoor_fix = client.localize(street_point, outdoor_cues)
        assert outdoor_fix.best is not None
        assert outdoor_fix.best.result.cue_type.value == "gnss"

        # Indoors: the store's beacon/image localization takes over and is far
        # more accurate than the (simulated, degraded) GNSS.
        true_local = store.random_interior_point(rng)
        true_geo = store.local_to_geographic(true_local)
        indoor_cues = store.sense_cues(true_local, rng, gnss_error_meters=15.0)
        indoor_fix = client.localize(true_geo, indoor_cues)
        assert indoor_fix.best is not None
        assert indoor_fix.best.result.server_id == store.name
        assert indoor_fix.location.distance_to(true_geo) < 5.0

    def test_tracked_walk_through_store(self, walkthrough):
        """Dead reckoning plus periodic federated fixes keeps error bounded."""
        scenario, client = walkthrough
        store = scenario.stores[0]
        rng = random.Random(44)

        from repro.geometry.point import LocalPoint

        true_position = LocalPoint(store.width_meters / 2.0, 2.0, store.projection.frame)
        tracker = DeadReckoningTracker(
            anchor=store.local_to_geographic(true_position), anchor_accuracy_meters=2.0, drift_rate=0.08
        )
        errors = []
        for step in range(12):
            # Walk 2 m "north" through the store (in the local frame).
            true_position = LocalPoint(true_position.x, true_position.y + 2.0, true_position.frame)
            heading = 360.0 - store.projection.rotation_degrees  # local +y in geographic terms
            tracker.apply(MotionUpdate(heading_degrees=heading % 360.0, distance_meters=2.0))
            if step % 3 == 2:
                cues = store.sense_cues(true_position, rng)
                fix = client.localize(store.local_to_geographic(true_position), cues, tracker=tracker)
                if fix.best is not None and fix.best.result.server_id == store.name:
                    tracker.re_anchor(fix.location, fix.accuracy_meters or 2.0)
            errors.append(
                tracker.position.distance_to(store.local_to_geographic(true_position))
            )
        assert errors[-1] < 8.0
        assert max(errors) < 15.0

    def test_viewport_composites_store_over_city(self, walkthrough):
        scenario, client = walkthrough
        store = scenario.stores[0]
        from repro.geometry.bbox import BoundingBox

        viewport = BoundingBox.around(store.entrance, 50.0)
        view = client.render_viewport(viewport, zoom=19)
        assert view.coverage_fraction > 0.0
        contributing = set()
        for composite in view.composites.values():
            contributing.update(name for name, pixels in composite.contributions.items() if pixels > 0)
        assert store.map_data.metadata.name in contributing

    def test_whole_walkthrough_message_budget(self, walkthrough):
        """The full task costs a bounded number of network messages."""
        scenario, _ = walkthrough
        store = scenario.stores[0]
        client = scenario.federation.client()
        scenario.federation.reset_network_stats()

        user_location = outdoor_point_near(scenario, 0, 150.0)
        shelf = store.product_locations["wasabi seaweed snack"]
        client.search("wasabi seaweed", near=user_location, radius_meters=400.0)
        client.route(user_location, shelf)
        messages = scenario.federation.network.stats.messages_sent
        assert 0 < messages < 400
