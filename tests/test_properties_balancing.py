"""Property-based tests locking down RFC 2782 ordering and target planning.

The control plane makes SRV priority/weight *mutable at runtime*, so the
ordering invariants that used to hold by construction now have to hold for
every state an operator can reach.  This suite drives
:func:`repro.churn.failover.rfc2782_order` (and the health-aware
:func:`~repro.churn.failover.plan_targets` split) through ~10k seeded random
configurations — weights, priorities, tier sizes, health states — and checks
the invariants the rest of the system leans on:

* **strict tiers** — every candidate of a lower priority value precedes
  every candidate of a higher one;
* **zero-weight last within tier** — weight-0 candidates (drained replicas)
  come after every positively-weighted tier mate;
* **permutation completeness** — each chain is a permutation of the
  candidates: nothing duplicated, nothing dropped;
* **empirical proportionality** — within a tier, first-pick frequency over
  many draws matches the weight shares within tolerance;
* **healthy-before-suspect** — with a health tracker, no known-unhealthy
  candidate ever precedes a healthy one inside a planned target.

Each bulk test uses one seeded ``random.Random`` stream, so a failure
reproduces exactly; a couple of hypothesis tests add shrinking on top.
"""

from __future__ import annotations

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn import ReplicaHealth, plan_targets, rfc2782_order
from repro.churn.failover import WEIGHTED
from repro.simulation.clock import SimulatedClock

CASES = 2500
"""Random configurations per bulk test — four bulk tests make the ~10k
cases the suite sweeps overall."""


def random_srv_config(rng: random.Random) -> tuple[list[str], dict[str, tuple[int, int]]]:
    """A random candidate set: 1-8 replicas over 1-3 tiers, weights 0-9."""
    count = rng.randint(1, 8)
    server_ids = [f"r{i}.grp" for i in range(count)]
    srv_of = {
        sid: (rng.randint(0, 2), rng.randint(0, 9)) for sid in server_ids
    }
    # Sometimes leave ids out of srv_of entirely (stale-view / bootstrap
    # case): they must default to tier 0, weight 0 without blowing up.
    for sid in server_ids:
        if rng.random() < 0.1:
            del srv_of[sid]
    rng.shuffle(server_ids)
    return server_ids, srv_of


def srv_lookup(srv_of: dict[str, tuple[int, int]], sid: str) -> tuple[int, int]:
    return srv_of.get(sid, (0, 0))


class TestRfc2782OrderProperties:
    def test_strict_tier_invariant_holds_over_random_configs(self):
        rng = random.Random(0xE15)
        for _ in range(CASES):
            server_ids, srv_of = random_srv_config(rng)
            ordered = rfc2782_order(server_ids, srv_of, rng)
            priorities = [srv_lookup(srv_of, sid)[0] for sid in ordered]
            assert priorities == sorted(priorities), (
                f"tier order violated: {ordered} -> {priorities} (srv={srv_of})"
            )

    def test_zero_weight_last_within_tier_over_random_configs(self):
        rng = random.Random(0xD8A1)
        for _ in range(CASES):
            server_ids, srv_of = random_srv_config(rng)
            ordered = rfc2782_order(server_ids, srv_of, rng)
            for priority in {srv_lookup(srv_of, sid)[0] for sid in ordered}:
                tier = [sid for sid in ordered if srv_lookup(srv_of, sid)[0] == priority]
                weights = [srv_lookup(srv_of, sid)[1] for sid in tier]
                # Once a zero appears, everything after it in the tier is zero:
                # a drained replica is never ahead of a weighted tier mate.
                seen_zero = False
                for weight in weights:
                    if weight == 0:
                        seen_zero = True
                    else:
                        assert not seen_zero, (
                            f"weighted candidate after a drained one in tier "
                            f"{priority}: {tier} weights={weights}"
                        )

    def test_permutation_completeness_over_random_configs(self):
        rng = random.Random(0xBEEF)
        for _ in range(CASES):
            server_ids, srv_of = random_srv_config(rng)
            ordered = rfc2782_order(server_ids, srv_of, rng)
            assert sorted(ordered) == sorted(server_ids), (
                f"chain is not a permutation: {server_ids} -> {ordered}"
            )

    def test_discovery_order_never_leaks_into_the_shuffle(self):
        """Two devices with identical RNG streams but differently-shuffled
        discovery results must draw identical chains: only the stream (and
        the SRV data) may influence the order."""
        rng = random.Random(0x0DDB)
        for _ in range(CASES):
            server_ids, srv_of = random_srv_config(rng)
            seed = rng.randrange(2**32)
            shuffled = list(server_ids)
            rng.shuffle(shuffled)
            first = rfc2782_order(server_ids, srv_of, random.Random(seed))
            second = rfc2782_order(shuffled, srv_of, random.Random(seed))
            assert first == second

    def test_empirical_weight_proportionality_three_to_one(self):
        srv_of = {"a": (0, 3), "b": (0, 1)}
        rng = random.Random(42)
        first = Counter(rfc2782_order(["a", "b"], srv_of, rng)[0] for _ in range(10_000))
        assert abs(first["a"] / 10_000 - 0.75) < 0.02

    def test_empirical_weight_proportionality_mixed_tier(self):
        """First-pick shares in a (5, 2, 1) tier track 5/8, 2/8, 1/8."""
        srv_of = {"a": (0, 5), "b": (0, 2), "c": (0, 1)}
        rng = random.Random(7)
        draws = 10_000
        first = Counter(
            rfc2782_order(["c", "b", "a"], srv_of, rng)[0] for _ in range(draws)
        )
        for sid, weight in (("a", 5), ("b", 2), ("c", 1)):
            assert abs(first[sid] / draws - weight / 8.0) < 0.02, (
                f"{sid}: {first[sid] / draws:.3f} vs {weight / 8.0:.3f}"
            )

    def test_drained_replica_is_never_picked_first_among_weighted(self):
        """Weight 0 (a drain) keeps a replica out of the tier's rotation
        entirely — over many draws it never leads while a mate has weight."""
        srv_of = {"a": (0, 1), "b": (0, 1), "drained": (0, 0)}
        rng = random.Random(3)
        for _ in range(2_000):
            ordered = rfc2782_order(["drained", "a", "b"], srv_of, rng)
            assert ordered[-1] == "drained"

    @settings(max_examples=300, deadline=None)
    @given(
        weights=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8),
        priorities=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_hypothesis_invariants(self, weights, priorities, seed):
        count = min(len(weights), len(priorities))
        server_ids = [f"s{i}" for i in range(count)]
        srv_of = {
            sid: (priorities[i], weights[i]) for i, sid in enumerate(server_ids)
        }
        ordered = rfc2782_order(server_ids, srv_of, random.Random(seed))
        assert sorted(ordered) == sorted(server_ids)
        tiers = [srv_of[sid][0] for sid in ordered]
        assert tiers == sorted(tiers)


class TestPlanTargetsHealthProperties:
    def test_healthy_candidates_precede_suspect_ones(self):
        """Load balancing never overrules known-dead avoidance: under any
        random health state, every healthy group member precedes every
        unhealthy one in the planned chain."""
        rng = random.Random(0xCAFE)
        clock = SimulatedClock()
        for _ in range(CASES):
            server_ids, srv_of = random_srv_config(rng)
            group_of = {sid: "grp" for sid in server_ids}
            directory = {sid: object() for sid in server_ids}
            health = ReplicaHealth(clock=clock, cooldown_seconds=60.0)
            sick = {sid for sid in server_ids if rng.random() < 0.4}
            for sid in sick:
                health.record_failure(sid, dead=rng.random() < 0.5)
            targets = plan_targets(
                server_ids,
                directory=directory,
                group_of=group_of,
                health=health,
                selection=WEIGHTED,
                srv_of=srv_of,
                rng=rng,
            )
            assert len(targets) == 1
            chain = list(targets[0].candidate_ids)
            assert sorted(chain) == sorted(server_ids)
            flags = [health.is_healthy(sid) for sid in chain]
            # All True prefix, then all False: no suspect ahead of a healthy.
            assert flags == sorted(flags, reverse=True), (
                f"suspect ahead of healthy: {chain} flags={flags} sick={sick}"
            )
            clock.advance(120.0)  # clean slate for the next case
