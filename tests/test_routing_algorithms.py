"""Unit tests for shortest-path algorithms and contraction hierarchies."""

from __future__ import annotations

import random

import pytest

from repro.geometry.point import LatLng
from repro.routing.contraction import build_contraction_hierarchy
from repro.routing.graph import RoutingGraph, graph_from_map
from repro.routing.shortest_path import (
    NoRouteError,
    astar,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_all,
)


def _grid_graph(rows: int, cols: int, spacing: float = 100.0) -> RoutingGraph:
    graph = RoutingGraph()
    origin = LatLng(40.0, -80.0)
    for i in range(rows):
        for j in range(cols):
            node_id = i * cols + j
            graph.add_vertex(node_id, origin.destination(0.0, i * spacing).destination(90.0, j * spacing))
    for i in range(rows):
        for j in range(cols):
            node_id = i * cols + j
            if j + 1 < cols:
                graph.connect(node_id, node_id + 1)
            if i + 1 < rows:
                graph.connect(node_id, node_id + cols)
    return graph


@pytest.fixture(scope="module")
def grid() -> RoutingGraph:
    return _grid_graph(6, 6)


class TestDijkstra:
    def test_same_source_and_target(self, grid: RoutingGraph):
        route = dijkstra(grid, 0, 0)
        assert route.vertices == (0,)
        assert route.cost == 0.0

    def test_straight_line_route(self, grid: RoutingGraph):
        route = dijkstra(grid, 0, 5)
        assert route.cost == pytest.approx(500.0, rel=1e-2)
        assert len(route.vertices) == 6

    def test_manhattan_route_cost(self, grid: RoutingGraph):
        route = dijkstra(grid, 0, 35)  # opposite corner of the 6x6 grid
        assert route.cost == pytest.approx(1000.0, rel=1e-2)

    def test_route_is_connected_path(self, grid: RoutingGraph):
        route = dijkstra(grid, 3, 32)
        for a, b in zip(route.vertices, route.vertices[1:]):
            assert b in grid.neighbors(a)

    def test_no_route_raises(self):
        graph = RoutingGraph()
        graph.add_vertex(1, LatLng(40.0, -80.0))
        graph.add_vertex(2, LatLng(41.0, -80.0))
        with pytest.raises(NoRouteError):
            dijkstra(graph, 1, 2)

    def test_unknown_endpoints_raise(self, grid: RoutingGraph):
        from repro.routing.graph import GraphError

        with pytest.raises(GraphError):
            dijkstra(grid, 0, 999)

    def test_dijkstra_all_distances(self, grid: RoutingGraph):
        distances = dijkstra_all(grid, 0)
        assert distances[0] == 0.0
        assert distances[5] == pytest.approx(500.0, rel=1e-2)
        assert len(distances) == grid.vertex_count

    def test_time_metric(self, grid: RoutingGraph):
        route = dijkstra(grid, 0, 5, metric="time")
        assert route.metric == "time"
        assert route.cost == pytest.approx(500.0 / 1.4, rel=1e-2)


class TestAStarAndBidirectional:
    def test_astar_matches_dijkstra(self, grid: RoutingGraph):
        rng = random.Random(0)
        for _ in range(10):
            source = rng.randrange(grid.vertex_count)
            target = rng.randrange(grid.vertex_count)
            d = dijkstra(grid, source, target)
            a = astar(grid, source, target)
            assert a.cost == pytest.approx(d.cost, rel=1e-9)

    def test_astar_settles_no_more_than_dijkstra(self, grid: RoutingGraph):
        d = dijkstra(grid, 0, 35)
        a = astar(grid, 0, 35)
        assert a.settled_vertices <= d.settled_vertices

    def test_bidirectional_matches_dijkstra(self, grid: RoutingGraph):
        rng = random.Random(1)
        for _ in range(10):
            source = rng.randrange(grid.vertex_count)
            target = rng.randrange(grid.vertex_count)
            d = dijkstra(grid, source, target)
            b = bidirectional_dijkstra(grid, source, target)
            assert b.cost == pytest.approx(d.cost, rel=1e-9)
            assert b.vertices[0] == source
            assert b.vertices[-1] == target

    def test_bidirectional_same_endpoints(self, grid: RoutingGraph):
        route = bidirectional_dijkstra(grid, 7, 7)
        assert route.vertices == (7,)

    def test_bidirectional_no_route(self):
        graph = RoutingGraph()
        graph.add_vertex(1, LatLng(40.0, -80.0))
        graph.add_vertex(2, LatLng(41.0, -80.0))
        with pytest.raises(NoRouteError):
            bidirectional_dijkstra(graph, 1, 2)


class TestContractionHierarchy:
    @pytest.fixture(scope="class")
    def hierarchy(self, grid: RoutingGraph):
        return build_contraction_hierarchy(grid)

    def test_query_matches_dijkstra_on_grid(self, grid: RoutingGraph, hierarchy):
        rng = random.Random(2)
        for _ in range(20):
            source = rng.randrange(grid.vertex_count)
            target = rng.randrange(grid.vertex_count)
            expected = dijkstra(grid, source, target).cost
            got = hierarchy.query(source, target).cost
            assert got == pytest.approx(expected, rel=1e-9)

    def test_query_matches_dijkstra_on_city(self, city):
        graph = graph_from_map(city.map_data)
        hierarchy = build_contraction_hierarchy(graph)
        vertices = list(graph.vertices())
        rng = random.Random(3)
        for _ in range(15):
            source = rng.choice(vertices)
            target = rng.choice(vertices)
            expected = dijkstra(graph, source, target).cost
            got = hierarchy.query(source, target).cost
            assert got == pytest.approx(expected, rel=1e-9)

    def test_expanded_path_is_connected(self, grid: RoutingGraph, hierarchy):
        route = hierarchy.query(0, 35)
        for a, b in zip(route.vertices, route.vertices[1:]):
            assert b in grid.neighbors(a)
        assert route.vertices[0] == 0
        assert route.vertices[-1] == 35

    def test_query_settles_fewer_vertices_than_dijkstra(self, grid: RoutingGraph, hierarchy):
        plain = dijkstra(grid, 0, 35)
        fast = hierarchy.query(0, 35)
        assert fast.settled_vertices <= plain.settled_vertices

    def test_same_source_target(self, hierarchy):
        route = hierarchy.query(4, 4)
        assert route.vertices == (4,)
        assert route.cost == 0.0

    def test_every_vertex_is_ordered(self, grid: RoutingGraph, hierarchy):
        assert set(hierarchy.order) == set(grid.vertices())
        assert sorted(hierarchy.order.values()) == list(range(grid.vertex_count))

    def test_unknown_endpoint_rejected(self, hierarchy):
        from repro.routing.graph import GraphError

        with pytest.raises(GraphError):
            hierarchy.query(0, 10_000)
