"""Unit tests for geographic and local points."""

from __future__ import annotations

import math

import pytest

from repro.geometry.point import (
    EARTH_RADIUS_METERS,
    LatLng,
    LocalPoint,
    euclidean_distance,
    haversine_distance,
    meters_per_degree_latitude,
    meters_per_degree_longitude,
)


class TestLatLng:
    def test_valid_construction(self):
        point = LatLng(40.44, -79.99)
        assert point.latitude == 40.44
        assert point.longitude == -79.99

    def test_invalid_latitude_rejected(self):
        with pytest.raises(ValueError):
            LatLng(91.0, 0.0)
        with pytest.raises(ValueError):
            LatLng(-90.5, 0.0)

    def test_invalid_longitude_rejected(self):
        with pytest.raises(ValueError):
            LatLng(0.0, 190.0)

    def test_normalized_wraps_longitude(self):
        point = LatLng.normalized(10.0, 190.0)
        assert point.longitude == pytest.approx(-170.0)

    def test_normalized_clamps_latitude(self):
        point = LatLng.normalized(95.0, 0.0)
        assert point.latitude == 90.0

    def test_points_are_hashable_and_equal(self):
        assert LatLng(1.0, 2.0) == LatLng(1.0, 2.0)
        assert len({LatLng(1.0, 2.0), LatLng(1.0, 2.0)}) == 1

    def test_radians_properties(self):
        point = LatLng(45.0, 90.0)
        assert point.latitude_radians == pytest.approx(math.pi / 4)
        assert point.longitude_radians == pytest.approx(math.pi / 2)

    def test_as_tuple(self):
        assert LatLng(3.0, 4.0).as_tuple() == (3.0, 4.0)


class TestDistances:
    def test_zero_distance(self):
        point = LatLng(40.0, -80.0)
        assert haversine_distance(point, point) == 0.0

    def test_one_degree_latitude_distance(self):
        a = LatLng(0.0, 0.0)
        b = LatLng(1.0, 0.0)
        expected = math.pi * EARTH_RADIUS_METERS / 180.0
        assert haversine_distance(a, b) == pytest.approx(expected, rel=1e-6)

    def test_distance_is_symmetric(self):
        a = LatLng(40.44, -79.99)
        b = LatLng(40.45, -79.95)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_known_city_pair_distance(self):
        pittsburgh = LatLng(40.4406, -79.9959)
        philadelphia = LatLng(39.9526, -75.1652)
        distance_km = pittsburgh.distance_to(philadelphia) / 1000.0
        assert 400 < distance_km < 420  # roughly 410 km

    def test_meters_per_degree_longitude_shrinks_with_latitude(self):
        assert meters_per_degree_longitude(60.0) < meters_per_degree_longitude(0.0)
        assert meters_per_degree_longitude(0.0) == pytest.approx(meters_per_degree_latitude())


class TestBearingsAndDestinations:
    def test_destination_north(self):
        start = LatLng(40.0, -80.0)
        end = start.destination(0.0, 1000.0)
        assert end.latitude > start.latitude
        assert end.longitude == pytest.approx(start.longitude, abs=1e-9)
        assert start.distance_to(end) == pytest.approx(1000.0, rel=1e-3)

    def test_destination_east(self):
        start = LatLng(40.0, -80.0)
        end = start.destination(90.0, 500.0)
        assert end.longitude > start.longitude
        assert start.distance_to(end) == pytest.approx(500.0, rel=1e-3)

    def test_round_trip_destination(self):
        start = LatLng(40.44, -79.95)
        out = start.destination(37.0, 800.0)
        back = out.destination(37.0 + 180.0, 800.0)
        assert start.distance_to(back) < 0.5

    def test_initial_bearing_cardinal_directions(self):
        origin = LatLng(40.0, -80.0)
        assert origin.initial_bearing_to(LatLng(41.0, -80.0)) == pytest.approx(0.0, abs=0.5)
        assert origin.initial_bearing_to(LatLng(40.0, -79.0)) == pytest.approx(90.0, abs=1.0)
        assert origin.initial_bearing_to(LatLng(39.0, -80.0)) == pytest.approx(180.0, abs=0.5)

    def test_midpoint_lies_between(self):
        a = LatLng(40.0, -80.0)
        b = LatLng(40.0, -79.0)
        mid = a.midpoint(b)
        assert a.distance_to(mid) == pytest.approx(b.distance_to(mid), rel=1e-3)


class TestLocalPoint:
    def test_distance_same_frame(self):
        a = LocalPoint(0.0, 0.0, "store")
        b = LocalPoint(3.0, 4.0, "store")
        assert a.distance_to(b) == pytest.approx(5.0)
        assert euclidean_distance(a, b) == pytest.approx(5.0)

    def test_distance_across_frames_rejected(self):
        a = LocalPoint(0.0, 0.0, "store-a")
        b = LocalPoint(1.0, 1.0, "store-b")
        with pytest.raises(ValueError):
            a.distance_to(b)

    def test_translated_preserves_frame(self):
        point = LocalPoint(1.0, 2.0, "lab")
        moved = point.translated(1.0, -1.0)
        assert moved.x == 2.0
        assert moved.y == 1.0
        assert moved.frame == "lab"

    def test_as_tuple(self):
        assert LocalPoint(5.0, 6.0).as_tuple() == (5.0, 6.0)
