"""Unit tests for geohash encoding/decoding."""

from __future__ import annotations

import pytest

from repro.geometry.point import LatLng
from repro.spatialindex import geohash


class TestEncode:
    def test_known_value(self):
        # A widely published reference value.
        point = LatLng(57.64911, 10.40744)
        assert geohash.encode(point, precision=11) == "u4pruydqqvj"

    def test_precision_is_prefix_consistent(self):
        point = LatLng(40.44, -79.95)
        long_code = geohash.encode(point, precision=10)
        short_code = geohash.encode(point, precision=5)
        assert long_code.startswith(short_code)

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            geohash.encode(LatLng(0.0, 0.0), precision=0)


class TestDecode:
    def test_round_trip_center_within_cell(self):
        point = LatLng(40.44, -79.95)
        code = geohash.encode(point, precision=8)
        bounds = geohash.decode_bounds(code)
        assert bounds.contains(point)
        center = geohash.decode(code)
        assert bounds.contains(center)

    def test_longer_codes_give_smaller_cells(self):
        point = LatLng(40.44, -79.95)
        area5 = geohash.decode_bounds(geohash.encode(point, 5)).area_square_meters()
        area8 = geohash.decode_bounds(geohash.encode(point, 8)).area_square_meters()
        assert area8 < area5

    def test_invalid_characters_rejected(self):
        with pytest.raises(ValueError):
            geohash.decode_bounds("abci")  # 'i' is not in the geohash alphabet

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geohash.decode_bounds("")


class TestNeighbors:
    def test_eight_neighbors_for_interior_cell(self):
        code = geohash.encode(LatLng(40.44, -79.95), precision=6)
        neighbors = geohash.neighbors(code)
        assert 3 <= len(neighbors) <= 8
        assert code not in neighbors
        assert all(len(n) == len(code) for n in neighbors)

    def test_neighbors_are_adjacent(self):
        code = geohash.encode(LatLng(40.44, -79.95), precision=6)
        home = geohash.decode_bounds(code)
        for neighbor in geohash.neighbors(code):
            neighbor_bounds = geohash.decode_bounds(neighbor)
            assert home.expanded(100.0).intersects(neighbor_bounds)
