"""Unit tests for the client-side caches (discovery LRU + tile LRU)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery.cache import DiscoveryCache
from repro.simulation.clock import SimulatedClock
from repro.tiles.cache import TileCache
from repro.tiles.renderer import Tile
from repro.tiles.tile_math import TILE_SIZE_PIXELS, TileCoordinate


class TestDiscoveryCache:
    @pytest.fixture()
    def clock(self) -> SimulatedClock:
        return SimulatedClock()

    @pytest.fixture()
    def cache(self, clock: SimulatedClock) -> DiscoveryCache:
        return DiscoveryCache(clock=clock, max_entries=3, default_ttl_seconds=100.0)

    def test_miss_then_hit(self, cache: DiscoveryCache):
        assert cache.get("cell-a") is None
        cache.put("cell-a", ["s1", "s2"])
        assert cache.get("cell-a") == ("s1", "s2")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_servers_deduplicated_in_order(self, cache: DiscoveryCache):
        cache.put("cell-a", ["s2", "s1", "s2"])
        assert cache.get("cell-a") == ("s2", "s1")

    def test_ttl_expiry(self, cache: DiscoveryCache, clock: SimulatedClock):
        cache.put("cell-a", ["s1"])
        clock.advance(101.0)
        assert cache.get("cell-a") is None
        assert cache.stats.expirations == 1

    def test_dns_ttl_clamps_entry_lifetime(self, cache: DiscoveryCache, clock: SimulatedClock):
        cache.put("cell-a", ["s1"], ttl_seconds=10.0)
        clock.advance(11.0)
        assert cache.get("cell-a") is None
        cache.put("cell-b", ["s1"], ttl_seconds=500.0)  # device TTL is smaller
        clock.advance(101.0)
        assert cache.get("cell-b") is None

    def test_lru_eviction_order(self, cache: DiscoveryCache):
        for token in ("a", "b", "c"):
            cache.put(token, ["s"])
        assert cache.get("a") is not None  # refresh "a"
        cache.put("d", ["s"])  # evicts "b", the least recently used
        assert cache.stats.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.size == 3

    def test_disabled_cache_is_inert(self, clock: SimulatedClock):
        cache = DiscoveryCache(clock=clock, default_ttl_seconds=0.0)
        cache.put("cell-a", ["s1"])
        assert cache.get("cell-a") is None
        assert not cache.enabled
        assert cache.size == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_flush(self, cache: DiscoveryCache):
        cache.put("cell-a", ["s1"])
        cache.flush()
        assert cache.size == 0


def _tile(name: str) -> Tile:
    raster = np.zeros((TILE_SIZE_PIXELS, TILE_SIZE_PIXELS), dtype=np.uint8)
    return Tile(coordinate=TileCoordinate(10, 1, 1), raster=raster, source_map=name)


class TestTileCache:
    def test_miss_then_hit(self):
        cache = TileCache(max_entries=4)
        coordinate = TileCoordinate(12, 5, 9)
        assert cache.get("server-a", coordinate) is None
        cache.put("server-a", coordinate, _tile("a"))
        hit = cache.get("server-a", coordinate)
        assert hit is not None and hit.source_map == "a"
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_keyed_by_server_and_coordinate(self):
        cache = TileCache(max_entries=4)
        coordinate = TileCoordinate(12, 5, 9)
        cache.put("server-a", coordinate, _tile("a"))
        assert cache.get("server-b", coordinate) is None
        assert cache.get("server-a", TileCoordinate(12, 5, 8)) is None

    def test_lru_eviction(self):
        cache = TileCache(max_entries=2)
        first = TileCoordinate(10, 0, 0)
        second = TileCoordinate(10, 1, 0)
        third = TileCoordinate(10, 2, 0)
        cache.put("s", first, _tile("one"))
        cache.put("s", second, _tile("two"))
        assert cache.get("s", first) is not None  # refresh first
        cache.put("s", third, _tile("three"))  # evicts second
        assert cache.stats.evictions == 1
        assert cache.get("s", second) is None
        assert cache.get("s", first) is not None
        assert cache.size == 2

    def test_flush(self):
        cache = TileCache()
        cache.put("s", TileCoordinate(10, 0, 0), _tile("one"))
        cache.flush()
        assert cache.size == 0


class TestCachedTileClient:
    def test_repeat_viewport_hits_cache_and_skips_network(self):
        from repro.core.config import FederationConfig
        from repro.worldgen.scenario import build_scenario

        cached_scenario = build_scenario(
            store_count=1,
            city_rows=4,
            city_cols=4,
            config=FederationConfig(client_tile_cache_entries=512),
            seed=6,
        )
        client = cached_scenario.federation.client()
        store = cached_scenario.stores[0]
        viewport = store.map_data.bounding_box().expanded(30.0)

        first = client.render_viewport(viewport, zoom=18)
        assert first.tiles_downloaded > 0
        assert first.tiles_from_cache == 0

        before = cached_scenario.federation.network.stats.messages_by_kind.get(
            "mapserver.request", 0
        )
        second = client.render_viewport(viewport, zoom=18)
        after = cached_scenario.federation.network.stats.messages_by_kind.get(
            "mapserver.request", 0
        )
        assert second.tiles_from_cache == first.tiles_downloaded
        assert second.tiles_downloaded == 0
        assert after == before
        assert second.composites.keys() == first.composites.keys()
        assert client.cache_stats()["tiles.hits"] > 0

    def test_revoked_access_is_not_served_from_the_cache(self):
        """Regression: cached tiles must respect the server's current policy."""
        from repro.core.config import FederationConfig
        from repro.mapserver.policy import ServiceName
        from repro.worldgen.scenario import build_scenario

        cached_scenario = build_scenario(
            store_count=1,
            city_rows=4,
            city_cols=4,
            config=FederationConfig(client_tile_cache_entries=512),
            seed=6,
        )
        client = cached_scenario.federation.client()
        store_server = cached_scenario.store_server(0)
        viewport = cached_scenario.stores[0].map_data.bounding_box().expanded(30.0)

        warm = client.render_viewport(viewport, zoom=18)
        store_sources = {
            source
            for composite in warm.composites.values()
            for source in composite.contributions
        }
        assert store_server.map_data.metadata.name in store_sources

        store_server.policy.require_token(ServiceName.TILES, "secret")
        revoked = client.render_viewport(viewport, zoom=18)
        revoked_sources = {
            source
            for composite in revoked.composites.values()
            for source in composite.contributions
        }
        assert store_server.map_data.metadata.name not in revoked_sources
