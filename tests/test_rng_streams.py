"""Per-client RNG stream derivation audit.

The engine derives four RNG streams per device from one run seed: the
base (mobility/traffic) stream at ``seed + stride·(index+1)`` and the
selection/jitter/backoff streams as the base XOR a small salt.  A collision
between any two streams of any two devices would silently correlate
"independent" devices, which at 100k–1M clients is a statistics bug, not
a curiosity.  These tests pin the invariants the collision-freedom
argument in :func:`repro.workload.engine.derived_seed_streams` rests on
and brute-force distinctness over representative index ranges.
"""

from __future__ import annotations

from repro.workload.engine import (
    _BACKOFF_SEED_SALT,
    _CLIENT_SEED_STRIDE,
    _JITTER_SEED_SALT,
    _OPERATOR_SEED_SALT,
    _SELECTION_SEED_SALT,
    client_base_seed,
    derived_seed_streams,
    operator_seed,
)


class TestSeedDerivationInvariants:
    def test_salts_are_below_the_stride(self):
        """The whole no-cross-family-collision argument: two integers whose
        XOR is under 2^16 differ by under 2^16, and the stride keeps any
        two devices' base seeds at least that far apart."""
        assert 0 < _SELECTION_SEED_SALT < 2**16 < _CLIENT_SEED_STRIDE
        assert 0 < _JITTER_SEED_SALT < 2**16 < _CLIENT_SEED_STRIDE
        assert 0 < _BACKOFF_SEED_SALT < 2**16 < _CLIENT_SEED_STRIDE
        assert 0 < _OPERATOR_SEED_SALT < 2**16 < _CLIENT_SEED_STRIDE
        salts = (
            _SELECTION_SEED_SALT,
            _JITTER_SEED_SALT,
            _BACKOFF_SEED_SALT,
            _OPERATOR_SEED_SALT,
        )
        assert len(set(salts)) == len(salts)

    def test_base_seed_arithmetic_is_the_engine_stride(self):
        assert client_base_seed(7, 0) == 7 + _CLIENT_SEED_STRIDE
        assert client_base_seed(7, 41) - client_base_seed(7, 40) == _CLIENT_SEED_STRIDE

    def test_streams_within_one_device_are_distinct(self):
        for index in (0, 1, 2, 999, 123_456):
            streams = derived_seed_streams(0, index)
            assert len(set(streams.values())) == 4

    def test_run_seed_never_collides_with_device_streams(self):
        """The POI-shuffle RNG uses the bare run seed; it must not equal any
        device stream (it is device "-1" under the stride argument)."""
        for seed in (0, 7, 33):
            for index in range(2000):
                assert seed not in derived_seed_streams(seed, index).values()

    def test_operator_stream_collides_with_nothing(self):
        """The operator console's control-hop stream is the bare run seed
        XOR its own salt — like the POI shuffle, a "device −1" stream, so
        it must avoid the bare seed and every device stream."""
        for seed in (0, 7, 33):
            derived = operator_seed(seed)
            assert derived == seed ^ _OPERATOR_SEED_SALT
            assert derived != seed
            for index in range(2000):
                assert derived not in derived_seed_streams(seed, index).values()


class TestStreamDistinctnessAtScale:
    def test_no_collisions_across_dense_prefix(self):
        """Every stream of every device in a dense 50k prefix is unique —
        the exact population a 100k-fleet's low-index tracers draw from."""
        seen: set[int] = set()
        count = 0
        for index in range(50_000):
            for value in derived_seed_streams(7, index).values():
                seen.add(value)
                count += 1
        assert len(seen) == count

    def test_no_collisions_across_sparse_million_range(self):
        """Spot-check the full 1M index range (strided sample) plus the
        boundary indices where weight rounding concentrates tracers."""
        indices = list(range(0, 1_000_000, 997)) + [999_998, 999_999]
        seen: set[int] = set()
        count = 0
        for seed in (0, 7):
            for index in indices:
                for value in derived_seed_streams(seed, index).values():
                    seen.add(value)
                    count += 1
        assert len(seen) == count

    def test_different_run_seeds_shift_every_stream(self):
        a = derived_seed_streams(1, 10)
        b = derived_seed_streams(2, 10)
        assert all(a[key] != b[key] for key in a)
