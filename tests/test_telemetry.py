"""The telemetry substrate: mergeable histograms, windows, roll-ups, SLO burn.

Four layers under test, bottom-up:

* ``Histogram.merge`` — merging streaming histograms must agree *exactly*
  (same buckets ⇒ same percentiles) with observing the union stream, and
  keep memory bounded;
* window/pipeline mechanics — round-boundary sealing, temporal
  downsampling under bounded retention, server-frame diffing;
* spatial roll-ups and SLO burn — demand mass is conserved up the cell
  hierarchy, zonal attribution follows covering cells, multi-window
  burn alerting fires when (and only when) both windows cross;
* engine integration — telemetry-on runs populate
  ``WorkloadReport.telemetry`` on both paths (exact and cohort), disaster
  runs localize degraded service per region, and telemetry-off runs carry
  no trace of any of it.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.config import FederationConfig
from repro.faults.schedule import FaultPlan
from repro.simulation.metrics import Histogram
from repro.simulation.queueing import ServiceTimeModel
from repro.telemetry import (
    SLOConfig,
    TelemetryConfig,
    TelemetryPipeline,
    TelemetryWindow,
    alert_windows,
    burn_rate,
    cell_ancestor,
    demand_by_cell,
)
from repro.telemetry.windows import CellStats
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario


class TestHistogramMerge:
    def _stream(self, seed: int, count: int) -> list[float]:
        rng = random.Random(seed)
        return [rng.lognormvariate(3.0, 1.2) for _ in range(count)]

    def test_merge_agrees_with_union_stream_exactly(self):
        """Streaming histograms share one global bucket layout, so a merge
        is byte-for-byte the histogram of the union stream — not merely
        approximately: identical buckets, identical percentiles."""
        left_values = self._stream(1, 400)
        right_values = self._stream(2, 300)
        left = Histogram("latency_ms", streaming=True)
        right = Histogram("latency_ms", streaming=True)
        union = Histogram("latency_ms", streaming=True)
        for value in left_values:
            left.observe(value)
            union.observe(value)
        for value in right_values:
            right.observe(value)
            union.observe(value)
        left.merge(right)
        assert left._bucket_weights == union._bucket_weights
        assert left.count == union.count
        for fraction in (0.5, 0.9, 0.95, 0.99):
            assert left.quantile(fraction) == union.quantile(fraction)

    def test_merge_agrees_under_weighted_observations(self):
        """Cohort-weighted observations merge exactly too."""
        left = Histogram("latency_ms", streaming=True)
        right = Histogram("latency_ms", streaming=True)
        union = Histogram("latency_ms", streaming=True)
        for value, weight in ((12.0, 500.0), (80.0, 3.0)):
            left.observe(value, weight)
            union.observe(value, weight)
        for value, weight in ((12.5, 250.0), (900.0, 7.0)):
            right.observe(value, weight)
            union.observe(value, weight)
        left.merge(right)
        assert left._bucket_weights == union._bucket_weights
        assert left.p95 == union.p95
        assert left.mean == union.mean

    def test_merge_keeps_memory_bounded(self):
        """Merging many histograms never grows past the shared bucket count."""
        total = Histogram("latency_ms", streaming=True)
        for seed in range(20):
            shard = Histogram("latency_ms", streaming=True)
            for value in self._stream(seed, 500):
                shard.observe(value)
            total.merge(shard)
        assert total.count == 20 * 500
        assert not total.values  # no raw floats retained
        assert len(total._bucket_weights) < 500  # buckets, not observations

    def test_merged_percentile_error_within_bucket_bound(self):
        """48 buckets/decade bound relative quantile error by ~4.9%."""
        values = self._stream(9, 2000)
        half = len(values) // 2
        left = Histogram("latency_ms", streaming=True)
        right = Histogram("latency_ms", streaming=True)
        for value in values[:half]:
            left.observe(value)
        for value in values[half:]:
            right.observe(value)
        left.merge(right)
        exact = Histogram("latency_ms")
        exact.observe_many(values)
        for fraction in (0.5, 0.95, 0.99):
            streamed = left.quantile(fraction)
            truth = exact.quantile(fraction)
            assert streamed == pytest.approx(truth, rel=10 ** (1 / 48) - 1)

    def test_streaming_absorbs_exact(self):
        exact = Histogram("latency_ms")
        exact.observe_many([10.0, 20.0, 30.0])
        streaming = Histogram("latency_ms", streaming=True)
        streaming.merge(exact)
        assert streaming.count == 3
        assert streaming.mean == pytest.approx(20.0)

    def test_exact_merges_exact(self):
        left = Histogram("latency_ms")
        left.observe_many([1.0, 2.0])
        right = Histogram("latency_ms")
        right.observe_many([3.0])
        left.merge(right)
        assert sorted(left.values) == [1.0, 2.0, 3.0]
        assert left.p95 == pytest.approx(2.9)

    def test_exact_refuses_streaming(self):
        exact = Histogram("latency_ms")
        streaming = Histogram("latency_ms", streaming=True)
        streaming.observe(5.0)
        with pytest.raises(ValueError):
            exact.merge(streaming)


class TestWindowMerge:
    def _window(self, index: int, start: float, end: float) -> TelemetryWindow:
        return TelemetryWindow(index=index, start_seconds=start, end_seconds=end)

    def test_merge_equals_double_width_window(self):
        """Folding window B into A yields exactly the window that would have
        been emitted at double the width — the downsampling invariant."""
        narrow_a = self._window(0, 0.0, 10.0)
        narrow_b = self._window(1, 10.0, 20.0)
        wide = self._window(0, 0.0, 20.0)
        observations = [
            ("2122", 0, "search", 30.0, 1.0, True, False, False),
            ("2122", 0, "search", 700.0, 2.0, True, False, True),
            ("2123", 1, "tiles", 15.0, 1.0, True, True, False),
            ("2122", 0, "search", 0.0, 1.0, False, False, False),
        ]
        for position, record in enumerate(observations):
            (narrow_a if position < 2 else narrow_b).record(*record)
            wide.record(*record)
        narrow_a.merge_from(narrow_b)
        assert narrow_a.start_seconds == 0.0
        assert narrow_a.end_seconds == 20.0
        assert narrow_a.spans == 2
        assert set(narrow_a.cells) == set(wide.cells)
        for key, stats in wide.cells.items():
            merged = narrow_a.cells[key]
            assert merged.requests == stats.requests
            assert merged.errors == stats.errors
            assert merged.degraded == stats.degraded
            assert merged.slow == stats.slow
            assert merged.latency._bucket_weights == stats.latency._bucket_weights

    def test_merge_unions_fault_annotations(self):
        first = self._window(0, 0.0, 10.0)
        first.faults_active = ("gray",)
        second = self._window(1, 10.0, 20.0)
        second.faults_active = ("flash-crowd", "gray")
        first.merge_from(second)
        assert first.faults_active == ("flash-crowd", "gray")

    def test_region_totals_isolate_regions(self):
        window = self._window(0, 0.0, 10.0)
        window.record("2122", 0, "search", 10.0, 3.0, True, False, False)
        window.record("2122", 1, "search", 10.0, 5.0, False, True, False)
        assert window.regions == (0, 1)
        assert window.region_totals(0) == {
            "requests": 3.0, "errors": 0.0, "degraded": 0.0, "slow": 0.0,
        }
        assert window.region_totals(1) == {
            "requests": 5.0, "errors": 5.0, "degraded": 5.0, "slow": 0.0,
        }


class TestPipelineMechanics:
    def test_windows_seal_at_round_boundaries(self):
        """A flush seals only once the configured width has elapsed, so
        window edges always land on round boundaries (widths ≥ configured)."""
        pipeline = TelemetryPipeline(config=TelemetryConfig(window_seconds=10.0))
        pipeline.begin(0.0)
        now = 0.0
        for _ in range(6):
            now += 4.0  # rounds are narrower than the window
            pipeline.record_request("2122", 0, "search", 20.0)
            pipeline.flush(now)
        # Rounds end at 4,8,...,24; the 10s window seals at the first round
        # boundary at or past its width: 12 and 24.
        assert [w.start_seconds for w in pipeline.windows] == [0.0, 12.0]
        assert [w.end_seconds for w in pipeline.windows] == [12.0, 24.0]
        # A trailing partial window is sealed by finalize, not lost.
        pipeline.record_request("2122", 0, "search", 20.0)
        pipeline.finalize(26.0)
        assert [w.end_seconds for w in pipeline.windows] == [12.0, 24.0, 26.0]
        assert sum(w.requests for w in pipeline.windows) == 7.0

    def test_retention_downsamples_pairwise(self):
        pipeline = TelemetryPipeline(
            config=TelemetryConfig(window_seconds=1.0, max_windows=4)
        )
        pipeline.begin(0.0)
        for round_index in range(16):
            pipeline.record_request("2122", 0, "search", 20.0)
            pipeline.flush(float(round_index + 1))
        assert len(pipeline.windows) <= 4
        assert pipeline.downsample_merges >= 1
        # No mass lost to downsampling: spans and records both conserved.
        assert sum(w.spans for w in pipeline.windows) == 16
        assert sum(w.requests for w in pipeline.windows) == 16.0
        # Retained windows still tile the run contiguously.
        edges = [(w.start_seconds, w.end_seconds) for w in pipeline.windows]
        assert all(a[1] == b[0] for a, b in zip(edges, edges[1:]))

    def test_server_frames_diff_against_baseline(self):
        pipeline = TelemetryPipeline(config=TelemetryConfig(window_seconds=5.0))
        pre_run = {"store-0": {"arrivals": 100.0, "served": 90.0, "dropped": 10.0,
                               "wait_ms": 50.0, "busy_ms": 200.0, "kinds": {"search": 100.0}}}
        pipeline.begin(0.0, pre_run)
        after_round = {"store-0": {"arrivals": 130.0, "served": 115.0, "dropped": 15.0,
                                   "wait_ms": 80.0, "busy_ms": 260.0,
                                   "kinds": {"search": 120.0, "tiles": 10.0}}}
        pipeline.observe_servers(after_round)
        pipeline.flush(6.0)
        (window,) = pipeline.windows
        stats = window.servers["store-0"]
        # Only the delta since begin() landed in the window.
        assert stats.arrivals == 30.0
        assert stats.dropped == 5.0
        assert stats.kinds == {"search": 20.0, "tiles": 10.0}
        assert stats.shed_rate == pytest.approx(5.0 / 30.0)

    def test_use_before_begin_raises(self):
        pipeline = TelemetryPipeline()
        with pytest.raises(RuntimeError):
            pipeline.record_request("2122", 0, "search", 1.0)
        with pytest.raises(RuntimeError):
            pipeline.flush(1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(window_seconds=0.0)
        with pytest.raises(ValueError):
            TelemetryConfig(max_windows=1)
        with pytest.raises(ValueError):
            SLOConfig(availability_target=1.0)


class TestSpatialRollups:
    def test_cell_ancestor_is_prefix(self):
        assert cell_ancestor("2122211320", 4) == "2122"
        assert cell_ancestor("21", 6) == "21"

    def test_demand_mass_conserved_up_the_hierarchy(self):
        """Rolling up never creates or destroys demand: the weighted total
        is identical at every level."""
        window = TelemetryWindow(index=0, start_seconds=0.0, end_seconds=10.0)
        for token, weight in (("21220", 5.0), ("21221", 3.0), ("21300", 2.0)):
            window.record(token, 0, "search", 10.0, weight, True, False, False)
        for level in (0, 2, 3, 5):
            assert sum(demand_by_cell([window], level).values()) == 10.0
        by_level3 = demand_by_cell([window], 3)
        assert by_level3 == {"212": 8.0, "213": 2.0}

    def test_zonal_attribution_follows_covering_cells(self):
        pipeline = TelemetryPipeline(
            config=TelemetryConfig(window_seconds=5.0),
            server_cells={"store-0": ("21220", "21221"), "store-1": ("21300",)},
        )
        pipeline.begin(0.0)
        pipeline.observe_servers({
            "store-0": {"arrivals": 10.0, "served": 8.0, "dropped": 2.0,
                        "wait_ms": 40.0, "busy_ms": 16.0, "kinds": {}},
            "store-1": {"arrivals": 4.0, "served": 4.0, "dropped": 0.0,
                        "wait_ms": 4.0, "busy_ms": 8.0, "kinds": {}},
        })
        pipeline.flush(6.0)
        zones = pipeline.server_zonal(level=5)
        # store-0's load shows under both of its covering cells.
        assert zones["21220"]["dropped"] == 2.0
        assert zones["21221"]["dropped"] == 2.0
        assert zones["21300"]["dropped"] == 0.0
        assert zones["21220"]["shed_rate"] == pytest.approx(0.2)
        # At a coarser level the two store-0 cells collapse into one zone.
        coarse = pipeline.server_zonal(level=3)
        assert coarse["212"]["arrivals"] == 20.0  # both covering cells fold in
        assert coarse["213"]["arrivals"] == 4.0


class TestSLOBurn:
    def _window_with(self, index: int, region: int, good: float, slow: float,
                     errors: float) -> TelemetryWindow:
        window = TelemetryWindow(index=index, start_seconds=float(index),
                                 end_seconds=float(index + 1))
        if good:
            window.record("2122", region, "search", 10.0, good, True, False, False)
        if slow:
            window.record("2122", region, "search", 900.0, slow, True, False, True)
        if errors:
            window.record("2122", region, "search", 0.0, errors, False, False, False)
        return window

    def test_burn_rate_math(self):
        # 5% bad against a 1% budget burns at 5x.
        assert burn_rate(100.0, 5.0, 0.01) == pytest.approx(5.0)
        assert burn_rate(0.0, 0.0, 0.01) == 0.0

    def test_alerts_need_both_windows_over_threshold(self):
        slo = SLOConfig(availability_target=0.9, fast_windows=1, slow_windows=3,
                        fast_burn_threshold=5.0, slow_burn_threshold=2.0)
        healthy = [self._window_with(i, 0, good=100.0, slow=0.0, errors=0.0)
                   for i in range(3)]
        # One bad window: fast crosses (burn 10) but the 3-window trailing
        # mean is only 10/3 ≥ 2 — alert fires exactly once.
        spike = self._window_with(3, 0, good=0.0, slow=0.0, errors=100.0)
        recovered = self._window_with(4, 0, good=100.0, slow=0.0, errors=0.0)
        windows = healthy + [spike, recovered]
        assert alert_windows(windows, 0, slo) == [3]

    def test_sustained_burn_alerts_every_window(self):
        slo = SLOConfig(availability_target=0.9, fast_windows=1, slow_windows=2,
                        fast_burn_threshold=5.0, slow_burn_threshold=5.0)
        windows = [self._window_with(i, 0, good=20.0, slow=0.0, errors=80.0)
                   for i in range(4)]
        assert alert_windows(windows, 0, slo) == [0, 1, 2, 3]

    def test_regions_burn_independently(self):
        slo = SLOConfig(availability_target=0.9)
        window = TelemetryWindow(index=0, start_seconds=0.0, end_seconds=1.0)
        window.record("2122", 0, "search", 10.0, 100.0, True, False, False)
        window.record("2122", 1, "search", 0.0, 100.0, False, False, False)
        pipeline = TelemetryPipeline(config=TelemetryConfig(slo=slo))
        pipeline.windows = [window]
        assert pipeline.burn_series(0) == [0.0]
        assert pipeline.burn_series(1) == [pytest.approx(10.0)]

    def test_slow_requests_spend_budget(self):
        """A served-but-slow request burns budget exactly like an error."""
        stats = CellStats()
        stats.observe(900.0, 2.0, ok=True, degraded=False, slow=True)
        stats.observe(10.0, 8.0, ok=True, degraded=False, slow=False)
        assert stats.bad == 2.0
        assert stats.requests == 10.0


def _scenario_kw():
    return dict(
        store_count=2,
        city_rows=4,
        city_cols=4,
        seed=33,
        config=FederationConfig(
            service_times=ServiceTimeModel(default_ms=2.0),
            server_queue_capacity=64,
        ),
    )


class TestEngineIntegration:
    def test_run_populates_report_telemetry(self):
        scenario = build_scenario(**_scenario_kw())
        config = WorkloadConfig(
            clients=24, steps=6, seed=7, resolver_pools=2,
            telemetry=TelemetryConfig(window_seconds=4.0),
        )
        report = WorkloadEngine(scenario, config).run()
        pipeline = report.telemetry
        assert pipeline is not None
        assert pipeline.windows
        assert pipeline.records > 0
        assert pipeline.regions() == (0, 1)
        # Demand exists at every configured heatmap level, with equal mass.
        heatmap = pipeline.demand_heatmap()
        masses = {level: sum(cells.values()) for level, cells in heatmap.items()}
        assert len(set(masses.values())) == 1
        # The queue model produced per-server window deltas.
        assert any(window.servers for window in pipeline.windows)
        # Snapshot carries the summary keys.
        snapshot = report.snapshot()
        assert snapshot["telemetry.records"] == pipeline.records
        assert snapshot["telemetry.windows"] == float(len(pipeline.windows))

    def test_cohort_path_records_weighted_telemetry(self):
        """On the cohort fast path one tracer records for its whole phantom
        share, so record mass still equals clients × steps (minus skips)."""
        scenario = build_scenario(**_scenario_kw())
        config = WorkloadConfig(
            clients=64, steps=3, seed=7, cohort_min_clients=32, tracers_per_cohort=2,
            telemetry=TelemetryConfig(window_seconds=4.0),
        )
        report = WorkloadEngine(scenario, config).run()
        pipeline = report.telemetry
        assert pipeline is not None
        skipped = sum(
            counter.value for name, counter in report.metrics.counters.items()
            if name.startswith("skipped.")
        )
        assert pipeline.records == 64 * 3 - skipped
        assert report.sampling  # the fast path actually engaged

    def test_disaster_run_reports_degraded_service_per_region(self):
        """An authority outage with stale-serve grace produces degraded
        (stale-served) telemetry attributed per client region, agreeing in
        total with the fleet-wide counter, and the emission windows carry
        the fault-family annotation."""
        fed = FederationConfig(
            service_times=ServiceTimeModel(default_ms=2.0),
            server_queue_capacity=64,
            device_discovery_cache_ttl_seconds=30.0,
            registration_ttl_seconds=60.0,
            stale_serve_max_ms=60_000.0,
        )
        scenario = build_scenario(
            store_count=2, city_rows=4, city_cols=4, seed=33, config=fed
        )
        plan = FaultPlan.authority_outage(45.0, 165.0)
        config = WorkloadConfig(
            clients=24, steps=10, seed=7, resolver_pools=2, step_seconds=20.0,
            faults=plan, telemetry=TelemetryConfig(window_seconds=40.0),
        )
        report = WorkloadEngine(scenario, config).run()
        pipeline = report.telemetry
        assert pipeline is not None
        outage_windows = pipeline.fault_windows().get("authority-outage")
        assert outage_windows  # the outage is visible on the window tape
        degraded = pipeline.region_degraded()
        assert sum(degraded.values()) > 0.0
        # Per-region degraded totals agree with the fleet-wide counter.
        assert sum(degraded.values()) == float(report.degraded_requests)
        # The summary surfaces the same per-region numbers.
        summary = pipeline.summary()
        for region, total in degraded.items():
            assert summary[f"region{region}.degraded"] == total

    def test_disabled_telemetry_leaves_no_trace(self):
        scenario = build_scenario(**_scenario_kw())
        report = WorkloadEngine(
            scenario, WorkloadConfig(clients=24, steps=4, seed=7)
        ).run()
        assert report.telemetry is None
        assert not any(key.startswith("telemetry.") for key in report.snapshot())

    def test_telemetry_runs_deterministically(self):
        def run():
            scenario = build_scenario(**_scenario_kw())
            config = WorkloadConfig(
                clients=24, steps=6, seed=7,
                telemetry=TelemetryConfig(window_seconds=4.0),
            )
            report = WorkloadEngine(scenario, config).run()
            return json.dumps(report.snapshot(), sort_keys=True)

        assert run() == run()
