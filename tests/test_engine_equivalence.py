"""Golden equivalence: the event-driven engine vs the legacy round loop.

The event engine replaced the legacy loop as the default; the legacy loop
is retained verbatim (``WorkloadEngine.run_legacy``) as the golden
reference.  Below the cohort threshold the two must produce *byte-identical*
``WorkloadReport.snapshot()`` dictionaries — not approximately equal:
identical floats, identical keys — across seeds, mobility mixes, resolver
shardings, churn tapes, control tapes, and stochastic network jitter.
This is the regression gate that lets the committed BENCH_e13/e14/e15
artifacts stay byte-for-byte unchanged while the execution core underneath
them was rewritten.
"""

from __future__ import annotations

import json

import pytest

from repro.churn.schedule import ChurnEvent, ChurnEventKind, ChurnSchedule
from repro.control.schedule import ControlEvent, ControlEventKind, ControlSchedule
from repro.core.config import FederationConfig
from repro.simulation.network import LatencyModel
from repro.simulation.queueing import ServiceTimeModel
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario


def snapshot_for(engine_kind: str, *, scenario_kw=None, **config_kw) -> str:
    """Run one fresh scenario+fleet and return the canonical snapshot JSON.

    Scenarios are rebuilt per run (never shared): both engines must start
    from identical world state, and runs mutate caches/queues/clock.
    """
    scenario_kw = dict(scenario_kw or {})
    scenario_kw.setdefault("store_count", 2)
    scenario_kw.setdefault("city_rows", 4)
    scenario_kw.setdefault("city_cols", 4)
    scenario_kw.setdefault("seed", 33)
    scenario = build_scenario(**scenario_kw)
    config_kw.setdefault("clients", 24)
    config_kw.setdefault("steps", 3)
    config = WorkloadConfig(engine=engine_kind, **config_kw)
    report = WorkloadEngine(scenario, config).run()
    return json.dumps(report.snapshot(), sort_keys=True)


def assert_equivalent(**kw) -> None:
    event = snapshot_for("event", **kw)
    legacy = snapshot_for("legacy", **kw)
    assert event == legacy


class TestByteIdenticalSnapshots:
    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_across_seeds(self, seed):
        assert_equivalent(seed=seed)

    @pytest.mark.parametrize("clients,steps", [(1, 1), (5, 2), (40, 4)])
    def test_across_fleet_shapes(self, clients, steps):
        assert_equivalent(clients=clients, steps=steps, seed=7)

    def test_with_long_traces_and_dwell(self):
        assert_equivalent(seed=7, long_traces=True, trace_dwell_steps=2, steps=5)

    def test_with_resolver_pools(self):
        assert_equivalent(seed=7, resolver_pools=3)

    def test_with_stochastic_network_jitter(self):
        assert_equivalent(
            seed=7,
            scenario_kw={"config": FederationConfig(latency=LatencyModel(jitter_sigma=0.4))},
        )

    def test_with_churn_tape(self):
        scenario_kw = {"store_replicas": 2, "seed": 21}
        scenario = build_scenario(store_count=2, city_rows=4, city_cols=4, **scenario_kw)
        victim = scenario.store_replica_ids(0)[0]
        churn = ChurnSchedule.from_events(
            [
                ChurnEvent(4.0, ChurnEventKind.CRASH, victim),
                ChurnEvent(20.0, ChurnEventKind.JOIN, victim),
            ]
        )
        assert_equivalent(seed=11, steps=6, churn=churn, scenario_kw=scenario_kw)

    def test_with_control_tape(self):
        scenario_kw = {"store_replicas": 3, "seed": 21}
        scenario = build_scenario(store_count=2, city_rows=4, city_cols=4, **scenario_kw)
        replicas = scenario.store_replica_ids(0)
        control = ControlSchedule.from_events(
            [
                ControlEvent(6.0, ControlEventKind.SET_WEIGHT, replicas[1], 7),
                ControlEvent(14.0, ControlEventKind.DRAIN, replicas[2]),
            ]
        )
        assert_equivalent(seed=11, steps=6, control=control, scenario_kw=scenario_kw)

    def test_kitchen_sink(self):
        """Everything at once: replicas, queue model, jitter, churn AND
        control tapes, long traces, sharded resolvers."""
        fed = FederationConfig(
            latency=LatencyModel(jitter_sigma=0.3),
            service_times=ServiceTimeModel(default_ms=2.0, per_kind_ms={"routing": 5.0}),
            server_queue_capacity=64,
        )
        scenario_kw = {"store_replicas": 2, "seed": 21, "config": fed}
        scenario = build_scenario(store_count=2, city_rows=4, city_cols=4, **scenario_kw)
        replicas = scenario.store_replica_ids(0)
        churn = ChurnSchedule.from_events(
            [
                ChurnEvent(4.0, ChurnEventKind.CRASH, replicas[0]),
                ChurnEvent(24.0, ChurnEventKind.JOIN, replicas[0]),
            ]
        )
        control = ControlSchedule.from_events(
            [ControlEvent(10.0, ControlEventKind.SET_WEIGHT, replicas[1], 9)]
        )
        assert_equivalent(
            seed=3,
            steps=7,
            clients=30,
            resolver_pools=2,
            long_traces=True,
            churn=churn,
            control=control,
            scenario_kw=scenario_kw,
        )


class TestRoundObserverHook:
    """The shared round-boundary observer hook must be byte-transparent."""

    def _snapshot_with_observer(self, engine_kind: str, observe: bool) -> tuple[str, list]:
        scenario = build_scenario(store_count=2, city_rows=4, city_cols=4, seed=33)
        config = WorkloadConfig(engine=engine_kind, clients=24, steps=4, seed=7)
        engine = WorkloadEngine(scenario, config)
        seen: list[tuple[int, float]] = []
        if observe:
            engine.add_round_observer(lambda index, now: seen.append((index, now)))
        report = engine.run()
        return json.dumps(report.snapshot(), sort_keys=True), seen

    def test_noop_observer_is_byte_transparent(self):
        """A registered observer that does nothing changes no snapshot byte,
        on either loop — the hook itself is free."""
        for engine_kind in ("event", "legacy"):
            bare, _ = self._snapshot_with_observer(engine_kind, observe=False)
            observed, seen = self._snapshot_with_observer(engine_kind, observe=True)
            assert observed == bare
            assert [index for index, _ in seen] == [0, 1, 2, 3]

    def test_both_loops_fire_identical_observations(self):
        """Same round indices, same clock instants, from either loop."""
        _, seen_event = self._snapshot_with_observer("event", observe=True)
        _, seen_legacy = self._snapshot_with_observer("legacy", observe=True)
        assert seen_event == seen_legacy

    def test_telemetry_on_event_legacy_equivalence(self):
        """With telemetry collecting, the two loops still agree byte-for-byte
        (including every ``telemetry.*`` snapshot key)."""
        from repro.telemetry import TelemetryConfig

        kw = dict(seed=7, steps=5, telemetry=TelemetryConfig(window_seconds=4.0))
        event = snapshot_for("event", **kw)
        legacy = snapshot_for("legacy", **kw)
        assert event == legacy
        assert any(key.startswith("telemetry.") for key in json.loads(event))

    def test_autoscaler_on_event_legacy_equivalence(self):
        """With a live autoscaler driving warm-pool weights mid-run, the two
        loops still agree byte-for-byte (including every ``autoscale.*``
        snapshot key): both loops fire the scaler's round observer at the
        same instants, so the whole decision tape is identical."""
        from repro.autoscale import AutoscalerConfig
        from repro.telemetry import TelemetryConfig

        def snapshot(engine_kind: str) -> str:
            scenario = build_scenario(
                store_count=2,
                city_rows=4,
                city_cols=4,
                seed=33,
                store_replicas=2,
                config=FederationConfig(
                    service_times=ServiceTimeModel(default_ms=2.0),
                    server_queue_capacity=64,
                ),
            )
            scenario.federation.attach_warm_pool(
                sorted(scenario.federation.replica_groups)[0], 1
            )
            config = WorkloadConfig(
                engine=engine_kind,
                clients=24,
                steps=6,
                seed=7,
                step_seconds=10.0,
                telemetry=TelemetryConfig(window_seconds=20.0),
                autoscale=AutoscalerConfig(
                    wait_high_ms=1.0,
                    wait_low_ms=0.5,
                    burn_high=0.0,
                    breach_evals=1,
                    recover_evals=1,
                    cooldown_seconds=10.0,
                    ramp_cooldown_seconds=10.0,
                    park_delay_seconds=10.0,
                ),
            )
            report = WorkloadEngine(scenario, config).run()
            return json.dumps(report.snapshot(), sort_keys=True)

        event = snapshot("event")
        legacy = snapshot("legacy")
        assert event == legacy
        assert any(key.startswith("autoscale.") for key in json.loads(event))


class TestEquivalenceBoundary:
    def test_snapshot_has_no_sampling_keys_below_threshold(self):
        data = json.loads(snapshot_for("event", seed=7))
        assert not any(key.startswith("sampling.") for key in data)

    def test_snapshot_has_no_telemetry_keys_when_disabled(self):
        data = json.loads(snapshot_for("event", seed=7))
        assert not any(key.startswith("telemetry.") for key in data)

    def test_event_engine_is_the_default(self):
        assert WorkloadConfig().engine == "event"
