"""Tests for the device-side discovery cache and its federation wiring."""

from __future__ import annotations

import pytest

from repro.core.config import FederationConfig
from repro.core.federation import Federation
from repro.geometry.point import LatLng
from repro.worldgen.indoor import generate_store

ANCHOR = LatLng(40.4410, -79.9570)


@pytest.fixture()
def cached_federation() -> Federation:
    config = FederationConfig(device_discovery_cache_ttl_seconds=120.0)
    federation = Federation(config=config)
    store = generate_store("cached-store.example", ANCHOR, seed=3)
    federation.add_map_server("cached-store.example", store.map_data)
    return federation


class TestDeviceCache:
    def test_repeat_discovery_uses_no_dns(self, cached_federation: Federation):
        client = cached_federation.client()
        first = client.discover(ANCHOR, uncertainty_meters=40.0)
        assert "cached-store.example" in first.server_ids
        cached_federation.reset_network_stats()
        second = client.discover(ANCHOR, uncertainty_meters=40.0)
        assert second.server_ids == first.server_ids
        assert second.dns_lookups == 0
        assert cached_federation.network.stats.messages_sent == 0
        assert client.context.discoverer.device_cache_hits > 0

    def test_cache_expires_after_ttl(self, cached_federation: Federation):
        client = cached_federation.client()
        client.discover(ANCHOR, uncertainty_meters=40.0)
        cached_federation.network.clock.advance(121.0)
        cached_federation.reset_network_stats()
        result = client.discover(ANCHOR, uncertainty_meters=40.0)
        assert result.dns_lookups > 0
        assert "cached-store.example" in result.server_ids

    def test_cache_disabled_by_default(self):
        federation = Federation()
        store = generate_store("plain-store.example", ANCHOR, seed=4)
        federation.add_map_server("plain-store.example", store.map_data)
        client = federation.client()
        client.discover(ANCHOR, uncertainty_meters=40.0)
        second = client.discover(ANCHOR, uncertainty_meters=40.0)
        assert second.dns_lookups > 0
        assert client.context.discoverer.device_cache_hits == 0

    def test_different_cells_are_cached_independently(self, cached_federation: Federation):
        client = cached_federation.client()
        client.discover(ANCHOR, uncertainty_meters=10.0)
        far = ANCHOR.destination(90.0, 5_000.0)
        result = client.discover(far, uncertainty_meters=10.0)
        assert result.dns_lookups > 0  # new cell, cache miss
        assert "cached-store.example" not in result.server_ids

    def test_cache_results_match_uncached(self, cached_federation: Federation):
        cached_client = cached_federation.client()
        warm = cached_client.discover(ANCHOR, uncertainty_meters=60.0)
        repeat = cached_client.discover(ANCHOR, uncertainty_meters=60.0)
        assert set(repeat.server_ids) == set(warm.server_ids)

    def test_device_entry_cannot_outlive_the_dns_record(self):
        """Regression: entries seeded from a resolver-cached answer must
        expire with the DNS record, not a full device TTL later."""
        config = FederationConfig(
            registration_ttl_seconds=90.0,
            device_discovery_cache_ttl_seconds=120.0,
        )
        federation = Federation(config=config)
        store = generate_store("ttl-store.example", ANCHOR, seed=5)
        federation.add_map_server("ttl-store.example", store.map_data)

        # Client A warms the resolver cache at t=0 (records expire at t=90).
        federation.client().discover(ANCHOR, uncertainty_meters=40.0)
        federation.network.clock.advance(80.0)

        # Client B discovers at t=80 from the resolver cache: only ~10s of
        # record lifetime remain, so its device entry must expire at t=90.
        client_b = federation.client()
        client_b.discover(ANCHOR, uncertainty_meters=40.0)
        federation.network.clock.advance(35.0)  # t=115, past DNS expiry

        result = client_b.discover(ANCHOR, uncertainty_meters=40.0)
        assert result.dns_lookups > 0  # re-resolved, not served from the device cache
        assert "ttl-store.example" in result.server_ids
