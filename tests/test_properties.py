"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.records import normalize_name
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng, LocalPoint
from repro.geometry.projection import LocalProjection
from repro.geometry.transform import estimate_similarity
from repro.spatialindex import geohash
from repro.spatialindex.cellid import CellId
from repro.spatialindex.covering import (
    CoveringOptions,
    RegionCoverer,
    cells_at_level,
    covering_contains_point,
    normalize_covering,
)
from repro.spatialindex.quadtree import QuadTree

# Strategies restricted to mid latitudes: the library's target workloads are
# city/building scale and the equirectangular approximations degrade at the
# poles by design.
latitudes = st.floats(min_value=-70.0, max_value=70.0, allow_nan=False, allow_infinity=False)
longitudes = st.floats(min_value=-170.0, max_value=170.0, allow_nan=False, allow_infinity=False)
points = st.builds(LatLng, latitudes, longitudes)
levels = st.integers(min_value=1, max_value=20)


class TestGeometryProperties:
    @given(points, points)
    def test_distance_symmetry_and_nonnegativity(self, a: LatLng, b: LatLng):
        assert a.distance_to(b) >= 0.0
        assert a.distance_to(b) == pytest.approx(b.distance_to(a), rel=1e-9)

    @given(points)
    def test_distance_identity(self, a: LatLng):
        assert a.distance_to(a) == 0.0

    @given(points, points, points)
    def test_triangle_inequality(self, a: LatLng, b: LatLng, c: LatLng):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points, st.floats(min_value=0.0, max_value=360.0), st.floats(min_value=0.0, max_value=5000.0))
    def test_destination_distance_matches_request(self, origin: LatLng, bearing: float, distance: float):
        target = origin.destination(bearing, distance)
        assert origin.distance_to(target) == pytest.approx(distance, rel=1e-3, abs=0.5)

    @given(points, st.floats(min_value=1.0, max_value=5000.0))
    def test_bbox_around_contains_center(self, center: LatLng, radius: float):
        box = BoundingBox.around(center, radius)
        assert box.contains(center)

    @given(points, st.floats(min_value=-2000.0, max_value=2000.0), st.floats(min_value=-2000.0, max_value=2000.0))
    def test_projection_round_trip(self, anchor: LatLng, x: float, y: float):
        projection = LocalProjection(anchor, rotation_degrees=33.0, frame="f")
        original = LocalPoint(x, y, "f")
        geographic = projection.to_geographic(original)
        back = projection.to_local(geographic)
        assert math.hypot(back.x - original.x, back.y - original.y) < max(1.0, 0.01 * math.hypot(x, y))


class TestCellProperties:
    @given(points, levels)
    def test_cell_contains_its_point(self, point: LatLng, level: int):
        assert CellId.from_point(point, level).contains_point(point)

    @given(points, levels)
    def test_ancestor_chain_is_prefix_ordered(self, point: LatLng, level: int):
        cell = CellId.from_point(point, level)
        current = cell
        while not current.is_root:
            parent = current.parent()
            assert parent.contains(current)
            assert current.token.startswith(parent.token)
            current = parent

    @given(points, st.integers(min_value=8, max_value=18))
    def test_children_tile_parent_without_overlap(self, point: LatLng, level: int):
        # Levels >= 8 keep cells small enough that the planar area
        # approximation is meaningful; coarser cells span too much latitude.
        cell = CellId.from_point(point, level)
        children = cell.children()
        total_child_area = sum(child.bounds().area_square_meters() for child in children)
        assert total_child_area == pytest.approx(cell.bounds().area_square_meters(), rel=0.05)
        # A point belongs to exactly one child.
        containing = [child for child in children if child.contains_point(point)]
        assert len(containing) >= 1

    @given(points, st.integers(min_value=10, max_value=18), st.floats(min_value=10.0, max_value=500.0))
    def test_fixed_level_cells_cover_box(self, center: LatLng, level: int, radius: float):
        box = BoundingBox.around(center, radius)
        cells = cells_at_level(box, level, max_cells=256)
        assert cells
        # Each returned cell intersects the box, and the box corners are covered
        # whenever the budget was not exhausted.
        assert all(cell.bounds().intersects(box) for cell in cells)
        if len(cells) < 256:
            for corner in box.corners():
                assert any(cell.contains_point(corner) for cell in cells)

    @given(st.lists(st.builds(lambda p, l: CellId.from_point(p, l), points, levels), min_size=1, max_size=20))
    def test_normalize_covering_is_minimal_and_idempotent(self, cells: list[CellId]):
        normalized = normalize_covering(cells)
        # No cell contains another.
        for i, a in enumerate(normalized):
            for j, b in enumerate(normalized):
                if i != j:
                    assert not a.contains(b)
        assert normalize_covering(normalized) == normalized


class TestCoveringProperties:
    """Cover/contains round-trips: a covering always contains its region."""

    @given(points, st.floats(min_value=20.0, max_value=2000.0))
    @settings(max_examples=50, deadline=None)
    def test_cover_box_contains_the_whole_box(self, center: LatLng, radius: float):
        box = BoundingBox.around(center, radius)
        coverer = RegionCoverer(CoveringOptions(min_level=4, max_level=16, max_cells=32))
        covering = coverer.cover_box(box)
        assert covering
        # The coverer only ever refines or keeps cells, so the covering must
        # contain every sample of the region — including its corners.
        for sample in box.corners() + box.grid_points(3, 3):
            assert covering_contains_point(covering, sample)

    @given(points, st.floats(min_value=20.0, max_value=2000.0))
    @settings(max_examples=50, deadline=None)
    def test_cover_disc_contains_center_and_is_normalized(self, center: LatLng, radius: float):
        coverer = RegionCoverer(CoveringOptions(min_level=4, max_level=16, max_cells=24))
        covering = coverer.cover_disc(center, radius)
        assert covering_contains_point(covering, center)
        assert normalize_covering(covering) == covering

    @given(points, st.integers(min_value=6, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_cover_point_round_trip(self, point: LatLng, level: int):
        coverer = RegionCoverer(CoveringOptions(min_level=4, max_level=16, max_cells=8))
        covering = coverer.cover_point(point, level)
        assert len(covering) == 1
        assert covering[0].level == level
        assert covering_contains_point(covering, point)

    @given(points, st.integers(min_value=8, max_value=16), st.floats(min_value=10.0, max_value=400.0))
    @settings(max_examples=50, deadline=None)
    def test_covering_respects_cell_budget(self, center: LatLng, level: int, radius: float):
        box = BoundingBox.around(center, radius)
        options = CoveringOptions(min_level=4, max_level=level, max_cells=12)
        covering = RegionCoverer(options).cover_box(box)
        assert 1 <= len(covering) <= options.max_cells
        assert all(cell.level <= options.max_level for cell in covering)


class TestGeohashProperties:
    @given(points, st.integers(min_value=1, max_value=10))
    def test_encode_decode_containment(self, point: LatLng, precision: int):
        code = geohash.encode(point, precision)
        assert len(code) == precision
        assert geohash.decode_bounds(code).contains(point)

    @given(points, st.integers(min_value=2, max_value=10))
    def test_prefix_property(self, point: LatLng, precision: int):
        code = geohash.encode(point, precision)
        shorter = geohash.encode(point, precision - 1)
        assert code.startswith(shorter)

    @given(points, st.integers(min_value=3, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_neighbor_symmetry(self, point: LatLng, precision: int):
        """If B neighbors A then A neighbors B (away from the poles/antimeridian)."""
        code = geohash.encode(point, precision)
        for neighbor in geohash.neighbors(code):
            assert code in geohash.neighbors(neighbor)

    @given(points, st.integers(min_value=3, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_neighbors_distinct_adjacent_same_precision(self, point: LatLng, precision: int):
        code = geohash.encode(point, precision)
        cell = geohash.decode_bounds(code)
        found = geohash.neighbors(code)
        assert len(found) == len(set(found))
        assert code not in found
        for neighbor in found:
            assert len(neighbor) == precision
            # Neighboring cells share a border (touch) with the original.
            assert geohash.decode_bounds(neighbor).expanded(1.0).intersects(cell)

    @given(points, st.integers(min_value=1, max_value=9))
    def test_decode_encode_round_trip(self, point: LatLng, precision: int):
        """Encoding a cell's center recovers the cell."""
        code = geohash.encode(point, precision)
        assert geohash.encode(geohash.decode(code), precision) == code


class TestDnsNameProperties:
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-", min_size=1, max_size=50))
    def test_normalize_idempotent(self, name: str):
        once = normalize_name(name)
        assert normalize_name(once) == once

    @given(points, st.integers(min_value=1, max_value=20))
    def test_spatial_names_valid_and_invertible(self, point: LatLng, level: int):
        from repro.discovery.naming import SpatialNaming
        from repro.dns.records import validate_name

        naming = SpatialNaming()
        cell = CellId.from_point(point, level)
        name = naming.cell_to_name(cell)
        validate_name(name)
        assert naming.name_to_cell(name) == cell


class TestQuadTreeProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=40.0, max_value=41.0, allow_nan=False),
                st.floats(min_value=-80.0, max_value=-79.0, allow_nan=False),
            ),
            min_size=0,
            max_size=80,
        ),
        st.tuples(
            st.floats(min_value=40.2, max_value=40.8),
            st.floats(min_value=-79.8, max_value=-79.2),
        ),
        st.floats(min_value=100.0, max_value=30_000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_radius_query_matches_brute_force(self, raw_points, query_center, radius):
        bounds = BoundingBox(40.0, -80.0, 41.0, -79.0)
        tree: QuadTree[int] = QuadTree(bounds)
        stored = []
        for index, (lat, lng) in enumerate(raw_points):
            point = LatLng(lat, lng)
            tree.insert(point, index)
            stored.append(point)
        center = LatLng(*query_center)
        expected = {i for i, p in enumerate(stored) if center.distance_to(p) <= radius}
        got = {value for _, value in tree.query_radius(center, radius)}
        assert got == expected


class TestTransformProperties:
    @given(
        st.floats(min_value=0.2, max_value=5.0),
        st.floats(min_value=-math.pi, max_value=math.pi),
        st.floats(min_value=-100.0, max_value=100.0),
        st.floats(min_value=-100.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_estimation_recovers_exact_transforms(self, scale, rotation, tx, ty):
        from repro.geometry.transform import SimilarityTransform

        truth = SimilarityTransform(scale, rotation, tx, ty, "src", "dst")
        source = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (13.0, 7.0)]
        destination = [truth.apply_xy(x, y) for x, y in source]
        estimated = estimate_similarity(source, destination, "src", "dst")
        for (sx, sy), (dx, dy) in zip(source, destination):
            gx, gy = estimated.apply_xy(sx, sy)
            assert math.hypot(gx - dx, gy - dy) < 1e-6 * max(1.0, scale * 20.0)


class TestStitchingProperties:
    @given(
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=50.0, max_value=400.0),
        st.floats(min_value=0.0, max_value=359.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_chained_legs_always_stitch(self, leg_count, leg_length, bearing):
        from repro.routing.stitching import RouteLeg, RouteStitcher

        origin = LatLng(40.44, -79.95)
        legs = []
        cursor = origin
        for index in range(leg_count):
            end = cursor.destination(bearing, leg_length)
            legs.append(RouteLeg(f"server-{index}", (cursor, end), cursor.distance_to(end)))
            cursor = end
        destination = cursor
        stitched = RouteStitcher(max_gap_meters=1.0).stitch(origin, destination, legs)
        assert stitched.servers == tuple(f"server-{i}" for i in range(leg_count))
        assert stitched.length_meters() == pytest.approx(leg_count * leg_length, rel=0.02)
        assert stitched.connector_meters < 1.0 * leg_count + 1.0


class TestRoutingProperties:
    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_ch_equals_dijkstra_on_random_grids(self, rows, cols, seed):
        import random as _random

        from repro.routing.contraction import build_contraction_hierarchy
        from repro.routing.graph import RoutingGraph
        from repro.routing.shortest_path import dijkstra

        rng = _random.Random(seed)
        graph = RoutingGraph()
        origin = LatLng(40.0, -80.0)
        for i in range(rows):
            for j in range(cols):
                graph.add_vertex(i * cols + j, origin.destination(0.0, i * 100.0).destination(90.0, j * 100.0))
        for i in range(rows):
            for j in range(cols):
                vertex = i * cols + j
                if j + 1 < cols and rng.random() < 0.9:
                    graph.connect(vertex, vertex + 1)
                if i + 1 < rows and rng.random() < 0.9:
                    graph.connect(vertex, vertex + cols)
        hierarchy = build_contraction_hierarchy(graph)
        source = rng.randrange(rows * cols)
        target = rng.randrange(rows * cols)
        from repro.routing.shortest_path import NoRouteError

        try:
            expected = dijkstra(graph, source, target).cost
        except NoRouteError:
            with pytest.raises(NoRouteError):
                hierarchy.query(source, target)
            return
        assert hierarchy.query(source, target).cost == pytest.approx(expected, rel=1e-9)
