"""Invariant tests for registry/zone mutation under arbitrary op sequences.

The control plane made the discovery zone *mutable at runtime*: weights are
re-emitted, records withdrawn and republished while the authority keeps
answering.  These tests drive seeded random interleavings of every mutation
the system performs — ``register_covering`` / ``deregister`` / ``reweight``
at the registry, and crash / lease-expiry / revive / ``set_srv`` at the
federation — and after each sequence check the structural invariants no
interleaving may break:

* ``Zone._name_index`` (and ``_delegations``) match a from-scratch reindex
  computed from the record table alone;
* no endpoint-shadowing records exist: at any (name, SRV) bucket, each
  ``target:port`` appears at most once;
* the registry's ``registrations`` book matches the zone: every registered
  server's records exist with exactly its advertised priority/weight, and
  no record belongs to a server the book forgot.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import FederationConfigError
from repro.core.federation import Federation
from repro.discovery.naming import SpatialNaming
from repro.discovery.registry import MAP_SERVER_RECORD_TYPE, DiscoveryRegistry
from repro.dns.records import RecordType, SrvData
from repro.dns.zone import Zone
from repro.geometry.point import LatLng
from repro.spatialindex.cellid import CellId
from repro.worldgen.indoor import generate_store

ANCHOR = LatLng(40.4410, -79.9570)


def reindex_from_scratch(zone: Zone) -> tuple[dict[str, set], set[str]]:
    """Recompute the name index and delegation set from the record table."""
    name_index: dict[str, set] = {}
    delegations: set[str] = set()
    for (name, record_type), bucket in zone._records.items():
        assert bucket, f"empty bucket left behind at {(name, record_type)}"
        name_index.setdefault(name, set()).add(record_type)
        if record_type == RecordType.NS and name != zone.origin:
            delegations.add(name)
    return name_index, delegations


def assert_zone_invariants(registry: DiscoveryRegistry) -> None:
    zone = registry.zone
    # (1) Index/delegations exactly match a from-scratch reindex.
    name_index, delegations = reindex_from_scratch(zone)
    assert dict(zone._name_index) == name_index
    assert set(zone._delegations) == delegations
    # (2) No endpoint shadows anywhere.
    for (name, record_type), bucket in zone._records.items():
        if record_type != MAP_SERVER_RECORD_TYPE:
            continue
        endpoints = [SrvData.decode(record.data).endpoint for record in bucket]
        assert len(endpoints) == len(set(endpoints)), (
            f"endpoint shadowed at {name!r}: {endpoints}"
        )
    # (3) The registration book and the zone agree.
    for server_id, registration in registry.registrations.items():
        expected = SrvData(
            target=registration.target,
            port=registration.port,
            priority=registration.priority,
            weight=registration.weight,
        )
        for cell in registration.cells:
            name = registry.naming.cell_to_name(cell)
            matching = [
                SrvData.decode(record.data)
                for record in zone.records_at(name, MAP_SERVER_RECORD_TYPE)
                if SrvData.decode(record.data).endpoint == expected.endpoint
            ]
            assert matching == [expected], (
                f"{server_id!r} at {name!r}: zone holds {matching}, "
                f"book says {expected}"
            )


def cell_pool(naming: SpatialNaming, size: int = 12) -> list[CellId]:
    """A fixed pool of real cells for coverings to draw from."""
    cells = []
    for i in range(size):
        point = ANCHOR.destination(bearing_degrees=(i * 47) % 360, distance_meters=30.0 * (i + 1))
        cells.append(CellId.from_point(point, 17))
    # De-duplicate while keeping order (nearby points can share a cell).
    return list(dict.fromkeys(cells))


class TestRandomRegistryOps:
    """Seeded random interleavings of every registry mutation."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_invariants_survive_random_op_sequences(self, seed):
        rng = random.Random(seed)
        registry = DiscoveryRegistry()
        pool = cell_pool(registry.naming)
        assert len(pool) >= 6
        next_id = 0

        for _ in range(300):
            op = rng.random()
            registered = sorted(registry.registrations)
            if op < 0.4 or not registered:
                server_id = f"s{next_id}.maps.example"
                next_id += 1
                cells = rng.sample(pool, rng.randint(1, min(5, len(pool))))
                try:
                    registry.register_covering(
                        server_id,
                        cells,
                        priority=rng.randint(0, 2),
                        weight=rng.randint(0, 5),
                        port=rng.choice((443, 8443)),
                    )
                except ValueError:
                    # Shadow guard may fire when a fresh id collides with a
                    # lingering endpoint — rejection must leave no debris,
                    # which the invariant check below verifies.
                    pass
            elif op < 0.7:
                registry.reweight(
                    rng.choice(registered),
                    priority=rng.randint(0, 2) if rng.random() < 0.5 else None,
                    weight=rng.randint(0, 5) if rng.random() < 0.8 else None,
                )
            else:
                registry.deregister(rng.choice(registered))

        assert_zone_invariants(registry)
        # And the zone drains cleanly: removing everything leaves it empty.
        for server_id in sorted(registry.registrations):
            registry.deregister(server_id)
        assert registry.total_records == 0
        assert registry.zone._name_index == {}
        assert_zone_invariants(registry)

    def test_invariants_checked_after_every_single_op(self):
        """A finer-grained sweep: the invariants hold at *every* step of a
        shorter random sequence, not only at the end."""
        rng = random.Random(99)
        registry = DiscoveryRegistry()
        pool = cell_pool(registry.naming)
        next_id = 0
        for _ in range(80):
            op = rng.random()
            registered = sorted(registry.registrations)
            if op < 0.45 or not registered:
                server_id = f"s{next_id}.maps.example"
                next_id += 1
                try:
                    registry.register_covering(
                        server_id,
                        rng.sample(pool, rng.randint(1, 4)),
                        weight=rng.randint(0, 3),
                    )
                except ValueError:
                    pass
            elif op < 0.75:
                registry.reweight(rng.choice(registered), weight=rng.randint(0, 3))
            else:
                registry.deregister(rng.choice(registered))
            assert_zone_invariants(registry)


class TestRandomFederationLifecycleOps:
    """The same invariants under the *federation's* mutation surface:
    set_srv interleaved with crash / lease expiry / revive / leave."""

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_zone_invariants_survive_lifecycle_interleavings(self, seed):
        rng = random.Random(seed)
        federation = Federation()
        store = generate_store("shop.example", ANCHOR, seed=4)
        federation.add_replica_group(
            "shop.example", store.map_data, replica_count=3, weights=(2, 2, 2)
        )
        replicas = list(federation.replica_groups["shop.example"].server_ids)
        for step in range(150):
            server_id = rng.choice(replicas)
            op = rng.random()
            try:
                if op < 0.3:
                    federation.set_srv(
                        server_id,
                        priority=rng.randint(0, 2) if rng.random() < 0.3 else None,
                        weight=rng.randint(0, 4) if rng.random() < 0.9 else None,
                    )
                elif op < 0.45:
                    federation.crash_map_server(server_id)
                elif op < 0.6:
                    federation.expire_registration(server_id)
                elif op < 0.75:
                    federation.revive_map_server(server_id)
                elif op < 0.85:
                    federation.park_map_server(server_id)
                elif op < 0.95:
                    federation.unpark_map_server(server_id)
                else:
                    federation.leave_map_server(server_id)
            except (FederationConfigError, ValueError):
                continue  # inapplicable for the current lifecycle state
            if step % 10 == 0:
                assert_zone_invariants(federation.registry)
        assert_zone_invariants(federation.registry)
        # Whatever the interleaving, every *reachable* replica either has
        # its records at the authority with the advertised values, or was
        # expired/left and re-registers with them on revival.
        for server_id in replicas:
            priority, weight = federation.srv_of(server_id)
            if federation.registration_for(server_id) is not None:
                registration = federation.registry.registrations[server_id]
                assert (registration.priority, registration.weight) == (priority, weight)
            # A parked server's records stay withdrawn no matter which
            # crash/expire/revive path the interleaving took it through.
            if federation.is_parked(server_id):
                assert federation.registration_for(server_id) is None


class TestParkLifecycleInterleavings:
    """Park/unpark vs crash/expire/revive: explicit, rejected-not-corrupting."""

    def _federation(self) -> Federation:
        federation = Federation()
        store = generate_store("shop.example", ANCHOR, seed=4)
        federation.add_replica_group(
            "shop.example", store.map_data, replica_count=3, weights=(2, 2, 2)
        )
        return federation

    def test_revive_does_not_resurrect_a_parked_servers_records(self):
        """Regression: park → crash → revive used to re-register the parked
        server (revive saw no registration and 'helpfully' recreated it),
        silently overruling the operator."""
        federation = self._federation()
        federation.park_map_server("r0.shop.example")
        federation.crash_map_server("r0.shop.example")
        federation.revive_map_server("r0.shop.example")
        assert federation.is_parked("r0.shop.example")
        assert federation.registration_for("r0.shop.example") is None
        assert_zone_invariants(federation.registry)
        # The operator's unpark is still what brings the records back.
        federation.unpark_map_server("r0.shop.example")
        assert not federation.is_parked("r0.shop.example")
        assert federation.registration_for("r0.shop.example") is not None

    def test_parking_an_offline_server_is_rejected_without_corruption(self):
        federation = self._federation()
        federation.crash_map_server("r0.shop.example")
        with pytest.raises(FederationConfigError, match="offline"):
            federation.park_map_server("r0.shop.example")
        # The rejection changed nothing: records linger until lease expiry,
        # and the server is not considered parked.
        assert not federation.is_parked("r0.shop.example")
        assert federation.registration_for("r0.shop.example") is not None
        federation.revive_map_server("r0.shop.example")
        assert federation.registration_for("r0.shop.example") is not None

    def test_unparking_an_offline_server_is_rejected_and_state_kept(self):
        federation = self._federation()
        federation.park_map_server("r0.shop.example")
        federation.leave_map_server("r0.shop.example")
        with pytest.raises(FederationConfigError, match="offline"):
            federation.unpark_map_server("r0.shop.example")
        assert federation.is_parked("r0.shop.example")
        assert federation.registration_for("r0.shop.example") is None

    def test_park_expire_interleaving_is_idempotent(self):
        federation = self._federation()
        federation.park_map_server("r0.shop.example")
        # Lease expiry racing the park finds the records already gone.
        assert federation.expire_registration("r0.shop.example") == 0
        assert federation.is_parked("r0.shop.example")
        federation.unpark_map_server("r0.shop.example")
        assert federation.registration_for("r0.shop.example") is not None
        assert_zone_invariants(federation.registry)

    def test_remove_clears_the_parked_flag(self):
        federation = self._federation()
        federation.park_map_server("r0.shop.example")
        federation.remove_map_server("r0.shop.example")
        assert not federation.is_parked("r0.shop.example")


class TestReweightMechanics:
    def test_reweight_rewrites_every_record_without_a_window(self):
        registry = DiscoveryRegistry()
        pool = cell_pool(registry.naming)[:4]
        registry.register_covering("a.example", pool, weight=2)
        registry.register_covering("b.example", pool, weight=2)
        before = registry.total_records
        registry.reweight("a.example", weight=0, priority=1)
        # Same record population: one record per (cell, endpoint), new data.
        assert registry.total_records == before
        for cell in pool:
            decoded = {
                SrvData.decode(r.data).target: SrvData.decode(r.data)
                for r in registry.records_for_cell(cell)
            }
            assert decoded["a.example"].weight == 0
            assert decoded["a.example"].priority == 1
            assert decoded["b.example"].weight == 2  # sibling untouched
            # The name never stopped resolving (no NXDOMAIN window): the
            # shared spatial name still exists with both endpoints present.
            name = registry.naming.cell_to_name(cell)
            assert registry.zone.contains_name(name)
        assert registry.registrations["a.example"].weight == 0
        assert_zone_invariants(registry)

    def test_reweight_is_a_noop_for_identical_values(self):
        registry = DiscoveryRegistry()
        pool = cell_pool(registry.naming)[:3]
        registration = registry.register_covering("a.example", pool, weight=2)
        assert registry.reweight("a.example", weight=2) is registration
        assert_zone_invariants(registry)

    def test_reweight_unknown_server_raises(self):
        registry = DiscoveryRegistry()
        with pytest.raises(ValueError, match="not registered"):
            registry.reweight("ghost.example", weight=1)

    def test_deregister_after_reweight_removes_everything(self):
        """A reweighted server's *new* records must be the ones deregister
        withdraws — the old encoded data is gone, so matching is by endpoint,
        not by byte-equal record."""
        registry = DiscoveryRegistry()
        pool = cell_pool(registry.naming)[:3]
        registry.register_covering("a.example", pool, weight=2)
        registry.reweight("a.example", weight=5)
        removed = registry.deregister("a.example")
        assert removed == len(pool)
        assert registry.total_records == 0
        assert_zone_invariants(registry)
