"""The fault-injection subsystem: primitives, tapes, and graceful degradation.

Covers the layers bottom-up: bounded retransmits on the network (the
infinite-transparent-retry bugfix), jittered/escalating retry policies,
:class:`NetworkFaultState` primitives, stale-serving discovery caches,
:class:`FaultPlan` tape semantics, the injector, and end-to-end workload
runs under partitions / authority outages / gray failures — including the
byte-identity guarantees: fault-free runs carry no fault keys, and the
event engine stays equivalent to the legacy loop *with* a fault tape.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.churn.retry import RetryPolicy
from repro.core.config import FederationConfig
from repro.discovery.cache import DiscoveryCache
from repro.faults import (
    FaultEvent,
    FaultEventKind,
    FaultInjector,
    FaultPlan,
    get_scenario,
)
from repro.simulation.clock import SimulatedClock
from repro.simulation.lru import LruCache
from repro.simulation.network import (
    GrayFailure,
    LatencyModel,
    NetworkFaultState,
    NetworkTimeoutError,
    SimulatedNetwork,
)
from repro.simulation.queueing import ServiceTimeModel
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

WORLD_SEED = 33


def _scenario(stale_serve_max_ms: float = 0.0, ttl: float = 120.0, reg_ttl: float = 3600.0):
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=ttl,
        registration_ttl_seconds=reg_ttl,
        client_tile_cache_entries=64,
        service_times=ServiceTimeModel(default_ms=2.0),
        server_queue_capacity=128,
        retry_policy=RetryPolicy.full_jitter(),
        stale_serve_max_ms=stale_serve_max_ms,
    )
    return build_scenario(
        store_count=2,
        city_rows=5,
        city_cols=5,
        config=config,
        seed=WORLD_SEED,
        reuse_worlds=True,
        store_replicas=2,
    )


class TestBoundedRetransmits:
    """The bugfix: loss can no longer retry transparently forever."""

    def test_transparent_retries_are_capped(self):
        network = SimulatedNetwork(
            latency=LatencyModel(loss_probability=0.9, max_retransmits=3)
        )
        network.client_map_server_exchange()
        assert network.stats.retransmissions <= 3

    def test_exhaustion_raises_on_opt_in(self):
        network = SimulatedNetwork(
            latency=LatencyModel(loss_probability=0.9, max_retransmits=2)
        )
        with pytest.raises(NetworkTimeoutError) as excinfo:
            for _ in range(50):  # deterministic under jitter_seed=0
                network.client_map_server_exchange(
                    server_id="s-1", fail_on_exhaustion=True
                )
        assert excinfo.value.server_id == "s-1"

    def test_exhaustion_charges_nothing(self):
        network = SimulatedNetwork(
            latency=LatencyModel(loss_probability=0.9, max_retransmits=0)
        )
        # With a zero budget every lossy exchange is immediately at the cap;
        # find a raising draw and check the clock/stats were untouched by it.
        for _ in range(50):
            before_ms = network.stats.total_latency_ms
            before_clock = network.clock.now()
            try:
                network.client_map_server_exchange(server_id="s", fail_on_exhaustion=True)
            except NetworkTimeoutError:
                assert network.stats.total_latency_ms == before_ms
                assert network.clock.now() == before_clock
                return
        pytest.fail("loss=0.9 never exhausted a zero retransmit budget")

    def test_legacy_callers_keep_draw_for_draw_behaviour(self):
        """Same seed, same draws: opting out is byte-identical to before."""
        a = SimulatedNetwork(latency=LatencyModel(loss_probability=0.4, jitter_sigma=0.2))
        b = SimulatedNetwork(latency=LatencyModel(loss_probability=0.4, jitter_sigma=0.2))
        for _ in range(20):
            assert a.client_map_server_exchange() == b.client_map_server_exchange(
                server_id="s"  # naming the server must not change the draws
            )

    def test_max_retransmits_validated(self):
        with pytest.raises(ValueError):
            LatencyModel(max_retransmits=-1)
        with pytest.raises(ValueError):
            FederationConfig(max_retransmits=-1)


class TestRetryPolicyJitter:
    def test_full_jitter_bounded_by_deterministic_delay(self):
        policy = RetryPolicy.full_jitter()
        legacy = RetryPolicy.exponential()
        rng = random.Random(7)
        for failed in (1, 2, 3):
            ceiling = legacy.delay_ms(failed)
            for _ in range(20):
                delay = policy.delay_ms(failed, rng=rng)
                assert 0.0 <= delay <= ceiling

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy.full_jitter()
        assert policy.delay_ms(2) == RetryPolicy.exponential().delay_ms(2)

    def test_legacy_policies_never_draw(self):
        rng = random.Random(3)
        state = rng.getstate()
        RetryPolicy.exponential().delay_ms(3, rng=rng)
        assert rng.getstate() == state

    def test_attempt_timeout_escalates_and_caps(self):
        policy = RetryPolicy.full_jitter(attempt_timeout_ms=50.0, multiplier=2.0)
        assert policy.timeout_ms(0) == 50.0
        assert policy.timeout_ms(1) == 100.0
        assert policy.timeout_ms(5) == policy.dead_server_timeout_ms

    def test_legacy_timeout_is_the_constant(self):
        policy = RetryPolicy.exponential()
        assert policy.timeout_ms(0) == policy.dead_server_timeout_ms
        assert policy.timeout_ms(7) == policy.dead_server_timeout_ms

    def test_jitter_mode_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter="half")


class TestNetworkFaultState:
    def test_global_partition(self):
        state = NetworkFaultState()
        assert state.server_reachable("a")
        assert state.block("a")
        assert not state.block("a")  # idempotent re-cut is a no-op
        assert not state.server_reachable("a")
        assert state.unblock("a")
        assert not state.unblock("a")
        assert state.server_reachable("a")

    def test_region_scoped_partition(self):
        state = NetworkFaultState()
        assert state.block("a", (0,))
        state.active_region = 0
        assert not state.server_reachable("a")
        state.active_region = 1
        assert state.server_reachable("a")
        # A client with no region is outside every region-scoped partition.
        state.active_region = None
        assert state.server_reachable("a")
        assert state.unblock("a", (0,))
        state.active_region = 0
        assert state.server_reachable("a")

    def test_gray_failures(self):
        state = NetworkFaultState()
        gray = GrayFailure(latency_multiplier=4.0)
        assert state.set_gray("a", gray)
        assert not state.set_gray("a", gray)  # same degradation: no-op
        assert state.gray_for("a") == gray
        assert state.clear_gray("a")
        assert not state.clear_gray("a")
        assert state.gray_for("a") is None

    def test_authority_outages(self):
        state = NetworkFaultState()
        assert state.authority_down("auth")
        assert state.authority_is_down("auth")
        assert not state.authority_down("auth")
        assert state.authority_up("auth")
        assert not state.authority_up("auth")

    def test_any_active(self):
        state = NetworkFaultState()
        assert not state.any_active
        state.block("a")
        assert state.any_active
        state.unblock("a")
        assert not state.any_active

    def test_gray_validation(self):
        with pytest.raises(ValueError):
            GrayFailure()  # must degrade something
        with pytest.raises(ValueError):
            GrayFailure(latency_multiplier=0.5)


class TestStaleServing:
    def test_peek_has_no_side_effects(self):
        lru = LruCache(max_entries=4)
        lru.store("k", "v")
        hits, misses = lru.stats.hits, lru.stats.misses
        assert lru.peek("k") == "v"
        assert lru.peek("absent") is None
        assert (lru.stats.hits, lru.stats.misses) == (hits, misses)

    def test_expired_entry_served_stale_within_grace(self):
        clock = SimulatedClock()
        cache = DiscoveryCache(clock=clock, default_ttl_seconds=10.0, stale_grace_seconds=30.0)
        cache.put("cell", ("s1", "s2"))
        assert cache.get("cell") == ("s1", "s2")
        clock.advance(15.0)  # expired, inside grace
        assert cache.get("cell") is None  # normal lookups never serve stale
        assert cache.get_stale("cell") == ("s1", "s2")
        clock.advance(30.0)  # beyond expiry + grace
        assert cache.get_stale("cell") is None

    def test_no_grace_means_no_stale_serving(self):
        clock = SimulatedClock()
        cache = DiscoveryCache(clock=clock, default_ttl_seconds=10.0)
        cache.put("cell", ("s1",))
        clock.advance(15.0)
        assert cache.get("cell") is None
        assert cache.get_stale("cell") is None

    def test_grace_window_stats_match_no_grace_behaviour(self):
        """Retaining expired entries for stale serving must not inflate the
        hit/miss accounting a graceless cache would report."""
        clock_a, clock_b = SimulatedClock(), SimulatedClock()
        graceless = DiscoveryCache(clock=clock_a, default_ttl_seconds=10.0)
        graceful = DiscoveryCache(
            clock=clock_b, default_ttl_seconds=10.0, stale_grace_seconds=60.0
        )
        for cache, clock in ((graceless, clock_a), (graceful, clock_b)):
            cache.put("cell", ("s1",))
            cache.get("cell")  # hit
            clock.advance(15.0)
            cache.get("cell")  # expired -> miss
        assert graceless.stats.hits == graceful.stats.hits
        assert graceless.stats.misses == graceful.stats.misses

    def test_stale_serve_config_validated(self):
        with pytest.raises(ValueError):
            FederationConfig(stale_serve_max_ms=-1.0)


class TestFaultPlan:
    def test_events_sorted_stably_by_time(self):
        heal = FaultEvent(10.0, FaultEventKind.HEAL_PARTITION, ("a",))
        cut = FaultEvent(10.0, FaultEventKind.PARTITION, ("b",))
        late = FaultEvent(5.0, FaultEventKind.PARTITION, ("c",))
        plan = FaultPlan((heal, cut, late))
        assert plan.events == (late, heal, cut)  # same-instant keeps authored order

    def test_window_constructors(self):
        plan = FaultPlan.partition(("a", "b"), 10.0, 50.0, regions=(1,))
        assert [e.kind for e in plan] == [
            FaultEventKind.PARTITION,
            FaultEventKind.HEAL_PARTITION,
        ]
        assert plan.horizon_seconds == 50.0
        assert plan.servers == ("a", "b")
        assert len(plan.events_for("a")) == 2

    def test_plans_compose(self):
        merged = FaultPlan.partition(("a",), 10.0, 20.0) + FaultPlan.gray(
            ("b",), 5.0, latency_multiplier=2.0
        )
        assert [e.at_seconds for e in merged] == [5.0, 10.0, 20.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.partition(("a",), 50.0, 10.0)
        with pytest.raises(ValueError):
            FaultPlan.gray(("a",), 0.0)  # degrades nothing
        with pytest.raises(ValueError):
            FaultPlan.flash_crowd(("a",), 0.0, 10.0, extra_load=0)
        with pytest.raises(ValueError):
            FaultEvent(10.0, FaultEventKind.PARTITION)  # needs server ids
        with pytest.raises(ValueError):
            FaultEvent(-1.0, FaultEventKind.AUTHORITY_DOWN)


class TestFaultInjector:
    def test_tape_application_and_noop_detection(self):
        scenario = _scenario()
        victim = scenario.store_replica_ids(0)[0]
        plan = FaultPlan.from_events(
            [
                FaultEvent(0.0, FaultEventKind.PARTITION, (victim,)),
                # Healing a partition that was never cut is a recorded no-op.
                FaultEvent(5.0, FaultEventKind.HEAL_PARTITION, ("ghost",)),
                FaultEvent(10.0, FaultEventKind.HEAL_PARTITION, (victim,)),
            ]
        )
        injector = FaultInjector(federation=scenario.federation, plan=plan)
        first = injector.apply_until(0.0)
        assert [e.applied for e in first] == [True]
        assert not scenario.federation.network.server_reachable(victim)
        rest = injector.apply_until(100.0)
        assert [e.applied for e in rest] == [False, True]
        assert scenario.federation.network.server_reachable(victim)
        assert injector.exhausted

    def test_flash_crowd_charges_queue_load(self):
        scenario = _scenario()
        targets = scenario.store_replica_ids(0)
        plan = FaultPlan.flash_crowd(targets, 0.0, 60.0, extra_load=40)
        injector = FaultInjector(federation=scenario.federation, plan=plan)
        injector.apply_until(0.0)
        injector.inject_round_load()
        for server_id in targets:
            queue = scenario.federation.all_servers[server_id].queue
            assert queue is not None and queue.stats.arrivals == 40
        injector.apply_until(60.0)  # crowd disperses
        injector.inject_round_load()
        for server_id in targets:
            queue = scenario.federation.all_servers[server_id].queue
            assert queue.stats.arrivals == 40  # unchanged

    def test_empty_authority_event_targets_discovery_authority(self):
        scenario = _scenario()
        plan = FaultPlan.authority_outage(0.0)
        injector = FaultInjector(federation=scenario.federation, plan=plan)
        injector.apply_until(0.0)
        authority = scenario.federation.discovery_authority_id
        assert scenario.federation.network.faults.authority_is_down(authority)


class TestWorkloadUnderFaults:
    def test_partition_forces_failover_and_availability_holds(self):
        scenario = _scenario()
        victims = tuple(scenario.store_replica_ids(i)[0] for i in range(2))
        engine = WorkloadEngine(
            scenario,
            WorkloadConfig(
                clients=12,
                steps=6,
                seed=7,
                step_seconds=20.0,
                faults=FaultPlan.partition(victims, 30.0, 90.0),
            ),
        )
        report = engine.run()
        availability = report.availability()
        assert report.fault_stats["events_applied"] == 2.0
        assert availability["failovers"] > 0
        assert availability["failed_request_rate"] < 0.2

    def test_gray_failure_inflates_latency(self):
        def run(faulted: bool) -> float:
            scenario = _scenario()
            victims = tuple(
                sid for i in range(2) for sid in scenario.store_replica_ids(i)
            )
            plan = (
                FaultPlan.gray(victims, 20.0, 100.0, latency_multiplier=10.0)
                if faulted
                else None
            )
            engine = WorkloadEngine(
                scenario,
                WorkloadConfig(clients=12, steps=6, seed=7, step_seconds=20.0, faults=plan),
            )
            report = engine.run()
            assert report.availability()["failed_request_rate"] < 0.2
            return report.latency_percentiles()["p95"]

        assert run(faulted=True) > run(faulted=False)

    def test_authority_outage_coasts_on_stale_cache_and_recovers(self):
        """The cache-coasting story end to end: warm devices serve stale
        SRV views while the authority is dark (degraded, not failed), and a
        healing outage strictly beats one that never heals."""

        def run(heals: bool):
            scenario = _scenario(stale_serve_max_ms=60_000.0, ttl=30.0, reg_ttl=60.0)
            plan = FaultPlan.authority_outage(45.0, 165.0 if heals else None)
            engine = WorkloadEngine(
                scenario,
                WorkloadConfig(
                    clients=12, steps=10, seed=7, step_seconds=20.0, faults=plan
                ),
            )
            return engine.run()

        healed = run(heals=True)
        assert healed.degraded_requests > 0
        assert healed.fault_stats["stale_serves"] > 0
        healed_rate = healed.availability()["failed_request_rate"]
        assert healed_rate < 0.5
        unhealed = run(heals=False)
        assert unhealed.availability()["failed_request_rate"] > healed_rate

    def test_no_stale_grace_means_outage_fails_requests(self):
        """Without stale_serve_max_ms the same outage degrades nothing —
        the grace window is what converts failures into degraded serves."""
        scenario = _scenario(stale_serve_max_ms=0.0, ttl=30.0, reg_ttl=60.0)
        engine = WorkloadEngine(
            scenario,
            WorkloadConfig(
                clients=12,
                steps=10,
                seed=7,
                step_seconds=20.0,
                faults=FaultPlan.authority_outage(45.0, 165.0),
            ),
        )
        report = engine.run()
        assert report.degraded_requests == 0
        assert report.availability()["failed_requests"] > 0

    def test_fault_free_snapshot_carries_no_fault_keys(self):
        scenario = _scenario()
        engine = WorkloadEngine(
            scenario, WorkloadConfig(clients=8, steps=3, seed=7, step_seconds=2.0)
        )
        snapshot = engine.run().snapshot()
        assert not any(
            key.startswith(("faults.", "degraded.")) for key in snapshot
        )
        assert scenario.federation.network.faults is None

    def test_event_engine_equivalent_to_legacy_under_faults(self):
        """The golden-reference equivalence holds with a fault tape: both
        loops apply the same events at the same round boundaries."""

        def run(loop: str) -> dict[str, float]:
            scenario = _scenario()
            victims = tuple(scenario.store_replica_ids(i)[0] for i in range(2))
            plan = FaultPlan.partition(victims, 30.0, 90.0) + FaultPlan.gray(
                (scenario.store_replica_ids(0)[1],),
                50.0,
                110.0,
                latency_multiplier=6.0,
                loss_probability=0.2,
            )
            engine = WorkloadEngine(
                scenario,
                WorkloadConfig(
                    clients=10,
                    steps=6,
                    seed=7,
                    step_seconds=20.0,
                    faults=plan,
                    engine=loop,
                ),
            )
            return engine.run().snapshot()

        assert run("event") == run("legacy")


class TestScenarioLibrary:
    def test_every_scenario_is_registered_and_buildable(self):
        from repro.faults import SCENARIOS

        names = [spec.name for spec in SCENARIOS]
        assert names == [
            "regional-outage",
            "stadium-flash-crowd",
            "authority-outage",
            "asymmetric-partition",
            "rolling-gray",
        ]
        with pytest.raises(KeyError):
            get_scenario("volcano")

    def test_scenario_runs_are_deterministic(self):
        spec = dataclasses.replace(get_scenario("regional-outage"), clients=8, steps=5)

        def snapshot() -> dict[str, float]:
            scenario = spec.build()
            return WorkloadEngine(
                scenario, spec.workload(scenario, faulted=True)
            ).run().snapshot()

        assert snapshot() == snapshot()
