"""Unit tests for projections and similarity transforms."""

from __future__ import annotations

import math

import pytest

from repro.geometry.point import LatLng, LocalPoint
from repro.geometry.projection import LocalProjection
from repro.geometry.transform import (
    SimilarityTransform,
    alignment_residual_meters,
    estimate_similarity,
)


class TestLocalProjection:
    def test_anchor_maps_to_origin(self):
        anchor = LatLng(40.44, -79.95)
        projection = LocalProjection(anchor, frame="store")
        local = projection.to_local(anchor)
        assert local.x == pytest.approx(0.0, abs=1e-9)
        assert local.y == pytest.approx(0.0, abs=1e-9)
        assert local.frame == "store"

    def test_round_trip(self):
        projection = LocalProjection(LatLng(40.44, -79.95), rotation_degrees=15.0, frame="store")
        point = LatLng(40.4412, -79.9488)
        recovered = projection.to_geographic(projection.to_local(point))
        assert point.distance_to(recovered) < 0.01

    def test_north_displacement(self):
        anchor = LatLng(40.0, -80.0)
        projection = LocalProjection(anchor)
        north_point = anchor.destination(0.0, 100.0)
        local = projection.to_local(north_point)
        assert local.y == pytest.approx(100.0, rel=1e-3)
        assert abs(local.x) < 0.5

    def test_rotation_changes_axes(self):
        anchor = LatLng(40.0, -80.0)
        rotated = LocalProjection(anchor, rotation_degrees=90.0)
        east_point = anchor.destination(90.0, 50.0)
        local = rotated.to_local(east_point)
        # With a 90 degree frame rotation, east becomes -y in the local frame.
        assert abs(local.x) < 1.0
        assert local.y == pytest.approx(-50.0, rel=1e-2)

    def test_frame_mismatch_rejected(self):
        projection = LocalProjection(LatLng(40.0, -80.0), frame="a")
        with pytest.raises(ValueError):
            projection.to_geographic(LocalPoint(1.0, 1.0, "b"))


class TestSimilarityTransform:
    def test_identity(self):
        identity = SimilarityTransform.identity("f")
        point = LocalPoint(3.0, 4.0, "f")
        assert identity.apply(point) == LocalPoint(3.0, 4.0, "f")

    def test_pure_translation(self):
        transform = SimilarityTransform(1.0, 0.0, 10.0, -5.0, "a", "b")
        moved = transform.apply(LocalPoint(1.0, 1.0, "a"))
        assert moved.x == pytest.approx(11.0)
        assert moved.y == pytest.approx(-4.0)
        assert moved.frame == "b"

    def test_rotation_by_90_degrees(self):
        transform = SimilarityTransform(1.0, math.pi / 2, 0.0, 0.0, "a", "b")
        moved = transform.apply(LocalPoint(1.0, 0.0, "a"))
        assert moved.x == pytest.approx(0.0, abs=1e-9)
        assert moved.y == pytest.approx(1.0)

    def test_frame_mismatch_rejected(self):
        transform = SimilarityTransform(1.0, 0.0, 0.0, 0.0, "a", "b")
        with pytest.raises(ValueError):
            transform.apply(LocalPoint(0.0, 0.0, "c"))

    def test_inverse_round_trip(self):
        transform = SimilarityTransform(2.0, 0.7, 3.0, -2.0, "a", "b")
        inverse = transform.inverse()
        point = LocalPoint(5.0, -3.0, "a")
        back = inverse.apply(transform.apply(point))
        assert back.x == pytest.approx(point.x, abs=1e-9)
        assert back.y == pytest.approx(point.y, abs=1e-9)
        assert back.frame == "a"

    def test_zero_scale_cannot_invert(self):
        transform = SimilarityTransform(0.0, 0.0, 0.0, 0.0, "a", "b")
        with pytest.raises(ValueError):
            transform.inverse()

    def test_compose(self):
        first = SimilarityTransform(2.0, 0.0, 1.0, 0.0, "a", "b")
        second = SimilarityTransform(1.0, math.pi / 2, 0.0, 0.0, "b", "c")
        combined = second.compose(first)
        point = LocalPoint(1.0, 0.0, "a")
        expected = second.apply(first.apply(point))
        got = combined.apply(point)
        assert got.x == pytest.approx(expected.x, abs=1e-9)
        assert got.y == pytest.approx(expected.y, abs=1e-9)

    def test_compose_frame_mismatch(self):
        first = SimilarityTransform(1.0, 0.0, 0.0, 0.0, "a", "b")
        third = SimilarityTransform(1.0, 0.0, 0.0, 0.0, "x", "y")
        with pytest.raises(ValueError):
            third.compose(first)


class TestEstimation:
    def test_recovers_known_transform(self):
        truth = SimilarityTransform(1.5, 0.4, 12.0, -7.0, "src", "dst")
        source = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (7.0, 3.0), (-4.0, 6.0)]
        destination = [truth.apply_xy(x, y) for x, y in source]
        estimated = estimate_similarity(source, destination, "src", "dst")
        assert estimated.scale == pytest.approx(1.5, rel=1e-6)
        assert estimated.rotation_radians == pytest.approx(0.4, abs=1e-6)
        assert estimated.translation_x == pytest.approx(12.0, abs=1e-6)
        assert estimated.translation_y == pytest.approx(-7.0, abs=1e-6)
        assert alignment_residual_meters(estimated, source, destination) < 1e-6

    def test_noisy_correspondences_small_residual(self):
        truth = SimilarityTransform(1.0, 0.1, 5.0, 5.0, "src", "dst")
        source = [(float(i), float(j)) for i in range(5) for j in range(5)]
        destination = [
            (x + 0.05 * ((i % 3) - 1), y - 0.05 * ((i % 2)))
            for i, (x, y) in enumerate(truth.apply_xy(sx, sy) for sx, sy in source)
        ]
        estimated = estimate_similarity(source, destination)
        assert alignment_residual_meters(estimated, source, destination) < 0.2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            estimate_similarity([(0.0, 0.0)], [(0.0, 0.0), (1.0, 1.0)])

    def test_too_few_correspondences_rejected(self):
        with pytest.raises(ValueError):
            estimate_similarity([(0.0, 0.0)], [(1.0, 1.0)])

    def test_degenerate_correspondences_rejected(self):
        with pytest.raises(ValueError):
            estimate_similarity([(1.0, 1.0), (1.0, 1.0)], [(2.0, 2.0), (3.0, 3.0)])

    def test_residual_empty_rejected(self):
        transform = SimilarityTransform.identity()
        with pytest.raises(ValueError):
            alignment_residual_meters(transform, [], [])
