"""Unit tests for routing graphs and graph extraction from maps."""

from __future__ import annotations

import pytest

from repro.geometry.point import LatLng
from repro.osm.builder import MapBuilder
from repro.routing.graph import Edge, GraphError, RoutingGraph, graph_from_map


def _line_graph(count: int = 5, spacing_meters: float = 100.0) -> RoutingGraph:
    graph = RoutingGraph()
    start = LatLng(40.0, -80.0)
    previous = None
    for index in range(count):
        location = start.destination(90.0, index * spacing_meters)
        graph.add_vertex(index, location)
        if previous is not None:
            graph.connect(previous, index)
        previous = index
    return graph


class TestRoutingGraph:
    def test_add_vertex_and_edge(self):
        graph = _line_graph(3)
        assert graph.vertex_count == 3
        assert graph.edge_count == 4  # two bidirectional edges

    def test_edge_requires_existing_vertices(self):
        graph = RoutingGraph()
        graph.add_vertex(1, LatLng(40.0, -80.0))
        with pytest.raises(GraphError):
            graph.add_edge(Edge(1, 2, 10.0))

    def test_unknown_vertex_lookup(self):
        graph = _line_graph(2)
        with pytest.raises(GraphError):
            graph.location(99)
        with pytest.raises(GraphError):
            graph.out_edges(99)

    def test_connect_uses_geographic_length(self):
        graph = _line_graph(2, spacing_meters=250.0)
        edge = graph.out_edges(0)[0]
        assert edge.length_meters == pytest.approx(250.0, rel=1e-2)

    def test_one_way_edges(self):
        graph = RoutingGraph()
        graph.add_vertex(1, LatLng(40.0, -80.0))
        graph.add_vertex(2, LatLng(40.001, -80.0))
        graph.add_edge(Edge(1, 2, 100.0), bidirectional=False)
        assert graph.neighbors(1) == [2]
        assert graph.neighbors(2) == []
        assert [e.source for e in graph.in_edges(2)] == [1]

    def test_edge_cost_metrics(self):
        edge = Edge(1, 2, 140.0)
        assert edge.cost("distance") == 140.0
        assert edge.cost("time") == pytest.approx(100.0)  # walking at 1.4 m/s
        with pytest.raises(GraphError):
            edge.cost("bananas")

    def test_edge_cost_with_explicit_travel_time(self):
        edge = Edge(1, 2, 140.0, travel_seconds=60.0)
        assert edge.cost("time") == 60.0

    def test_nearest_vertex(self):
        graph = _line_graph(5)
        probe = graph.location(3).destination(0.0, 10.0)
        assert graph.nearest_vertex(probe) == 3

    def test_nearest_vertex_empty_graph(self):
        with pytest.raises(GraphError):
            RoutingGraph().nearest_vertex(LatLng(0.0, 0.0))

    def test_path_length(self):
        graph = _line_graph(4, spacing_meters=100.0)
        assert graph.path_length_meters([0, 1, 2, 3]) == pytest.approx(300.0, rel=1e-2)

    def test_path_locations(self):
        graph = _line_graph(3)
        locations = graph.path_locations([0, 1, 2])
        assert len(locations) == 3
        assert locations[0] == graph.location(0)


class TestGraphFromMap:
    def test_routable_ways_become_edges(self):
        builder = MapBuilder(name="m")
        a = builder.add_node(LatLng(40.0, -80.0))
        b = builder.add_node(LatLng(40.001, -80.0))
        c = builder.add_node(LatLng(40.002, -80.0))
        builder.add_way([a, b, c], {"highway": "residential"})
        graph = graph_from_map(builder.build())
        assert graph.vertex_count == 3
        assert graph.edge_count == 4

    def test_non_routable_ways_ignored(self):
        builder = MapBuilder(name="m")
        a = builder.add_node(LatLng(40.0, -80.0))
        b = builder.add_node(LatLng(40.001, -80.0))
        builder.add_way([a, b], {"building": "yes"})
        graph = graph_from_map(builder.build())
        assert graph.vertex_count == 0

    def test_indoor_paths_are_routable(self):
        builder = MapBuilder(name="m")
        a = builder.add_node(LatLng(40.0, -80.0))
        b = builder.add_node(LatLng(40.0001, -80.0))
        builder.add_way([a, b], {"indoor_path": "yes"})
        graph = graph_from_map(builder.build())
        assert graph.edge_count == 2

    def test_oneway_tag_respected(self):
        builder = MapBuilder(name="m")
        a = builder.add_node(LatLng(40.0, -80.0))
        b = builder.add_node(LatLng(40.001, -80.0))
        builder.add_way([a, b], {"highway": "residential", "oneway": "yes"})
        graph = graph_from_map(builder.build())
        assert graph.neighbors(a.node_id) == [b.node_id]
        assert graph.neighbors(b.node_id) == []

    def test_shared_nodes_join_ways(self, city):
        graph = graph_from_map(city.map_data)
        # Every intersection node should have degree >= 2 (street + avenue).
        centre_node = city.intersections[2][2]
        assert len(graph.neighbors(centre_node.node_id)) >= 3
