"""Unit tests for the synthetic world generators."""

from __future__ import annotations

import random

import pytest

from repro.osm.validation import has_errors, validate_map
from repro.routing.graph import graph_from_map
from repro.routing.shortest_path import dijkstra
from repro.worldgen.campus import generate_campus
from repro.worldgen.indoor import generate_store
from repro.worldgen.outdoor import generate_city
from repro.worldgen.products import category_names, generate_catalog
from repro.worldgen.scenario import build_scenario


class TestProducts:
    def test_catalog_size_and_determinism(self):
        first = generate_catalog(50, seed=1)
        second = generate_catalog(50, seed=1)
        assert len(first) == 50
        assert first == second

    def test_different_seeds_differ(self):
        assert generate_catalog(30, seed=1) != generate_catalog(30, seed=2)

    def test_seaweed_always_present(self):
        catalog = generate_catalog(5, seed=3)
        assert any("seaweed" in product.name for product in catalog)

    def test_unique_skus(self):
        catalog = generate_catalog(100, seed=0)
        assert len({product.sku for product in catalog}) == 100

    def test_categories_are_known(self):
        catalog = generate_catalog(40, seed=0)
        known = set(category_names())
        assert all(product.category in known for product in catalog)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_catalog(0)


class TestCityGeneration:
    def test_city_is_structurally_valid(self, city):
        issues = validate_map(city.map_data, check_coverage=False)
        assert not has_errors(issues)

    def test_grid_dimensions(self):
        city = generate_city(rows=4, cols=6, seed=0)
        assert len(city.intersections) == 4
        assert len(city.intersections[0]) == 6
        assert len(city.street_names) == 4
        assert len(city.avenue_names) == 6

    def test_street_graph_is_connected(self, city):
        graph = graph_from_map(city.map_data)
        corners = [
            city.intersections[0][0].node_id,
            city.intersections[-1][-1].node_id,
        ]
        route = dijkstra(graph, corners[0], corners[1])
        assert route.cost > 0

    def test_buildings_have_addresses(self, city):
        assert len(city.building_addresses) > 0
        for address, location in city.building_addresses.items():
            assert address.split()[0].isdigit()
            assert city.bounds.contains(location)

    def test_pois_exist(self, city):
        assert len(city.poi_locations) > 0

    def test_coverage_contains_all_nodes(self, city):
        coverage = city.map_data.coverage
        assert all(coverage.contains(node.location) for node in city.map_data.nodes())

    def test_determinism(self):
        a = generate_city(rows=3, cols=3, seed=7)
        b = generate_city(rows=3, cols=3, seed=7)
        assert a.map_data.node_count == b.map_data.node_count
        assert a.building_addresses.keys() == b.building_addresses.keys()

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            generate_city(rows=1, cols=5)

    def test_random_street_point_is_on_grid(self, city):
        rng = random.Random(0)
        point = city.random_street_point(rng)
        assert city.bounds.contains(point)

    def test_address_near(self, city):
        some_address, location = next(iter(city.building_addresses.items()))
        assert city.address_near(location) == some_address


class TestStoreGeneration:
    def test_store_is_structurally_valid(self, store):
        issues = validate_map(store.map_data, check_coverage=False)
        assert not has_errors(issues)

    def test_local_frame_round_trip(self, store):
        from repro.geometry.point import LocalPoint

        point = LocalPoint(12.0, 9.0, store.projection.frame)
        geo = store.local_to_geographic(point)
        back = store.geographic_to_local(geo)
        assert abs(back.x - point.x) < 0.05
        assert abs(back.y - point.y) < 0.05

    def test_products_are_placed_on_shelves(self, store):
        assert store.products
        assert store.product_locations
        assert any("seaweed" in name for name in store.product_locations)
        coverage = store.map_data.coverage
        for location in store.product_locations.values():
            assert coverage.bounding_box.expanded(10.0).contains(location)

    def test_entrance_within_coverage(self, store):
        assert store.map_data.coverage.bounding_box.expanded(5.0).contains(store.entrance)

    def test_indoor_graph_connects_entrance_to_shelves(self, store):
        graph = graph_from_map(store.map_data)
        assert graph.vertex_count > 0
        entrance_vertex = graph.nearest_vertex(store.entrance)
        seaweed = next(loc for name, loc in store.product_locations.items() if "seaweed" in name)
        shelf_vertex = graph.nearest_vertex(seaweed)
        route = dijkstra(graph, entrance_vertex, shelf_vertex)
        assert route.cost > 0

    def test_survey_databases_populated(self, store):
        assert len(store.beacon_db) > 0
        assert len(store.image_db) > 0
        assert len(store.fiducials) == 2
        assert len(store.beacons) > 0

    def test_sense_cues_contains_all_modalities(self, store, rng):
        true_position = store.random_interior_point(rng)
        cues = store.sense_cues(true_position, rng, include_fiducial=True)
        assert cues.gnss is not None
        assert cues.beacons is not None and cues.beacons.readings
        assert cues.image is not None
        assert cues.fiducials

    def test_private_back_room_tagged(self, store):
        private_nodes = store.map_data.find_nodes_by_tag("privacy", "private")
        assert private_nodes

    def test_rotation_recorded_in_projection(self):
        from repro.geometry.point import LatLng

        store = generate_store("rot-store", LatLng(40.44, -79.95), rotation_degrees=25.0, seed=1)
        assert store.projection.rotation_degrees == 25.0

    def test_invalid_configuration(self):
        from repro.geometry.point import LatLng

        with pytest.raises(ValueError):
            generate_store("bad", LatLng(0.0, 0.0), aisle_count=0)

    def test_determinism(self):
        from repro.geometry.point import LatLng

        a = generate_store("dup", LatLng(40.44, -79.95), seed=5)
        b = generate_store("dup", LatLng(40.44, -79.95), seed=5)
        assert a.map_data.node_count == b.map_data.node_count
        assert list(a.beacons) == list(b.beacons)


class TestCampusGeneration:
    def test_campus_structure(self):
        campus = generate_campus(building_count=3, rooms_per_building=4, seed=2)
        assert len(campus.building_locations) == 3
        assert len(campus.room_locations) == 12
        assert campus.private_room_count == 12
        issues = validate_map(campus.map_data, check_coverage=False)
        assert not has_errors(issues)

    def test_recommended_policy_restricts_services(self):
        from repro.mapserver.auth import Credential
        from repro.mapserver.policy import ServiceName

        campus = generate_campus(seed=3)
        policy = campus.recommended_policy()
        insider = Credential(email=f"a@{campus.email_domain}")
        outsider = Credential(email="a@elsewhere.com")
        assert policy.allows(ServiceName.SEARCH, insider)
        assert not policy.allows(ServiceName.SEARCH, outsider)
        assert policy.allows(ServiceName.TILES, outsider)
        assert policy.allows(
            ServiceName.LOCALIZATION, Credential(application_id=campus.navigation_app_id)
        )
        assert not policy.allows(ServiceName.LOCALIZATION, Credential(application_id="other"))

    def test_invalid_building_count(self):
        with pytest.raises(ValueError):
            generate_campus(building_count=0)


class TestScenario:
    def test_scenario_wiring(self, scenario):
        assert scenario.federation.server_count == 2 + 1 + 1  # city + 2 stores + campus
        assert scenario.federation.world_provider is not None
        assert scenario.centralized.world_map.node_count > 0
        assert scenario.campus is not None
        assert scenario.campus_server is not None

    def test_store_servers_have_localization_data(self, scenario):
        for index, store in enumerate(scenario.stores):
            server = scenario.store_server(index)
            assert server.advertised_localization_technologies()

    def test_centralized_does_not_ingest_indoor_by_default(self, scenario):
        store = scenario.stores[0]
        product_name = next(iter(store.product_locations))
        central_hits = scenario.centralized.search(product_name.split()[0], near=store.entrance, radius_meters=500.0)
        assert central_hits == []

    def test_centralized_ingest_indoor_ablation(self):
        ablation = build_scenario(store_count=1, centralized_ingests_indoor=True, seed=3)
        store = ablation.stores[0]
        hits = ablation.centralized.search("seaweed", near=store.entrance, radius_meters=500.0)
        assert hits

    def test_every_store_registered_in_dns(self, scenario):
        for store in scenario.stores:
            assert scenario.federation.registration_for(store.name) is not None
