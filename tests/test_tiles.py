"""Unit tests for tile math, rendering, alignment and stitching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng, LocalPoint
from repro.geometry.projection import LocalProjection
from repro.tiles.correspondence import CorrespondenceSet
from repro.tiles.renderer import FeatureClass, Tile, TileRenderer
from repro.tiles.stitcher import TileStitcher, composite_coverage
from repro.tiles.tile_math import (
    TILE_SIZE_PIXELS,
    TileCoordinate,
    meters_per_pixel,
    pixel_in_tile,
    tile_bounds,
    tile_for_point,
    tiles_for_box,
)

CENTER = LatLng(40.44, -79.95)


class TestTileMath:
    def test_zoom_zero_single_tile(self):
        tile = tile_for_point(CENTER, 0)
        assert tile == TileCoordinate(0, 0, 0)

    def test_tile_bounds_contain_point(self):
        for zoom in (5, 10, 15, 18):
            tile = tile_for_point(CENTER, zoom)
            assert tile_bounds(tile).contains(CENTER)

    def test_invalid_tile_rejected(self):
        with pytest.raises(ValueError):
            TileCoordinate(3, 8, 0)  # x outside 2^3 grid
        with pytest.raises(ValueError):
            TileCoordinate(-1, 0, 0)

    def test_parent_child_relationship(self):
        tile = tile_for_point(CENTER, 12)
        parent = tile.parent()
        assert parent.zoom == 11
        assert tile in parent.children()
        assert tile_bounds(parent).contains_box(tile_bounds(tile))

    def test_zoom_zero_has_no_parent(self):
        with pytest.raises(ValueError):
            TileCoordinate(0, 0, 0).parent()

    def test_key_format(self):
        assert TileCoordinate(3, 1, 2).key() == "3/1/2"

    def test_tiles_for_box_cover_box(self):
        box = BoundingBox.around(CENTER, 400.0)
        tiles = tiles_for_box(box, 16)
        assert tiles
        for point in box.grid_points(3, 3):
            assert any(tile_bounds(t).contains(point) for t in tiles)

    def test_more_tiles_at_higher_zoom(self):
        box = BoundingBox.around(CENTER, 400.0)
        assert len(tiles_for_box(box, 17)) >= len(tiles_for_box(box, 15))

    def test_pixel_in_tile_within_range(self):
        tile = tile_for_point(CENTER, 15)
        column, row = pixel_in_tile(CENTER, tile)
        assert 0 <= column < TILE_SIZE_PIXELS
        assert 0 <= row < TILE_SIZE_PIXELS

    def test_meters_per_pixel_decreases_with_zoom(self):
        coarse = meters_per_pixel(tile_for_point(CENTER, 10))
        fine = meters_per_pixel(tile_for_point(CENTER, 16))
        assert fine < coarse

    def test_poles_are_clamped(self):
        tile = tile_for_point(LatLng(89.9, 0.0), 5)
        assert tile.y == 0


class TestRenderer:
    def test_render_paths_and_pois(self, city):
        renderer = TileRenderer(city.map_data, line_thickness=1)
        tile = renderer.render(tile_for_point(city.bounds.center, 16))
        assert tile.raster.shape == (TILE_SIZE_PIXELS, TILE_SIZE_PIXELS)
        assert tile.coverage_fraction > 0.0
        assert tile.feature_pixel_count(FeatureClass.PATH) > 0

    def test_cache_avoids_rerendering(self, city):
        renderer = TileRenderer(city.map_data)
        coordinate = tile_for_point(city.bounds.center, 16)
        renderer.render(coordinate)
        renders_before = renderer.render_count
        renderer.render(coordinate)
        assert renderer.render_count == renders_before
        assert renderer.cache_size >= 1

    def test_empty_region_tile_is_blank(self, city):
        renderer = TileRenderer(city.map_data)
        far_away = tile_for_point(LatLng(10.0, 10.0), 16)
        tile = renderer.render(far_away)
        assert tile.coverage_fraction == 0.0

    def test_prerender_batch(self, city):
        renderer = TileRenderer(city.map_data)
        coordinates = tiles_for_box(BoundingBox.around(city.bounds.center, 200.0), 17)
        tiles = renderer.prerender(coordinates)
        assert len(tiles) == len(coordinates)

    def test_store_tile_contains_indoor_features(self, store):
        renderer = TileRenderer(store.map_data, line_thickness=2)
        tile = renderer.render(tile_for_point(store.entrance, 19))
        assert tile.feature_pixel_count(FeatureClass.PATH) > 0

    def test_invalid_raster_shape_rejected(self):
        with pytest.raises(ValueError):
            Tile(TileCoordinate(10, 0, 0), np.zeros((10, 10), dtype=np.uint8), "m")


class TestStitcher:
    def _tile(self, coordinate: TileCoordinate, value: int, where: str, source: str) -> Tile:
        raster = np.zeros((TILE_SIZE_PIXELS, TILE_SIZE_PIXELS), dtype=np.uint8)
        if where == "left":
            raster[:, : TILE_SIZE_PIXELS // 2] = value
        elif where == "right":
            raster[:, TILE_SIZE_PIXELS // 2 :] = value
        elif where == "all":
            raster[:, :] = value
        return Tile(coordinate, raster, source)

    def test_stitch_combines_disjoint_content(self):
        coordinate = TileCoordinate(15, 100, 200)
        left = self._tile(coordinate, int(FeatureClass.PATH), "left", "city")
        right = self._tile(coordinate, int(FeatureClass.AREA), "right", "store")
        composite = TileStitcher().stitch([left, right])
        assert composite.coverage_fraction == pytest.approx(1.0)
        assert composite.contribution_fraction("city") == pytest.approx(0.5)
        assert composite.contribution_fraction("store") == pytest.approx(0.5)

    def test_later_layer_wins_overlap(self):
        coordinate = TileCoordinate(15, 100, 200)
        base = self._tile(coordinate, int(FeatureClass.PATH), "all", "city")
        overlay = self._tile(coordinate, int(FeatureClass.AREA), "left", "store")
        composite = TileStitcher(prefer_later_layers=True).stitch([base, overlay])
        assert composite.raster[0, 0] == int(FeatureClass.AREA)
        assert composite.raster[0, TILE_SIZE_PIXELS - 1] == int(FeatureClass.PATH)

    def test_mismatched_coordinates_rejected(self):
        a = self._tile(TileCoordinate(15, 1, 1), 1, "all", "x")
        b = self._tile(TileCoordinate(15, 1, 2), 1, "all", "y")
        with pytest.raises(ValueError):
            TileStitcher().stitch([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            TileStitcher().stitch([])

    def test_stitch_grid_and_coverage(self):
        c1 = TileCoordinate(15, 10, 10)
        c2 = TileCoordinate(15, 10, 11)
        grid = {
            c1: [self._tile(c1, int(FeatureClass.PATH), "all", "city")],
            c2: [self._tile(c2, int(FeatureClass.PATH), "left", "city")],
        }
        composites = TileStitcher().stitch_grid(grid)
        assert set(composites) == {c1, c2}
        assert 0.5 < composite_coverage(composites) <= 1.0

    def test_composite_coverage_empty(self):
        assert composite_coverage({}) == 0.0


class TestCorrespondences:
    def test_alignment_recovers_rotated_frame(self):
        # Ground truth: a store frame rotated 12 degrees and anchored nearby.
        truth = LocalProjection(CENTER, rotation_degrees=12.0, frame="store")
        correspondences = CorrespondenceSet(local_frame="store")
        for x, y in [(0.0, 0.0), (30.0, 0.0), (0.0, 20.0), (30.0, 20.0), (15.0, 10.0)]:
            local = LocalPoint(x, y, "store")
            correspondences.add(local, truth.to_geographic(local))
        alignment = correspondences.estimate_alignment()
        assert alignment.rms_error_meters < 0.1

        probe = LocalPoint(22.0, 7.0, "store")
        predicted = alignment.local_to_geographic(probe)
        assert predicted.distance_to(truth.to_geographic(probe)) < 0.2

    def test_alignment_round_trip(self):
        truth = LocalProjection(CENTER, rotation_degrees=-8.0, frame="store")
        correspondences = CorrespondenceSet(local_frame="store")
        for x, y in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]:
            local = LocalPoint(x, y, "store")
            correspondences.add(local, truth.to_geographic(local))
        alignment = correspondences.estimate_alignment()
        probe = LocalPoint(5.0, 5.0, "store")
        back = alignment.geographic_to_local(alignment.local_to_geographic(probe))
        assert back.distance_to(LocalPoint(back.x, back.y, back.frame)) == 0.0
        assert abs(back.x - probe.x) < 0.2
        assert abs(back.y - probe.y) < 0.2

    def test_more_correspondences_reduce_noisy_error(self):
        import random

        truth = LocalProjection(CENTER, rotation_degrees=15.0, frame="store")
        rng = random.Random(0)

        def alignment_error(count: int) -> float:
            correspondences = CorrespondenceSet(local_frame="store")
            for index in range(count):
                x = rng.uniform(0.0, 40.0)
                y = rng.uniform(0.0, 30.0)
                local = LocalPoint(x, y, "store")
                noisy_geo = truth.to_geographic(local).destination(rng.uniform(0, 360), abs(rng.gauss(0, 1.0)))
                correspondences.add(local, noisy_geo)
            alignment = correspondences.estimate_alignment()
            probes = [LocalPoint(20.0, 15.0, "store"), LocalPoint(5.0, 25.0, "store")]
            return sum(
                alignment.local_to_geographic(p).distance_to(truth.to_geographic(p)) for p in probes
            ) / len(probes)

        few = sum(alignment_error(3) for _ in range(5)) / 5
        many = sum(alignment_error(20) for _ in range(5)) / 5
        assert many <= few + 0.5

    def test_frame_mismatch_rejected(self):
        correspondences = CorrespondenceSet(local_frame="store")
        with pytest.raises(ValueError):
            correspondences.add(LocalPoint(0.0, 0.0, "other"), CENTER)

    def test_too_few_correspondences_rejected(self):
        correspondences = CorrespondenceSet(local_frame="store")
        correspondences.add(LocalPoint(0.0, 0.0, "store"), CENTER)
        with pytest.raises(ValueError):
            correspondences.estimate_alignment()
