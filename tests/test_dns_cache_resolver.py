"""Unit tests for the DNS cache and the recursive resolver."""

from __future__ import annotations

import pytest

from repro.dns.cache import DnsCache
from repro.dns.records import RecordType, ResourceRecord
from repro.dns.resolver import RecursiveResolver, StubResolver
from repro.dns.server import NameServer
from repro.dns.zone import Zone
from repro.simulation.clock import SimulatedClock
from repro.simulation.network import SimulatedNetwork


class TestDnsCache:
    @pytest.fixture()
    def clock(self) -> SimulatedClock:
        return SimulatedClock()

    @pytest.fixture()
    def cache(self, clock: SimulatedClock) -> DnsCache:
        return DnsCache(clock=clock)

    def test_miss_then_hit(self, cache: DnsCache):
        assert cache.get("a.example", RecordType.A) is None
        cache.put("a.example", RecordType.A, [ResourceRecord("a.example", RecordType.A, "1.1.1.1", 60)])
        hit = cache.get("a.example", RecordType.A)
        assert hit is not None and hit[0].data == "1.1.1.1"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_expiry(self, cache: DnsCache, clock: SimulatedClock):
        cache.put("a.example", RecordType.A, [ResourceRecord("a.example", RecordType.A, "1.1.1.1", 30)])
        clock.advance(31.0)
        assert cache.get("a.example", RecordType.A) is None

    def test_minimum_ttl_used(self, cache: DnsCache, clock: SimulatedClock):
        cache.put(
            "a.example",
            RecordType.A,
            [
                ResourceRecord("a.example", RecordType.A, "1.1.1.1", 10),
                ResourceRecord("a.example", RecordType.A, "1.1.1.2", 1000),
            ],
        )
        clock.advance(11.0)
        assert cache.get("a.example", RecordType.A) is None

    def test_negative_caching(self, cache: DnsCache, clock: SimulatedClock):
        cache.put_negative("missing.example", RecordType.SRV)
        assert cache.get("missing.example", RecordType.SRV) == []
        assert cache.stats.negative_hits == 1
        clock.advance(cache.negative_ttl_seconds + 1.0)
        assert cache.get("missing.example", RecordType.SRV) is None

    def test_empty_answer_becomes_negative_entry(self, cache: DnsCache):
        cache.put("a.example", RecordType.A, [])
        assert cache.get("a.example", RecordType.A) == []

    def test_eviction_when_full(self, clock: SimulatedClock):
        cache = DnsCache(clock=clock, max_entries=10)
        for index in range(20):
            cache.put(
                f"n{index}.example",
                RecordType.A,
                [ResourceRecord(f"n{index}.example", RecordType.A, "1.1.1.1", 300)],
            )
        assert cache.size <= 11
        assert cache.stats.evictions > 0

    def test_flush(self, cache: DnsCache):
        cache.put("a.example", RecordType.A, [ResourceRecord("a.example", RecordType.A, "1.1.1.1", 60)])
        cache.flush()
        assert cache.size == 0

    def test_remaining_ttl_tracks_the_clock(self, cache: DnsCache, clock: SimulatedClock):
        cache.put("a.example", RecordType.A, [ResourceRecord("a.example", RecordType.A, "1.1.1.1", 60)])
        assert cache.remaining_ttl("a.example", RecordType.A) == pytest.approx(60.0)
        clock.advance(20.0)
        assert cache.remaining_ttl("a.example", RecordType.A) == pytest.approx(40.0)
        clock.advance(41.0)
        assert cache.remaining_ttl("a.example", RecordType.A) is None

    def test_remaining_ttl_covers_negative_entries_and_keeps_stats(self, cache: DnsCache):
        assert cache.remaining_ttl("ghost.example", RecordType.SRV) is None
        cache.put_negative("ghost.example", RecordType.SRV)
        assert cache.remaining_ttl("ghost.example", RecordType.SRV) == pytest.approx(
            cache.negative_ttl_seconds
        )
        # remaining_ttl is a pure peek: no hits/misses are recorded.
        assert cache.stats.hits == 0 and cache.stats.misses == 0 and cache.stats.negative_hits == 0

    def test_filling_past_max_entries_counts_each_eviction(self, clock: SimulatedClock):
        cache = DnsCache(clock=clock, max_entries=5)
        for index in range(12):
            cache.put(
                f"n{index}.example",
                RecordType.A,
                [ResourceRecord(f"n{index}.example", RecordType.A, "1.1.1.1", 300)],
            )
            assert len(cache._positive) <= 5
        # Every insertion past capacity displaced exactly one fresh entry.
        assert cache.stats.evictions == 12 - 5
        assert cache.stats.insertions == 12
        # The survivors are all still resolvable from the cache.
        surviving = sum(
            1 for index in range(12) if cache.get(f"n{index}.example", RecordType.A)
        )
        assert surviving == 5

    def test_expired_entries_evicted_before_live_ones(self, clock: SimulatedClock):
        cache = DnsCache(clock=clock, max_entries=4)
        for index in range(3):
            cache.put(
                f"short{index}.example",
                RecordType.A,
                [ResourceRecord(f"short{index}.example", RecordType.A, "1.1.1.1", 10)],
            )
        cache.put(
            "long.example",
            RecordType.A,
            [ResourceRecord("long.example", RecordType.A, "2.2.2.2", 10_000)],
        )
        clock.advance(11.0)  # the three short entries are now expired
        cache.put(
            "new.example",
            RecordType.A,
            [ResourceRecord("new.example", RecordType.A, "3.3.3.3", 300)],
        )
        assert cache.stats.evictions == 3  # the expired entries, not the live one
        assert cache.get("long.example", RecordType.A) is not None
        assert cache.get("new.example", RecordType.A) is not None

    def test_hit_rate(self, cache: DnsCache):
        cache.get("a.example", RecordType.A)
        cache.put("a.example", RecordType.A, [ResourceRecord("a.example", RecordType.A, "1.1.1.1", 60)])
        cache.get("a.example", RecordType.A)
        assert cache.stats.hit_rate == pytest.approx(0.5)


def _build_namespace(network: SimulatedNetwork) -> tuple[RecursiveResolver, NameServer]:
    """root -> example (delegation) -> maps.example hosted on a child server."""
    root_zone = Zone(origin="")
    root_zone.add("example", RecordType.NS, "ns.example")
    root = NameServer(server_id="root", zones={"": root_zone})

    example_zone = Zone(origin="example")
    example_zone.add("maps.example", RecordType.NS, "ns.maps.example")
    example_zone.add("www.example", RecordType.A, "10.0.0.80")
    example_zone.add("alias.example", RecordType.CNAME, "www.example")
    example_server = NameServer(server_id="ns.example", zones={"example": example_zone})

    maps_zone = Zone(origin="maps.example")
    maps_zone.add("city.maps.example", RecordType.A, "10.0.1.1")
    maps_zone.add("city.maps.example", RecordType.SRV, "0 0 443 city-server")
    maps_server = NameServer(server_id="ns.maps.example", zones={"maps.example": maps_zone})

    resolver = RecursiveResolver(
        root=root,
        servers={
            "root": root,
            "ns.example": example_server,
            "ns.maps.example": maps_server,
        },
        network=network,
    )
    return resolver, maps_server


class TestRecursiveResolver:
    @pytest.fixture()
    def network(self) -> SimulatedNetwork:
        return SimulatedNetwork()

    @pytest.fixture()
    def resolver(self, network: SimulatedNetwork) -> RecursiveResolver:
        resolver, _ = _build_namespace(network)
        return resolver

    def test_resolution_through_two_delegations(self, resolver: RecursiveResolver):
        response = resolver.resolve("city.maps.example", RecordType.A)
        assert response.answers[0].data == "10.0.1.1"
        # root -> example -> maps.example = 3 authoritative exchanges
        assert resolver.stats.authoritative_exchanges == 3

    def test_answer_is_cached(self, resolver: RecursiveResolver, network: SimulatedNetwork):
        resolver.resolve("city.maps.example", RecordType.A)
        exchanges_before = resolver.stats.authoritative_exchanges
        response = resolver.resolve("city.maps.example", RecordType.A)
        assert response.from_cache
        assert resolver.stats.authoritative_exchanges == exchanges_before

    def test_cache_expires_with_ttl(self, resolver: RecursiveResolver, network: SimulatedNetwork):
        resolver.resolve("city.maps.example", RecordType.A)
        network.clock.advance(10_000.0)
        response = resolver.resolve("city.maps.example", RecordType.A)
        assert not response.from_cache

    def test_nxdomain_and_negative_cache(self, resolver: RecursiveResolver):
        first = resolver.resolve("ghost.maps.example", RecordType.A)
        assert first.is_nxdomain
        second = resolver.resolve("ghost.maps.example", RecordType.A)
        assert second.from_cache

    def test_expired_nxdomain_re_resolves(
        self, resolver: RecursiveResolver, network: SimulatedNetwork
    ):
        """After the negative TTL lapses the resolver must go upstream again."""
        resolver.resolve("ghost.maps.example", RecordType.A)
        exchanges_after_first = resolver.stats.authoritative_exchanges
        network.clock.advance(resolver.cache.negative_ttl_seconds + 1.0)
        response = resolver.resolve("ghost.maps.example", RecordType.A)
        assert not response.from_cache
        assert response.is_nxdomain
        assert resolver.stats.authoritative_exchanges > exchanges_after_first

    def test_name_registered_after_nxdomain_becomes_visible(
        self, network: SimulatedNetwork
    ):
        """A cell with no server today can gain one once the NXDOMAIN ages out."""
        resolver, maps_server = _build_namespace(network)
        assert resolver.resolve("late.maps.example", RecordType.A).is_nxdomain
        maps_server.zones["maps.example"].add("late.maps.example", RecordType.A, "10.0.9.9")
        # Still negative while the NXDOMAIN entry lives...
        assert resolver.resolve("late.maps.example", RecordType.A).is_nxdomain
        network.clock.advance(resolver.cache.negative_ttl_seconds + 1.0)
        # ...and resolvable after it expires.
        refreshed = resolver.resolve("late.maps.example", RecordType.A)
        assert refreshed.answers and refreshed.answers[0].data == "10.0.9.9"

    def test_resolve_data_returns_strings(self, resolver: RecursiveResolver):
        data = resolver.resolve_data("city.maps.example", RecordType.SRV)
        assert data == ["0 0 443 city-server"]
        assert resolver.resolve_data("ghost.maps.example", RecordType.SRV) == []

    def test_cname_chase_across_names(self, resolver: RecursiveResolver):
        data = resolver.resolve_data("alias.example", RecordType.A)
        assert "10.0.0.80" in data

    def test_missing_glue_is_servfail(self, network: SimulatedNetwork):
        root_zone = Zone(origin="")
        root_zone.add("example", RecordType.NS, "ns.unknown")
        root = NameServer(server_id="root", zones={"": root_zone})
        resolver = RecursiveResolver(root=root, servers={"root": root}, network=network)
        response = resolver.resolve("a.example", RecordType.A)
        assert response.code.value == "SERVFAIL"

    def test_stub_resolver_charges_client_hop(self, network: SimulatedNetwork, resolver: RecursiveResolver):
        stub = StubResolver(recursive=resolver, network=network)
        before = network.stats.messages_by_kind.get("dns.client_resolver", 0)
        stub.resolve("city.maps.example", RecordType.A)
        assert network.stats.messages_by_kind["dns.client_resolver"] == before + 1

    def test_network_latency_accumulates(self, network: SimulatedNetwork, resolver: RecursiveResolver):
        resolver.resolve("city.maps.example", RecordType.A)
        assert network.stats.total_latency_ms > 0
        assert network.clock.now() > 0
