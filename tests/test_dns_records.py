"""Unit tests for DNS records, names and messages."""

from __future__ import annotations

import pytest

from repro.dns.message import DnsResponse, Question, ResponseCode
from repro.dns.records import (
    RecordType,
    ResourceRecord,
    SrvData,
    is_subdomain,
    name_labels,
    normalize_name,
    parent_name,
    validate_name,
)


class TestNames:
    def test_normalize_lowercases_and_strips(self):
        assert normalize_name("  MAPS.Example.  ") == "maps.example"

    def test_normalize_empty(self):
        assert normalize_name("") == ""
        assert normalize_name(".") == ""

    def test_validate_accepts_valid_names(self):
        validate_name("a.b.c")
        validate_name("3.2.1.loc.openflame.example")
        validate_name("store-0.maps.example")

    def test_validate_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            validate_name("under_score.example")
        with pytest.raises(ValueError):
            validate_name("-leading.example")
        with pytest.raises(ValueError):
            validate_name("")

    def test_validate_rejects_too_long(self):
        with pytest.raises(ValueError):
            validate_name(".".join(["a" * 60] * 5))

    def test_labels(self):
        assert name_labels("a.b.c") == ["a", "b", "c"]
        assert name_labels("") == []

    def test_is_subdomain(self):
        assert is_subdomain("x.maps.example", "maps.example")
        assert is_subdomain("maps.example", "maps.example")
        assert not is_subdomain("maps.example", "x.maps.example")
        assert not is_subdomain("ymaps.example", "maps.example")
        assert is_subdomain("anything.at.all", "")

    def test_parent_name(self):
        assert parent_name("a.b.c") == "b.c"
        assert parent_name("c") == ""


class TestResourceRecord:
    def test_name_normalised(self):
        record = ResourceRecord("A.B.C", RecordType.A, "1.2.3.4")
        assert record.name == "a.b.c"

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.b", RecordType.A, "1.2.3.4", ttl_seconds=-1)

    def test_matches(self):
        record = ResourceRecord("a.b", RecordType.TXT, "hello")
        assert record.matches("A.B", RecordType.TXT)
        assert not record.matches("a.b", RecordType.A)


class TestSrvData:
    def test_encode_decode_round_trip(self):
        original = SrvData(target="store-0.maps.example", port=8443, priority=1, weight=5)
        decoded = SrvData.decode(original.encode())
        assert decoded == original

    def test_decode_target_with_spaces(self):
        decoded = SrvData.decode("0 0 443 State University")
        assert decoded.target == "State University"

    def test_decode_malformed(self):
        with pytest.raises(ValueError):
            SrvData.decode("1 2 3")


class TestMessages:
    def test_question_normalises_name(self):
        question = Question("A.B.C", RecordType.NS)
        assert question.name == "a.b.c"

    def test_referral_detection(self):
        question = Question("x.maps.example", RecordType.SRV)
        referral = DnsResponse(
            question,
            authority=[ResourceRecord("maps.example", RecordType.NS, "ns1.example")],
        )
        assert referral.is_referral
        answered = DnsResponse(
            question, answers=[ResourceRecord("x.maps.example", RecordType.SRV, "0 0 443 s")]
        )
        assert not answered.is_referral

    def test_nxdomain_flag(self):
        question = Question("gone.example", RecordType.A)
        response = DnsResponse(question, code=ResponseCode.NXDOMAIN)
        assert response.is_nxdomain

    def test_answer_data(self):
        question = Question("a.example", RecordType.TXT)
        response = DnsResponse(
            question,
            answers=[
                ResourceRecord("a.example", RecordType.TXT, "one"),
                ResourceRecord("a.example", RecordType.TXT, "two"),
            ],
        )
        assert response.answer_data() == ["one", "two"]
