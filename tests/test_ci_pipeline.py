"""Structural validation of the CI pipeline and its local counterparts.

``actionlint`` is not part of the offline toolchain, so tier-1 carries a
lightweight stand-in: the workflow must parse as YAML, trigger on pushes and
pull requests, cover Python 3.10–3.12 with pip caching, call the staged
``scripts/check.sh`` entry points, and gate/upload both BENCH artifacts.
The same file checks that the stages the workflow calls actually exist in
``check.sh`` and that the ruff configuration the lint stage enforces is
present in ``pyproject.toml``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = Path(__file__).resolve().parents[1]
WORKFLOW = REPO_ROOT / ".github" / "workflows" / "ci.yml"
CHECK_SH = REPO_ROOT / "scripts" / "check.sh"


@pytest.fixture(scope="module")
def workflow() -> dict:
    assert WORKFLOW.is_file(), "CI workflow missing"
    return yaml.safe_load(WORKFLOW.read_text())


def triggers(workflow: dict) -> dict:
    # PyYAML parses the bare `on:` key as boolean True.
    return workflow.get("on") or workflow[True]


class TestWorkflow:
    def test_triggers_on_push_and_pull_request(self, workflow):
        on = triggers(workflow)
        assert "push" in on
        assert "pull_request" in on

    def test_three_parallel_jobs_call_the_stages(self, workflow):
        jobs = workflow["jobs"]
        assert {"lint", "tier1", "smoke"} <= set(jobs)

        def job_commands(job):
            return [step.get("run", "") for step in job["steps"]]

        assert any("check.sh --lint" in cmd for cmd in job_commands(jobs["lint"]))
        assert any("check.sh --tier1" in cmd for cmd in job_commands(jobs["tier1"]))
        assert any("check.sh --smoke" in cmd for cmd in job_commands(jobs["smoke"]))
        # The stages parallelize: no job waits on another.
        assert all("needs" not in job for job in jobs.values())

    def test_tier1_matrix_covers_310_through_312(self, workflow):
        matrix = workflow["jobs"]["tier1"]["strategy"]["matrix"]
        assert matrix["python-version"] == ["3.10", "3.11", "3.12"]

    def test_pip_caching_is_on_for_every_job(self, workflow):
        for name, job in workflow["jobs"].items():
            setup = [
                step
                for step in job["steps"]
                if str(step.get("uses", "")).startswith("actions/setup-python")
            ]
            assert setup, f"job {name!r} does not set up python"
            with_block = setup[0]["with"]
            assert with_block.get("cache") == "pip", f"job {name!r} lacks pip caching"
            assert with_block.get("cache-dependency-path") == "requirements-dev.txt"

    def test_smoke_job_uploads_every_bench_artifact(self, workflow):
        steps = workflow["jobs"]["smoke"]["steps"]
        uploads = [s for s in steps if str(s.get("uses", "")).startswith("actions/upload-artifact")]
        assert uploads, "smoke job uploads no artifacts"
        paths = uploads[0]["with"]["path"]
        for artifact in (
            "BENCH_e13.json",
            "BENCH_e14.json",
            "BENCH_e15.json",
            "BENCH_e16.json",
            "BENCH_e17.json",
            "BENCH_e18.json",
            "BENCH_e19.json",
            "BENCH_e20.json",
        ):
            assert artifact in paths, f"smoke job does not upload {artifact}"
        assert any("ci_summary" in s.get("run", "") for s in steps), "no step-summary step"

    def test_workflow_steps_are_well_formed(self, workflow):
        for name, job in workflow["jobs"].items():
            assert "runs-on" in job, f"job {name!r} has no runner"
            for step in job["steps"]:
                assert ("run" in step) != ("uses" in step), (
                    f"job {name!r} has a step with both/neither of run and uses"
                )


class TestCheckShStages:
    def test_stage_flags_exist(self):
        script = CHECK_SH.read_text()
        for flag in ("--tier1", "--smoke", "--lint"):
            assert flag in script
        # Every artifact is byte-for-byte gated.
        for artifact in (
            "BENCH_e13.json",
            "BENCH_e14.json",
            "BENCH_e15.json",
            "BENCH_e16.json",
            "BENCH_e17.json",
            "BENCH_e18.json",
            "BENCH_e19.json",
            "BENCH_e20.json",
        ):
            assert artifact in script, f"check.sh does not gate {artifact}"

    def test_smoke_stage_runs_every_budgeted_bench(self):
        """Each experiment smoke runs under its own wall-clock budget knob."""
        script = CHECK_SH.read_text()
        for bench, budget in (
            ("bench_e13_workload.py", "E13_SMOKE_BUDGET_SECONDS"),
            ("bench_e14_churn.py", "E14_SMOKE_BUDGET_SECONDS"),
            ("bench_e15_control.py", "E15_SMOKE_BUDGET_SECONDS"),
            ("bench_e16_scale.py", "E16_SMOKE_BUDGET_SECONDS"),
            ("bench_e17_faults.py", "E17_SMOKE_BUDGET_SECONDS"),
            ("bench_e18_telemetry.py", "E18_SMOKE_BUDGET_SECONDS"),
            ("bench_e19_autoscale.py", "E19_SMOKE_BUDGET_SECONDS"),
            ("bench_e20_operator.py", "E20_SMOKE_BUDGET_SECONDS"),
        ):
            assert bench in script, f"check.sh does not run {bench}"
            assert budget in script, f"check.sh does not budget via {budget}"

    def test_ci_summary_renders_every_artifact(self):
        summary = (REPO_ROOT / "scripts" / "ci_summary.py").read_text()
        for artifact in (
            "BENCH_e13.json",
            "BENCH_e14.json",
            "BENCH_e15.json",
            "BENCH_e16.json",
            "BENCH_e17.json",
            "BENCH_e18.json",
            "BENCH_e19.json",
            "BENCH_e20.json",
        ):
            assert artifact in summary, f"ci_summary.py ignores {artifact}"
        # The step summary points readers at the docs layer for column
        # definitions and regeneration commands.
        assert "docs/BENCHMARKS.md" in summary

    def test_lint_stage_runs_the_docs_link_checker(self):
        script = CHECK_SH.read_text()
        assert "check_docs_links.py" in script, "lint stage skips the docs link checker"

    def test_requirements_file_exists_for_pip_cache(self):
        requirements = (REPO_ROOT / "requirements-dev.txt").read_text()
        for package in ("pytest", "hypothesis", "numpy", "ruff"):
            assert package in requirements


class TestDocsLinks:
    """The docs link checker the lint stage runs: clean on the real tree,
    and actually capable of flagging a dead relative link."""

    def _checker(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_docs_links", REPO_ROOT / "scripts" / "check_docs_links.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_repo_docs_have_no_dead_links(self):
        checker = self._checker()
        assert checker.dead_links(REPO_ROOT) == []

    def test_checker_flags_a_dead_relative_link(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "See [architecture](docs/ARCHITECTURE.md) and [gone](docs/missing.md).\n"
        )
        (tmp_path / "docs" / "ARCHITECTURE.md").write_text(
            "Back to the [README](../README.md); [web](https://example.com) "
            "and [anchor](#section) are skipped.\n"
        )
        checker = self._checker()
        failures = checker.dead_links(tmp_path)
        assert len(failures) == 1
        assert "docs/missing.md" in failures[0]
    def test_pyproject_configures_ruff(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        assert "[tool.ruff]" in pyproject
        assert "[tool.ruff.lint]" in pyproject

    def test_fallback_lint_is_clean(self):
        """The offline stand-in for ruff must keep passing (compile +
        unused-import audit over the whole tree)."""
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "lint_fallback.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout
