"""Unit tests for map serialisation and validation."""

from __future__ import annotations

from repro.geometry.point import LatLng, LocalPoint
from repro.geometry.projection import LocalProjection
from repro.osm.builder import MapBuilder
from repro.osm.elements import ElementRef, ElementType, Node, Relation, Way
from repro.osm.mapdata import MapData, MapMetadata
from repro.osm.serialization import (
    map_from_document,
    map_from_json,
    map_to_document,
    map_to_json,
)
from repro.osm.validation import Severity, has_errors, validate_map


def _sample_map() -> MapData:
    projection = LocalProjection(LatLng(40.0, -80.0), rotation_degrees=5.0, frame="store")
    builder = MapBuilder(name="sample", operator="org", projection=projection, coordinate_frame="store")
    a = builder.add_local_node(LocalPoint(0.0, 0.0, "store"), {"name": "entrance"})
    b = builder.add_local_node(LocalPoint(10.0, 0.0, "store"), {"name": "aisle end"})
    builder.add_way([a, b], {"indoor_path": "yes"})
    builder.add_relation([(ElementType.NODE, a.node_id, "door")], {"type": "entrances"})
    return builder.build()


class TestSerialization:
    def test_round_trip_document(self):
        original = _sample_map()
        document = map_to_document(original)
        restored = map_from_document(document)
        assert restored.node_count == original.node_count
        assert restored.way_count == original.way_count
        assert restored.relation_count == original.relation_count
        assert restored.metadata.name == "sample"
        assert restored.metadata.operator == "org"
        assert restored.projection is not None
        assert restored.projection.frame == "store"

    def test_round_trip_preserves_tags_and_locations(self):
        original = _sample_map()
        restored = map_from_document(map_to_document(original))
        for node in original.nodes():
            copy = restored.node(node.node_id)
            assert copy.tags == node.tags
            assert copy.location.distance_to(node.location) < 0.01
            if node.local_position is not None:
                assert copy.local_position is not None
                assert copy.local_position.frame == node.local_position.frame

    def test_round_trip_json(self):
        original = _sample_map()
        text = map_to_json(original, indent=2)
        restored = map_from_json(text)
        assert restored.node_count == original.node_count
        assert "entrance" in text

    def test_coverage_round_trip(self):
        original = _sample_map()
        document = map_to_document(original)
        assert "coverage" in document
        restored = map_from_document(document)
        assert restored.coverage.contains(next(original.nodes()).location)

    def test_empty_document(self):
        restored = map_from_document({"metadata": {"name": "empty"}})
        assert restored.node_count == 0


class TestValidation:
    def test_clean_map_has_no_errors(self):
        issues = validate_map(_sample_map())
        assert not has_errors(issues)

    def test_empty_map_is_error(self):
        issues = validate_map(MapData(metadata=MapMetadata(name="x")))
        assert has_errors(issues)
        assert any(issue.code == "map.empty" for issue in issues)

    def test_unnamed_map_warns(self):
        map_data = MapData()
        map_data.add_node(Node(1, LatLng(0.0, 0.0)))
        issues = validate_map(map_data)
        assert any(issue.code == "metadata.name" for issue in issues)
        assert not has_errors(issues)

    def test_short_way_is_error(self):
        map_data = MapData(metadata=MapMetadata(name="x"))
        map_data.add_node(Node(1, LatLng(0.0, 0.0)))
        map_data._ways[5] = Way(5, [1])  # bypass add_way's checks deliberately
        issues = validate_map(map_data)
        assert any(issue.code == "way.too_short" for issue in issues)

    def test_dangling_way_reference_is_error(self):
        map_data = MapData(metadata=MapMetadata(name="x"))
        map_data.add_node(Node(1, LatLng(0.0, 0.0)))
        map_data._ways[5] = Way(5, [1, 99])
        issues = validate_map(map_data)
        assert has_errors(issues)
        assert any(issue.code == "way.dangling_ref" for issue in issues)

    def test_repeated_node_warns(self):
        map_data = MapData(metadata=MapMetadata(name="x"))
        map_data.add_node(Node(1, LatLng(0.0, 0.0)))
        map_data.add_node(Node(2, LatLng(0.001, 0.0)))
        map_data.add_way(Way(5, [1, 1, 2]))
        issues = validate_map(map_data)
        assert any(issue.code == "way.repeated_node" for issue in issues)

    def test_empty_relation_warns(self):
        map_data = MapData(metadata=MapMetadata(name="x"))
        map_data.add_node(Node(1, LatLng(0.0, 0.0)))
        map_data.add_relation(Relation(7, []))
        issues = validate_map(map_data)
        assert any(issue.code == "relation.empty" for issue in issues)

    def test_dangling_relation_reference_is_error(self):
        map_data = MapData(metadata=MapMetadata(name="x"))
        map_data.add_node(Node(1, LatLng(0.0, 0.0)))
        map_data._relations[7] = Relation(7, [ElementRef(ElementType.NODE, 42)])
        issues = validate_map(map_data)
        assert has_errors(issues)

    def test_nodes_outside_coverage_warn(self):
        from repro.geometry.polygon import Polygon

        map_data = MapData(metadata=MapMetadata(name="x"))
        map_data.add_node(Node(1, LatLng(0.0, 0.0)))
        map_data.add_node(Node(2, LatLng(10.0, 10.0)))
        map_data.set_coverage(Polygon.regular(LatLng(0.0, 0.0), 1000.0))
        issues = validate_map(map_data)
        assert any(issue.code == "coverage.nodes_outside" for issue in issues)

    def test_severity_levels(self):
        map_data = MapData(metadata=MapMetadata(name="x"))
        map_data.add_node(Node(1, LatLng(0.0, 0.0)))
        issues = validate_map(map_data)
        assert all(isinstance(issue.severity, Severity) for issue in issues)
