"""Unit tests for bounding boxes."""

from __future__ import annotations

import pytest

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LatLng


class TestConstruction:
    def test_basic_properties(self):
        box = BoundingBox(40.0, -80.0, 41.0, -79.0)
        assert box.center == LatLng(40.5, -79.5)
        assert box.width_degrees == pytest.approx(1.0)
        assert box.height_degrees == pytest.approx(1.0)

    def test_inverted_box_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(41.0, -80.0, 40.0, -79.0)
        with pytest.raises(ValueError):
            BoundingBox(40.0, -79.0, 41.0, -80.0)

    def test_from_points(self):
        points = [LatLng(40.0, -80.0), LatLng(40.5, -79.2), LatLng(39.8, -79.9)]
        box = BoundingBox.from_points(points)
        assert box.south == 39.8
        assert box.north == 40.5
        assert box.west == -80.0
        assert box.east == -79.2

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_around_contains_disc(self):
        center = LatLng(40.44, -79.95)
        box = BoundingBox.around(center, 500.0)
        for bearing in (0.0, 90.0, 180.0, 270.0):
            assert box.contains(center.destination(bearing, 499.0))

    def test_around_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.around(LatLng(0.0, 0.0), -1.0)


class TestPredicates:
    def test_contains_boundary(self):
        box = BoundingBox(40.0, -80.0, 41.0, -79.0)
        assert box.contains(LatLng(40.0, -80.0))
        assert box.contains(LatLng(41.0, -79.0))
        assert not box.contains(LatLng(41.1, -79.5))

    def test_intersects_overlapping(self):
        a = BoundingBox(40.0, -80.0, 41.0, -79.0)
        b = BoundingBox(40.5, -79.5, 41.5, -78.5)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_intersects_disjoint(self):
        a = BoundingBox(40.0, -80.0, 41.0, -79.0)
        b = BoundingBox(42.0, -78.0, 43.0, -77.0)
        assert not a.intersects(b)

    def test_contains_box(self):
        outer = BoundingBox(40.0, -80.0, 41.0, -79.0)
        inner = BoundingBox(40.2, -79.8, 40.8, -79.2)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)


class TestCombinators:
    def test_union(self):
        a = BoundingBox(40.0, -80.0, 41.0, -79.0)
        b = BoundingBox(41.0, -79.0, 42.0, -78.0)
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    def test_intersection_of_overlapping(self):
        a = BoundingBox(40.0, -80.0, 41.0, -79.0)
        b = BoundingBox(40.5, -79.5, 41.5, -78.5)
        overlap = a.intersection(b)
        assert overlap == BoundingBox(40.5, -79.5, 41.0, -79.0)

    def test_intersection_of_disjoint_is_none(self):
        a = BoundingBox(40.0, -80.0, 41.0, -79.0)
        b = BoundingBox(42.0, -78.0, 43.0, -77.0)
        assert a.intersection(b) is None

    def test_expanded_contains_original(self):
        box = BoundingBox(40.0, -80.0, 41.0, -79.0)
        bigger = box.expanded(1000.0)
        assert bigger.contains_box(box)
        assert bigger.area_square_meters() > box.area_square_meters()

    def test_corners_are_inside(self):
        box = BoundingBox(40.0, -80.0, 41.0, -79.0)
        assert len(box.corners()) == 4
        assert all(box.contains(corner) for corner in box.corners())


class TestMeasurements:
    def test_area_of_one_km_box(self):
        center = LatLng(40.0, -80.0)
        box = BoundingBox.around(center, 500.0)
        area = box.area_square_meters()
        assert 0.9e6 < area < 1.2e6  # roughly 1 km^2

    def test_diagonal_positive(self):
        box = BoundingBox(40.0, -80.0, 40.01, -79.99)
        assert box.diagonal_meters() > 0

    def test_grid_points_count_and_containment(self):
        box = BoundingBox(40.0, -80.0, 41.0, -79.0)
        points = box.grid_points(3, 4)
        assert len(points) == 12
        assert all(box.contains(p) for p in points)

    def test_grid_points_invalid(self):
        box = BoundingBox(40.0, -80.0, 41.0, -79.0)
        with pytest.raises(ValueError):
            box.grid_points(0, 3)
