"""Unit tests for the simulation support (clock, network, metrics)."""

from __future__ import annotations

import pytest

from repro.simulation.clock import SimulatedClock
from repro.simulation.metrics import Counter, MetricsRegistry, Summary, percentile
from repro.simulation.network import LatencyModel, SimulatedNetwork


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance_ms(500.0)
        assert clock.now() == pytest.approx(2.0)
        assert clock.advance_count == 2

    def test_cannot_go_backwards(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestNetwork:
    def test_round_trip_charges_twice_one_way(self):
        network = SimulatedNetwork(latency=LatencyModel(client_to_resolver_ms=2.0))
        latency = network.client_resolver_exchange()
        assert latency == pytest.approx(4.0)
        assert network.clock.now() == pytest.approx(0.004)
        assert network.stats.messages_sent == 1

    def test_message_kinds_tracked(self):
        network = SimulatedNetwork()
        network.client_resolver_exchange()
        network.resolver_authority_exchange()
        network.resolver_authority_exchange()
        network.client_map_server_exchange()
        assert network.stats.messages_by_kind["dns.resolver_authority"] == 2
        assert network.stats.messages_sent == 4

    def test_local_compute_not_counted_as_message(self):
        network = SimulatedNetwork()
        network.local_compute()
        assert network.stats.messages_sent == 0
        assert network.clock.now() > 0.0

    def test_reset_stats_keeps_clock(self):
        network = SimulatedNetwork()
        network.client_central_exchange()
        elapsed = network.clock.now()
        network.reset_stats()
        assert network.stats.messages_sent == 0
        assert network.clock.now() == elapsed


class TestMetrics:
    def test_counter(self):
        counter = Counter("x")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_summary_statistics(self):
        summary = Summary("latency")
        summary.observe_many([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.stddev == pytest.approx(1.118, rel=1e-3)

    def test_summary_empty(self):
        summary = Summary("x")
        assert summary.mean == 0.0
        assert summary.stddev == 0.0

    def test_registry_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("requests").increment(3)
        registry.summary("latency").observe(10.0)
        snapshot = registry.snapshot()
        assert snapshot["requests"] == 3.0
        assert snapshot["latency.mean"] == 10.0
        assert snapshot["latency.count"] == 1.0

    def test_registry_reuses_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").increment()
        registry.counter("a").increment()
        assert registry.counter("a").value == 2

    def test_percentile(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0
        assert percentile(values, 0.5) == pytest.approx(50.5)

    def test_percentile_invalid(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_percentile_single_value(self):
        assert percentile([42.0], 0.99) == 42.0
