"""Unit tests for the simulation support (clock, network, metrics)."""

from __future__ import annotations

import math

import pytest

from repro.simulation.clock import SimulatedClock
from repro.simulation.lru import LruCache
from repro.simulation.metrics import Counter, Histogram, MetricsRegistry, Summary, percentile
from repro.simulation.network import LatencyModel, SimulatedNetwork


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance_ms(500.0)
        assert clock.now() == pytest.approx(2.0)
        assert clock.advance_count == 2

    def test_cannot_go_backwards(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_rewind_to_past_instant(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        clock.rewind_to(2.0)
        assert clock.now() == 2.0

    def test_rewind_cannot_go_forward_or_negative(self):
        clock = SimulatedClock()
        clock.advance(1.0)
        with pytest.raises(ValueError):
            clock.rewind_to(2.0)
        with pytest.raises(ValueError):
            clock.rewind_to(-0.1)


class TestNetwork:
    def test_round_trip_charges_twice_one_way(self):
        network = SimulatedNetwork(latency=LatencyModel(client_to_resolver_ms=2.0))
        latency = network.client_resolver_exchange()
        assert latency == pytest.approx(4.0)
        assert network.clock.now() == pytest.approx(0.004)
        assert network.stats.messages_sent == 1

    def test_message_kinds_tracked(self):
        network = SimulatedNetwork()
        network.client_resolver_exchange()
        network.resolver_authority_exchange()
        network.resolver_authority_exchange()
        network.client_map_server_exchange()
        assert network.stats.messages_by_kind["dns.resolver_authority"] == 2
        assert network.stats.messages_sent == 4

    def test_local_compute_not_counted_as_message(self):
        network = SimulatedNetwork()
        network.local_compute()
        assert network.stats.messages_sent == 0
        assert network.clock.now() > 0.0

    def test_reset_stats_keeps_clock(self):
        network = SimulatedNetwork()
        network.client_central_exchange()
        elapsed = network.clock.now()
        network.reset_stats()
        assert network.stats.messages_sent == 0
        assert network.clock.now() == elapsed


class TestMetrics:
    def test_counter(self):
        counter = Counter("x")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_summary_statistics(self):
        summary = Summary("latency")
        summary.observe_many([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.stddev == pytest.approx(1.118, rel=1e-3)

    def test_summary_empty(self):
        summary = Summary("x")
        assert summary.mean == 0.0
        assert summary.stddev == 0.0

    def test_empty_summary_snapshot_has_no_infinities(self):
        """Regression: an empty summary must not leak its ±inf sentinels."""
        snapshot = Summary("x").snapshot()
        assert snapshot["x.min"] == 0.0
        assert snapshot["x.max"] == 0.0
        assert snapshot["x.mean"] == 0.0
        assert snapshot["x.stddev"] == 0.0
        assert snapshot["x.count"] == 0.0
        assert all(math.isfinite(value) for value in snapshot.values())

    def test_empty_summary_in_registry_snapshot(self):
        registry = MetricsRegistry()
        registry.summary("untouched")
        snapshot = registry.snapshot()
        assert snapshot["untouched.min"] == 0.0
        assert snapshot["untouched.max"] == 0.0
        assert all(math.isfinite(value) for value in snapshot.values())

    def test_single_observation_stddev_is_zero(self):
        summary = Summary("x")
        summary.observe(7.5)
        assert summary.stddev == 0.0
        snapshot = summary.snapshot()
        assert snapshot["x.min"] == 7.5
        assert snapshot["x.max"] == 7.5
        assert snapshot["x.stddev"] == 0.0

    def test_summary_snapshot_round_trip(self):
        summary = Summary("lat")
        summary.observe_many([2.0, 4.0])
        snapshot = summary.snapshot()
        assert snapshot["lat.mean"] == pytest.approx(3.0)
        assert snapshot["lat.count"] == 2.0
        assert snapshot["lat.min"] == 2.0
        assert snapshot["lat.max"] == 4.0
        assert snapshot["lat.stddev"] == pytest.approx(1.0)

    def test_registry_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("requests").increment(3)
        registry.summary("latency").observe(10.0)
        snapshot = registry.snapshot()
        assert snapshot["requests"] == 3.0
        assert snapshot["latency.mean"] == 10.0
        assert snapshot["latency.count"] == 1.0

    def test_registry_reuses_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").increment()
        registry.counter("a").increment()
        assert registry.counter("a").value == 2

    def test_percentile(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0
        assert percentile(values, 0.5) == pytest.approx(50.5)

    def test_percentile_invalid(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_percentile_single_value(self):
        assert percentile([42.0], 0.99) == 42.0


class TestHistogram:
    def test_percentiles(self):
        histogram = Histogram("latency")
        histogram.observe_many(float(v) for v in range(1, 101))
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.p50 == pytest.approx(50.5)
        assert histogram.p95 == pytest.approx(95.05)
        assert histogram.p99 == pytest.approx(99.01)

    def test_empty_histogram_reports_zero(self):
        histogram = Histogram("x")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.p50 == 0.0
        assert histogram.p99 == 0.0

    def test_unordered_observations(self):
        histogram = Histogram("x")
        histogram.observe_many([9.0, 1.0, 5.0])
        assert histogram.p50 == 5.0

    def test_snapshot_keys(self):
        histogram = Histogram("lat")
        histogram.observe(10.0)
        snapshot = histogram.snapshot()
        assert snapshot == {
            "lat.count": 1.0,
            "lat.mean": 10.0,
            "lat.p50": 10.0,
            "lat.p95": 10.0,
            "lat.p99": 10.0,
        }

    def test_registry_histogram_in_snapshot(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe_many([1.0, 3.0])
        snapshot = registry.snapshot()
        assert snapshot["lat.p50"] == pytest.approx(2.0)
        registry.reset()
        assert registry.snapshot() == {}


class TestWelfordStddev:
    def test_large_magnitude_small_jitter(self):
        """Regression: the naive total_squares/count − mean² formula loses
        every significant bit of a millisecond-scale spread sitting on a
        1e9-scale base (simulated epoch timestamps), reporting 0.0 or going
        negative.  Welford keeps the centered second moment directly."""
        import statistics

        base = 1e9
        jitter = [0.001, 0.002, 0.003, 0.001, 0.004, 0.002, 0.003, 0.005]
        values = [base + j for j in jitter]  # float64 rounds these slightly
        summary = Summary("ts")
        summary.observe_many(values)
        expected = statistics.pstdev(values)  # exact-rational reference
        assert expected > 0.0
        assert summary.stddev == pytest.approx(expected, rel=1e-4)
        # The naive formula on the same inputs is pure cancellation noise:
        # every significant bit of the variance is lost.
        naive_var = sum(v * v for v in values) / len(values) - (
            sum(values) / len(values)
        ) ** 2
        assert abs(naive_var - expected**2) >= 0.5 * expected**2
        # The mean is still the plain total/count the artifacts carry.
        assert summary.mean == pytest.approx(base, abs=1.0)

    def test_matches_pstdev_at_ordinary_scale(self):
        import statistics

        values = [3.0, 7.0, 7.0, 19.0, 24.0, 4.5]
        summary = Summary("x")
        summary.observe_many(values)
        assert summary.stddev == pytest.approx(statistics.pstdev(values), rel=1e-12)


class TestStreamingHistogram:
    def test_modes_agree_within_bucket_tolerance(self):
        """Streaming percentiles must stay inside the log-bucket relative
        width (≈4.9% per bucket; 6% asserted for headroom) of exact ones."""
        import random as _random

        rng = _random.Random(42)
        values = [rng.lognormvariate(3.0, 1.2) for _ in range(5000)]
        exact = Histogram("lat")
        stream = Histogram("lat", streaming=True)
        for value in values:
            exact.observe(value)
            stream.observe(value)
        assert stream.count == exact.count
        assert stream.mean == pytest.approx(exact.mean, rel=1e-9)
        for fraction in (0.5, 0.9, 0.95, 0.99):
            assert stream.quantile(fraction) == pytest.approx(
                exact.quantile(fraction), rel=0.06
            )

    def test_weighted_observation_equals_repetition(self):
        weighted = Histogram("w", streaming=True)
        repeated = Histogram("r", streaming=True)
        for value, weight in ((5.0, 3), (80.0, 7), (900.0, 2)):
            weighted.observe(value, weight)
            for _ in range(weight):
                repeated.observe(value)
        assert weighted.count == repeated.count
        assert weighted.mean == pytest.approx(repeated.mean)
        assert weighted.p50 == pytest.approx(repeated.p50)
        assert weighted.p99 == pytest.approx(repeated.p99)

    def test_exact_mode_weight_is_repetition(self):
        histogram = Histogram("x")
        histogram.observe(4.0, 3)
        assert histogram.values == [4.0, 4.0, 4.0]
        with pytest.raises(ValueError):
            histogram.observe(1.0, 1.5)
        with pytest.raises(ValueError):
            histogram.observe(1.0, -1)

    def test_single_bucket_reports_observed_values(self):
        histogram = Histogram("x", streaming=True)
        histogram.observe(123.0, 10)
        assert histogram.p50 == pytest.approx(123.0)
        assert histogram.p99 == pytest.approx(123.0)

    def test_streaming_memory_is_bounded(self):
        histogram = Histogram("x", streaming=True)
        for i in range(100_000):
            histogram.observe(float(i % 977) + 0.5)
        assert histogram.values == []  # raw floats are never retained
        assert len(histogram._bucket_weights) < 500
        assert histogram.count == 100_000

    def test_registry_streaming_flag(self):
        registry = MetricsRegistry(streaming_histograms=True)
        assert registry.histogram("lat").streaming is True
        assert MetricsRegistry().histogram("lat").streaming is False


class TestLruCache:
    def test_basic_hit_miss_and_eviction_order(self):
        cache = LruCache(max_entries=2)
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.lookup("a") == 1  # refreshes "a" to MRU
        cache.store("c", 3)  # evicts "b", the LRU entry
        assert cache.lookup("b") is None
        assert cache.lookup("a") == 1
        assert cache.lookup("c") == 3
        assert cache.stats.evictions == 1

    def test_stored_none_is_a_hit(self):
        """A stored ``None`` value must not masquerade as a miss."""
        cache = LruCache(max_entries=4)
        cache.store("k", None)
        assert cache.lookup("k") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

    def test_is_live_expires_and_counts(self):
        cache = LruCache(max_entries=4)
        cache.store("k", "stale")
        assert cache.lookup("k", is_live=lambda v: False) is None
        assert cache.stats.expirations == 1
        assert cache.stats.misses == 1
        assert cache.size == 0

    def test_refresh_does_not_evict(self):
        cache = LruCache(max_entries=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.store("a", 10)  # refresh, not insert: nothing evicted
        assert cache.stats.evictions == 0
        assert cache.lookup("b") == 2

    def test_operations_are_constant_time(self):
        """Micro-benchmark guard: per-op cost must not grow with cache size.

        A steady-state mix of stores (each evicting) and lookups (each
        touching/relinking) runs against a small and a 128x larger cache; an
        O(size) eviction or touch would blow the per-op ratio far past the
        generous bound used here.
        """
        import time

        small_size, large_size = 256, 32_768  # 128x apart
        ops = 10_000

        def build(size: int) -> LruCache:
            cache = LruCache(max_entries=size)
            for i in range(size):  # steady state: cache full
                cache.store(i, i)
            return cache

        def one_pass(cache: LruCache, size: int, offset: int) -> float:
            start = time.perf_counter()
            base = size + offset * ops
            for i in range(ops):
                cache.store(base + i, i)      # insert + evict
                cache.lookup(base + i - 1)    # hit + touch
                cache.lookup(-1)              # miss
            return time.perf_counter() - start

        small, large = build(small_size), build(large_size)
        # Best-of-5 minima approximate the true per-op cost, so a single
        # noisy scheduler slice cannot fail the guard.
        small_best = min(one_pass(small, small_size, r) for r in range(5))
        large_best = min(one_pass(large, large_size, r) for r in range(5))

        # 20x headroom absorbs timer noise while still failing hard for a
        # linear-time implementation (which would be ~128x slower).
        assert large_best < 20.0 * small_best
