#!/usr/bin/env python
"""Fail the lint stage when README.md or docs/ carries a dead relative link.

The docs layer (``docs/ARCHITECTURE.md``, ``docs/BENCHMARKS.md``) is wired
into README.md and into each other with relative markdown links; a rename or
file move silently strands those references.  This checker walks README.md
plus every ``*.md`` under ``docs/``, extracts markdown link targets, and
verifies that each *relative* target resolves to an existing file or
directory from the linking file's location.

External links (``http://``, ``https://``, ``mailto:``) and pure in-page
anchors (``#section``) are out of scope — this is a filesystem check, not a
crawler.  A ``path#anchor`` target is checked for the path part only.

Standalone use: ``python scripts/check_docs_links.py`` (exit 0 clean,
exit 1 with one line per dead link otherwise).
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# [text](target) — target ends at the first unescaped ')'; markdown titles
# (`[t](path "title")`) are split off below.  Images (`![alt](path)`) match
# too, which is what we want: a dead image reference is just as broken.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def doc_files(root: Path) -> list[Path]:
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return [path for path in files if path.is_file()]


def dead_links(root: Path) -> list[str]:
    """Return ``path:line: target`` strings for every unresolvable link."""
    failures: list[str] = []
    for doc in doc_files(root):
        for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    rel = doc.relative_to(root)
                    failures.append(f"{rel}:{lineno}: dead link target {target!r}")
    return failures


def main() -> int:
    failures = dead_links(REPO_ROOT)
    if failures:
        for failure in failures:
            print(failure)
        print(f"{len(failures)} dead relative link(s) in README.md / docs/")
        return 1
    checked = ", ".join(str(p.relative_to(REPO_ROOT)) for p in doc_files(REPO_ROOT))
    print(f"docs links OK ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
