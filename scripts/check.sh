#!/usr/bin/env bash
# Repo check: tier-1 test suite plus the workload benchmark in smoke mode.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q

echo
echo "== benchmark smoke: E13 workload =="
python benchmarks/bench_e13_workload.py --smoke

echo
echo "All checks passed."
