#!/usr/bin/env bash
# Repo check: tier-1 test suite plus the workload + churn benchmarks in
# smoke mode.
#
# Each smoke run is held to a wall-clock budget (E13_SMOKE_BUDGET_SECONDS /
# E14_SMOKE_BUDGET_SECONDS, default 20s — the optimized smokes finish in a
# couple of seconds, so only an order-of-magnitude hot-path regression trips
# them).  The E14 smoke rewrites BENCH_e14.json, which doubles as a
# determinism check: the committed artifact must reproduce byte-for-byte.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q

echo
echo "== benchmark smoke: E13 workload (budgeted) =="
python benchmarks/bench_e13_workload.py --smoke --no-json \
  --budget-seconds "${E13_SMOKE_BUDGET_SECONDS:-20}"

echo
echo "== benchmark smoke: E14 churn/failover (budgeted) =="
python benchmarks/bench_e14_churn.py --smoke \
  --budget-seconds "${E14_SMOKE_BUDGET_SECONDS:-20}"

if ! git diff --quiet -- BENCH_e14.json 2>/dev/null; then
  echo "FAIL: E14 smoke did not reproduce the committed BENCH_e14.json"
  exit 1
fi

echo
echo "All checks passed."
