#!/usr/bin/env bash
# Repo check, split into the three stages the CI pipeline parallelizes:
#
#   --tier1   the tier-1 pytest suite
#   --smoke   the E13 .. E20 benchmark smokes (wall-clock budgeted) plus
#             the byte-for-byte reproducibility gate on ALL committed
#             artifacts (BENCH_e13.json .. BENCH_e20.json are written by
#             the smoke sweeps themselves, so a drifting simulation fails
#             the gate)
#   --lint    ruff check + ruff format --check (skipped with a notice when
#             ruff is not installed, so offline containers stay one-command;
#             CI installs ruff and enforces it), plus the docs link
#             checker (a dead relative link in README.md or docs/ fails)
#
# With no stage flag every stage runs in order — the local one-command check.
# Budgets: E13_SMOKE_BUDGET_SECONDS / E14_SMOKE_BUDGET_SECONDS /
# E15_SMOKE_BUDGET_SECONDS / E16_SMOKE_BUDGET_SECONDS /
# E17_SMOKE_BUDGET_SECONDS (default 20s each),
# E18_SMOKE_BUDGET_SECONDS (default 40s: it runs the 100k-client fleet
# twice, telemetry on and off), E19_SMOKE_BUDGET_SECONDS (default
# 40s: seven provisioning cells plus a determinism rerun) and
# E20_SMOKE_BUDGET_SECONDS (default 40s: three drain transports, the
# partitioned-operator race, two autoscaler reaction cells and a
# determinism rerun).  The
# optimized smokes finish in a couple of seconds — E16 runs 100,000
# clients inside its budget on the cohort fast path, E17 plays the whole
# disaster library — so only an order-of-magnitude hot-path regression
# trips them.
# Usage: scripts/check.sh [--tier1|--smoke|--lint]...
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

run_tier1=false
run_smoke=false
run_lint=false
if [ "$#" -eq 0 ]; then
  run_tier1=true
  run_smoke=true
  run_lint=true
fi
for arg in "$@"; do
  case "$arg" in
    --tier1) run_tier1=true ;;
    --smoke) run_smoke=true ;;
    --lint) run_lint=true ;;
    *)
      echo "unknown stage '$arg' (expected --tier1, --smoke and/or --lint)" >&2
      exit 2
      ;;
  esac
done

if $run_tier1; then
  echo "== tier-1: pytest =="
  python -m pytest -x -q
fi

if $run_smoke; then
  echo
  echo "== benchmark smoke: E13 workload (budgeted) =="
  python benchmarks/bench_e13_workload.py --smoke \
    --budget-seconds "${E13_SMOKE_BUDGET_SECONDS:-20}"

  echo
  echo "== benchmark smoke: E14 churn/failover/balancing (budgeted) =="
  python benchmarks/bench_e14_churn.py --smoke \
    --budget-seconds "${E14_SMOKE_BUDGET_SECONDS:-20}"

  echo
  echo "== benchmark smoke: E15 operator control plane (budgeted) =="
  python benchmarks/bench_e15_control.py --smoke \
    --budget-seconds "${E15_SMOKE_BUDGET_SECONDS:-20}"

  echo
  echo "== benchmark smoke: E16 100k-client scale (budgeted) =="
  python benchmarks/bench_e16_scale.py --smoke \
    --budget-seconds "${E16_SMOKE_BUDGET_SECONDS:-20}"

  echo
  echo "== benchmark smoke: E17 correlated disasters (budgeted) =="
  python benchmarks/bench_e17_faults.py --smoke \
    --budget-seconds "${E17_SMOKE_BUDGET_SECONDS:-20}"

  echo
  echo "== benchmark smoke: E18 telemetry pipeline (budgeted) =="
  python benchmarks/bench_e18_telemetry.py --smoke \
    --budget-seconds "${E18_SMOKE_BUDGET_SECONDS:-40}"

  echo
  echo "== benchmark smoke: E19 autoscaler (budgeted) =="
  python benchmarks/bench_e19_autoscale.py --smoke \
    --budget-seconds "${E19_SMOKE_BUDGET_SECONDS:-40}"

  echo
  echo "== benchmark smoke: E20 operator API (budgeted) =="
  python benchmarks/bench_e20_operator.py --smoke \
    --budget-seconds "${E20_SMOKE_BUDGET_SECONDS:-40}"

  for artifact in BENCH_e13.json BENCH_e14.json BENCH_e15.json BENCH_e16.json BENCH_e17.json BENCH_e18.json BENCH_e19.json BENCH_e20.json; do
    # `git diff` exits 0 for untracked paths, which would make the gate
    # vacuous for an artifact nobody committed — require the baseline.
    if ! git ls-files --error-unmatch "$artifact" >/dev/null 2>&1; then
      echo "FAIL: $artifact is not tracked by git (the byte-for-byte gate needs a committed baseline)"
      exit 1
    fi
    if ! git diff --quiet -- "$artifact" 2>/dev/null; then
      echo "FAIL: smoke did not reproduce the committed $artifact"
      exit 1
    fi
  done
fi

if $run_lint; then
  echo
  echo "== lint: ruff check + format =="
  if command -v ruff >/dev/null 2>&1; then
    ruff check .
    ruff format --check .
  else
    echo "ruff not installed; running the fallback audit instead"
    echo "(CI installs ruff and enforces the full rule set)"
    python scripts/lint_fallback.py
  fi

  echo
  echo "== lint: docs relative links =="
  python scripts/check_docs_links.py
fi

echo
echo "All checks passed."
