#!/usr/bin/env bash
# Repo check: tier-1 test suite plus the workload benchmark in smoke mode.
#
# The smoke run is held to a wall-clock budget (E13_SMOKE_BUDGET_SECONDS,
# default 20s — the optimized smoke finishes in ~1s, so only an
# order-of-magnitude hot-path regression trips it).
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q

echo
echo "== benchmark smoke: E13 workload (budgeted) =="
python benchmarks/bench_e13_workload.py --smoke --no-json \
  --budget-seconds "${E13_SMOKE_BUDGET_SECONDS:-20}"

echo
echo "All checks passed."
