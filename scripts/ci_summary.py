#!/usr/bin/env python
"""Render the BENCH artifacts' headline numbers as a markdown summary.

CI appends the output to ``$GITHUB_STEP_SUMMARY`` after the smoke stage, so
every run shows the telemetry / disaster / scale / control-plane /
availability / balancing / saturation / autoscaling headlines next to the
uploaded ``BENCH_e13.json`` .. ``BENCH_e20.json`` artifacts without anyone
downloading them.  Standalone use: ``python scripts/ci_summary.py``.
Column definitions and regeneration commands for every table live in
``docs/BENCHMARKS.md``.

Rendering degrades gracefully: a missing or malformed artifact becomes a
note in the summary rather than a traceback that kills the whole step —
one corrupt benchmark file must never hide the other five tables.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def e20_summary(payload: dict) -> list[str]:
    lines = [
        "## E20 — operator API: control ops as messages on the wire",
        "",
        "| transport | first-event lag (s) | mean lag (s) | timeouts | retransmits | tape retries | failed |",
        "|---|---:|---:|---:|---:|---:|---:|",
    ]
    for mode in ("direct", "net-healthy", "net-lossy"):
        cell = payload.get("drain", {}).get(mode)
        if not cell:
            continue
        lines.append(
            "| {mode} | {first:.2f} | {mean:.2f} | {timeouts} | {rtx} "
            "| {retries} | {failed} |".format(
                mode=mode,
                first=cell.get("delivery_lag_first_s", 0.0),
                mean=cell.get("delivery_lag_mean_s", 0.0),
                timeouts=int(cell.get("timeouts", 0)),
                rtx=int(cell.get("retransmits", 0)),
                retries=int(cell.get("tape_retries", 0)),
                failed=int(cell.get("failed_requests", 0)),
            )
        )
    partition = payload.get("partition", {})
    if partition:
        lines += [
            "",
            "Partitioned operators: {winner} wins at audit seq {wseq}, loser "
            "seq {lseq} resolved as `{error}`; NXDOMAIN-free {nx}; replay "
            "digest match {match}.".format(
                winner=partition.get("winner", "?"),
                wseq=int(partition.get("winner_seq", 0)),
                lseq=int(partition.get("loser_seq", 0)),
                error=partition.get("loser_error", "?"),
                nx="yes" if partition.get("nxdomain_free") else "NO",
                match="yes"
                if partition.get("replay_digest") == partition.get("state_digest")
                else "NO",
            ),
        ]
    scaler = payload.get("autoscaler", {})
    if scaler:
        direct = scaler.get("direct", {})
        net = scaler.get("network", {})
        lines += [
            "",
            "Autoscaler reaction: first capacity action at "
            "{direct:.1f}s direct vs {net:.1f}s networked "
            "({dp}/{np} promotion(s)).".format(
                direct=direct.get("first_action_s", 0.0),
                net=net.get("first_action_s", 0.0),
                dp=int(direct.get("promotions", 0)),
                np=int(net.get("promotions", 0)),
            ),
        ]
    return lines


def e19_summary(payload: dict) -> list[str]:
    lines = [
        "## E19 — closed-loop autoscaling: elastic warm pool vs static provisioning",
        "",
        "| pattern | cell | attainment | replica-seconds | promotions | ramp steps | parks | flaps |",
        "|---|---|---:|---:|---:|---:|---:|---:|",
    ]
    for pattern in ("flash", "diurnal"):
        cells = payload.get(pattern, {})
        for mode in ("static-lean", "auto", "static-over"):
            cell = cells.get(mode)
            if not cell:
                continue
            lines.append(
                "| {pattern} | {mode} | {att:.4f} | {cost:.0f} | {promos} "
                "| {ramps} | {parks} | {flaps} |".format(
                    pattern=pattern,
                    mode=mode,
                    att=cell.get("attainment", 0.0),
                    cost=cell.get("replica_seconds", 0.0),
                    promos=int(cell.get("promotions", 0)),
                    ramps=int(cell.get("ramp_steps", 0)),
                    parks=int(cell.get("parks", 0)),
                    flaps=int(cell.get("flaps", 0)),
                )
            )
    osc = payload.get("oscillation", {})
    if osc:
        lines += [
            "",
            "Stability cell (device TTL {dev:g}s / DNS TTL {dns:g}s): "
            "{changes} weight change(s) of ≤{cap} allowed, {flaps} flap(s), "
            "{promos} promotion(s), attainment {att:.4f}.".format(
                dev=osc.get("device_ttl_seconds", 0.0),
                dns=osc.get("dns_ttl_seconds", 0.0),
                changes=int(osc.get("weight_changes", 0)),
                cap=int(osc.get("max_weight_changes", 0)),
                flaps=int(osc.get("flaps", 0)),
                promos=int(osc.get("promotions", 0)),
                att=osc.get("attainment", 0.0),
            ),
        ]
    return lines


def e18_summary(payload: dict) -> list[str]:
    lines = [
        "## E18 — federation-wide telemetry: roll-ups, SLO burn, overhead",
        "",
        "| probe | headline |",
        "|---|---|",
    ]
    hotspot = payload.get("hotspot", {})
    if hotspot:
        lines.append(
            "| hot-spot localization | top cell {cell} holds {share:.0%} of drops; "
            "global p95 inflation {p95x:.2f}x |".format(
                cell=hotspot.get("top_drop_cell", "?"),
                share=hotspot.get("top_cell_drop_share", 0.0),
                p95x=hotspot.get("global_p95_inflation", 0.0),
            )
        )
    burn = payload.get("slo_burn", {})
    if burn:
        lines.append(
            "| SLO burn alerting | region {region} max burn {burn:.1f}x, "
            "{alerts} alert window(s); baseline max {base:.2f}x |".format(
                region=burn.get("hit_region", 0),
                burn=burn.get("max_burn", 0.0),
                alerts=int(burn.get("alert_windows", 0)),
                base=burn.get("baseline_max_burn", 0.0),
            )
        )
    overhead = payload.get("overhead", {})
    measured = overhead.get("measured", {})
    if measured:
        lines.append(
            "| telemetry-on overhead | {clients} clients: {pct:+.1f}% wall clock, "
            "{records:.0f} records into {windows} retained window(s) |".format(
                clients=int(overhead.get("clients", 0)),
                pct=measured.get("overhead_pct", 0.0),
                records=overhead.get("records", 0.0),
                windows=int(overhead.get("windows_retained", 0)),
            )
        )
    return lines


def e17_summary(payload: dict) -> list[str]:
    lines = [
        "## E17 — correlated disasters and graceful degradation",
        "",
        "| scenario | availability | failovers | degraded | stale serves | dropped | p95 inflation | in band |",
        "|---|---:|---:|---:|---:|---:|---:|---|",
    ]
    for row in payload.get("scenarios", []):
        metrics = row.get("metrics", {})
        lines.append(
            "| {name} | {avail:.4f} | {failovers} | {degraded:.3f} | {stale} "
            "| {dropped} | {p95x:.2f} | {ok} |".format(
                name=row.get("name", "?"),
                avail=metrics.get("availability", 0.0),
                failovers=int(metrics.get("failovers", 0)),
                degraded=metrics.get("degraded_rate", 0.0),
                stale=int(metrics.get("stale_serves", 0)),
                dropped=int(metrics.get("dropped_requests", 0)),
                p95x=metrics.get("p95_inflation", 0.0),
                ok="yes" if not row.get("band_failures") else "NO",
            )
        )
    return lines


def e16_summary(payload: dict) -> list[str]:
    lines = [
        "## E16 — large-fleet scale on the cohort fast path",
        "",
        "| clients | tracers | requests | p50 (ms) | p99 (ms) | dropped | max utilization |",
        "|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for row in payload.get("rows", []):
        latency = row.get("latency_ms", {})
        servers = row.get("servers", {})
        sampling = row.get("sampling", {})
        util_max = max(
            (stats.get("utilization", 0.0) for stats in servers.values()), default=0.0
        )
        lines.append(
            "| {clients} | {tracers} | {requests} | {p50:.1f} | {p99:.1f} "
            "| {dropped} | {util:.3f} |".format(
                clients=row.get("clients", 0),
                tracers=int(sampling.get("tracers", 0)),
                requests=row.get("requests", 0),
                p50=latency.get("p50", 0.0),
                p99=latency.get("p99", 0.0),
                dropped=row.get("dropped", 0),
                util=util_max,
            )
        )
    return lines


def e15_summary(payload: dict) -> list[str]:
    lines = [
        "## E15 — operator control plane: drains, convergence, warm standbys",
        "",
        "| cell | DNS TTL (s) | converged | converge p95 (s) | drained share | standby served | failed | stale |",
        "|---|---:|---|---:|---:|---:|---:|---:|",
    ]
    for row in payload.get("rows", []):
        control = row.get("control", {})
        tracked = int(control.get("devices_tracked", 0))
        converged = int(control.get("devices_converged", 0))
        lines.append(
            "| {cell} | {ttl:g} | {conv} | {p95:.1f} | {share:.3f} "
            "| {standby} | {failed} | {stale} |".format(
                cell=row.get("cell", "?"),
                ttl=row.get("dns_ttl_s", 0.0),
                conv=f"{converged}/{tracked}" if tracked else "—",
                p95=control.get("converge_p95_s", 0.0),
                share=row.get("drained_share", 0.0),
                standby=row.get("standby_arrivals", 0),
                failed=row.get("failed_requests", 0),
                stale=row.get("stale_attempts", 0),
            )
        )
    return lines


def e14_summary(payload: dict) -> list[str]:
    lines = [
        "## E14 — availability, failover and replica balancing",
        "",
        "| phase | selection | shared health | replicas | churn/min | failed rate | failover p95 (ms) | replica_load_cv | detect mean (ms) |",
        "|---|---|---|---:|---:|---:|---:|---:|---:|",
    ]
    for row in payload.get("rows", []):
        availability = row.get("availability", {})
        lines.append(
            "| {phase} | {selection} | {shared} | {replicas} | {churn:g} "
            "| {failed:.4f} | {p95:.1f} | {cv:.3f} | {detect:.1f} |".format(
                phase=row.get("phase", "churn"),
                selection=row.get("selection", "weighted"),
                shared="yes" if row.get("shared_health") else "no",
                replicas=row.get("replicas", 0),
                churn=row.get("churn_per_min", 0.0),
                failed=availability.get("failed_request_rate", 0.0),
                p95=availability.get("failover_p95_ms", 0.0),
                cv=row.get("replica_load_cv", 0.0),
                detect=availability.get("detect_mean_ms", 0.0),
            )
        )
    return lines


def e13_summary(payload: dict) -> list[str]:
    lines = [
        "## E13 — fleet sweep and server saturation",
        "",
        "| clients | cached | p50 (ms) | p99 (ms) | dropped | max utilization |",
        "|---:|---|---:|---:|---:|---:|",
    ]
    for row in payload.get("rows", []):
        latency = row.get("latency_ms", {})
        servers = row.get("servers", {})
        util_max = max(
            (stats.get("utilization", 0.0) for stats in servers.values()), default=0.0
        )
        lines.append(
            "| {clients} | {cached} | {p50:.1f} | {p99:.1f} | {dropped} | {util:.3f} |".format(
                clients=row.get("clients", 0),
                cached="yes" if row.get("cached") else "no",
                p50=latency.get("p50", 0.0),
                p99=latency.get("p99", 0.0),
                dropped=row.get("dropped", 0),
                util=util_max,
            )
        )
    return lines


RENDERERS: tuple[tuple[str, object], ...] = (
    ("BENCH_e20.json", e20_summary),
    ("BENCH_e19.json", e19_summary),
    ("BENCH_e18.json", e18_summary),
    ("BENCH_e17.json", e17_summary),
    ("BENCH_e16.json", e16_summary),
    ("BENCH_e15.json", e15_summary),
    ("BENCH_e14.json", e14_summary),
    ("BENCH_e13.json", e13_summary),
)


def summarize(root: Path) -> list[str]:
    """Render every artifact under ``root`` into one markdown document.

    Degrades gracefully instead of failing the CI summary step: a missing
    artifact becomes a "missing" note, a malformed one (invalid JSON, or a
    shape a renderer chokes on) becomes an "unreadable" note carrying the
    exception, and every *other* artifact still renders in full.
    """
    lines: list[str] = [
        "# Benchmark smoke headlines",
        "",
        "Column definitions, full-mode commands and byte-gate semantics: "
        "[docs/BENCHMARKS.md](docs/BENCHMARKS.md).",
        "",
    ]
    for name, render in RENDERERS:
        path = root / name
        if not path.is_file():
            lines += [f"## {name}", "", "_missing — smoke stage did not produce it_", ""]
            continue
        try:
            payload = json.loads(path.read_text())
            rendered = render(payload)
        except (OSError, ValueError, TypeError, AttributeError, KeyError) as exc:
            lines += [
                f"## {name}",
                "",
                f"_unreadable — {type(exc).__name__}: {exc}_",
                "",
            ]
            continue
        lines += rendered
        lines.append("")
    return lines


def main() -> int:
    print("\n".join(summarize(REPO_ROOT)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
