#!/usr/bin/env python
"""Offline lint fallback for environments without ruff.

``scripts/check.sh --lint`` prefers ruff (CI installs it and enforces the
rule set in ``pyproject.toml``).  Containers without ruff — or network
access to install it — still get the two highest-signal checks:

* every Python file under ``src``/``tests``/``benchmarks``/``examples``/
  ``scripts`` must compile (ruff's E9 class);
* no obviously unused imports (ruff's F401): an imported binding must be
  mentioned somewhere outside its own import statement.  Mentions are
  matched textually (word boundary), which deliberately also accepts names
  referenced only in ``__all__`` lists or quoted ``TYPE_CHECKING``
  annotations.

Exit status 1 with a findings list on failure, 0 otherwise.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

ROOTS = ("src", "tests", "benchmarks", "examples", "scripts")


def iter_python_files(repo_root: Path):
    for root in ROOTS:
        base = repo_root / root
        if base.is_dir():
            yield from sorted(base.rglob("*.py"))


def imported_bindings(tree: ast.AST):
    """Yield ``(binding_name, first_line, last_line)`` for every import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                yield name, node.lineno, node.end_lineno or node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                yield (alias.asname or alias.name), node.lineno, node.end_lineno or node.lineno


def unused_imports(path: Path, source: str, tree: ast.AST) -> list[str]:
    findings = []
    lines = source.splitlines()
    for name, first, last in imported_bindings(tree):
        if name.startswith("_"):
            continue
        pattern = re.compile(rf"\b{re.escape(name)}\b")
        used = any(
            pattern.search(line)
            for index, line in enumerate(lines, start=1)
            if index < first or index > last
        )
        if not used:
            findings.append(f"{path}:{first}: unused import {name!r}")
    return findings


def main() -> int:
    repo_root = Path(__file__).resolve().parents[1]
    findings: list[str] = []
    for path in iter_python_files(repo_root):
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            findings.append(f"{path}:{error.lineno}: syntax error: {error.msg}")
            continue
        findings.extend(unused_imports(path.relative_to(repo_root), source, tree))
    if findings:
        for finding in findings:
            print(finding)
        print(f"\n{len(findings)} finding(s)")
        return 1
    print("fallback lint clean (compile + unused-import audit)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
