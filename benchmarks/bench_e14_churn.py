"""E14 — federation churn: availability, failover and replica load balancing.

The paper's discovery story assumes map servers are long-lived DNS
registrants; production federations churn.  This experiment sweeps *churn
rate* (Poisson crash/rejoin arrivals per simulated minute over the store
servers) against *replica count* (each store deployed as a replica group
advertising the same coverage cells) and measures what clients experience:

* **failed-request rate** — client requests that got no service at all
  (every replica chain they tried was exhausted);
* **stale-attempt rate** — attempts addressed to dead servers because the
  device acted on TTL-stale cached discovery results;
* **failover latency** — p50/p95/p99 from first failure detection to
  success on another replica (dead-server timeouts + retry backoff + the
  winning attempt);
* **time-to-rediscovery** — how long after a crashed server re-registers
  until the fleet's traffic reaches it again.

Two further sweep dimensions compare the client-side policies themselves
on a 4-replica group:

* **balance** — RFC 2782 ``weighted`` selection vs the legacy
  ``first-healthy`` ordering, scored by ``replica_load_cv`` (coefficient
  of variation of per-replica utilization: ~0 is a perfect 4-way spread,
  ~1.73 is everything funneled onto one replica);
* **detection** — per-device health only vs pool-shared health
  (``FederationConfig.shared_health``), scored by the mean client-time
  cost of learning a replica is dead (``detect_mean_ms``): every device
  paying its own ``dead_server_timeout`` vs one device paying and the
  rest of its resolver pool learning for free.

Runs three ways, like E13:

* under pytest-benchmark;
* standalone smoke: ``python benchmarks/bench_e14_churn.py --smoke`` —
  the reduced sweep used by ``scripts/check.sh`` (wall-clock budgeted via
  ``--budget-seconds``); the smoke sweep *is* the committed artifact, so
  every check run re-verifies that ``BENCH_e14.json`` reproduces;
* the full sweep (no flags) runs a larger fleet over more churn rates.

Everything is deterministic under the fixed seeds: the same invocation
rewrites byte-identical JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.churn import FIRST_HEALTHY, WEIGHTED, ChurnSchedule, RetryPolicy
from repro.core.config import FederationConfig
from repro.simulation.queueing import ServiceTimeModel
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _util import print_table  # noqa: E402

WORLD_SEED = 33
WORKLOAD_SEED = 7
CHURN_SEED = 5
STORE_COUNT = 2
DEVICE_CACHE_TTL_SECONDS = 120.0
TILE_CACHE_ENTRIES = 256
STEP_SECONDS = 20.0
"""Long rounds: the run spans minutes of simulated time, so churn events,
registration-lease decay and cache TTLs all get room to play out."""
DOWNTIME_SECONDS = 45.0

SERVICE_TIMES = ServiceTimeModel(
    default_ms=2.0,
    per_kind_ms={"search": 1.5, "routing": 4.0, "tiles": 0.5, "localization": 2.5},
)
SERVER_QUEUE_CAPACITY = 256

RETRY_POLICY = RetryPolicy.utilization_aware()
"""Utilization-aware exponential backoff: retries against a saturated
replica spread out, retries after a one-off blip stay fast."""

DEFAULT_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e14.json"
"""The committed, check.sh-gated artifact — written by the *smoke* sweep."""
FULL_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e14_full.json"
"""Default output of the full sweep, so exploratory runs never clobber the
byte-for-byte-gated smoke artifact."""


BALANCE_REPLICAS = 4
"""Replica count of the balance/detection comparison cells: a 4-replica
group is where first-healthy's funnel (CV ≈ 1.73) versus RFC 2782's 4-way
spread (CV < 0.15) is unmistakable."""


def build_churn_scenario(replicas: int, mode: str = WEIGHTED, shared_health: bool = False):
    """The standard E14 world: E13's city + stores, with store replication."""
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=DEVICE_CACHE_TTL_SECONDS,
        client_tile_cache_entries=TILE_CACHE_ENTRIES,
        service_times=SERVICE_TIMES,
        server_queue_capacity=SERVER_QUEUE_CAPACITY,
        retry_policy=RETRY_POLICY,
        replica_selection=mode,
        shared_health=shared_health,
    )
    return build_scenario(
        store_count=STORE_COUNT,
        city_rows=5,
        city_cols=5,
        config=config,
        seed=WORLD_SEED,
        reuse_worlds=True,
        store_replicas=replicas,
    )


def run_churn(
    replicas: int,
    churn_rate_per_minute: float,
    clients: int,
    steps: int,
    seed: int = WORKLOAD_SEED,
    mode: str = WEIGHTED,
    shared_health: bool = False,
    phase: str = "churn",
) -> dict[str, object]:
    """Run one (replica count × churn rate × policy) cell of the sweep."""
    started = time.perf_counter()
    scenario = build_churn_scenario(replicas, mode=mode, shared_health=shared_health)
    eligible = [
        server_id
        for index in range(STORE_COUNT)
        for server_id in scenario.store_replica_ids(index)
    ]
    schedule = ChurnSchedule.poisson(
        eligible,
        rate_per_minute=churn_rate_per_minute,
        horizon_seconds=steps * STEP_SECONDS,
        downtime_seconds=DOWNTIME_SECONDS,
        seed=CHURN_SEED,
    )
    engine = WorkloadEngine(
        scenario,
        WorkloadConfig(
            clients=clients,
            steps=steps,
            seed=seed,
            step_seconds=STEP_SECONDS,
            churn=schedule,
        ),
    )
    report = engine.run()
    wall_seconds = time.perf_counter() - started
    availability = report.availability()
    return {
        "mode": mode + ("+shared" if shared_health else ""),
        "replicas": replicas,
        "churn_per_min": churn_rate_per_minute,
        "requests": report.requests + report.errors,
        "failed_rate": availability["failed_request_rate"],
        "chain_fail_rate": availability["failed_chain_rate"],
        "stale_rate": availability["stale_attempt_rate"],
        "failovers": int(availability["failovers"]),
        "fo_p50_ms": availability["failover_p50_ms"],
        "fo_p95_ms": availability["failover_p95_ms"],
        "fo_p99_ms": availability["failover_p99_ms"],
        "load_cv": report.replica_load_cv,
        "detect_ms": availability["detect_mean_ms"],
        "events": int(availability["churn_events_applied"]),
        "rediscover": int(availability["rediscoveries"]),
        "redisc_mean_s": availability["rediscovery_seconds_mean"],
        # Carried for the JSON artifact (dropped from the printed table).
        "_phase": phase,
        "_shared_health": shared_health,
        "_selection": mode,
        "_availability": availability,
        "_scheduled_events": len(schedule),
        "_wall_seconds": wall_seconds,
        "_simulated_seconds": report.simulated_seconds,
        "_snapshot_digest": _digest(report.snapshot()),
    }


def _digest(snapshot: dict[str, float]) -> str:
    """A short stable fingerprint of a run's full snapshot (determinism)."""
    import hashlib

    payload = json.dumps(snapshot, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def sweep(
    replica_counts: list[int], churn_rates: list[float], clients: int, steps: int
) -> list[dict[str, object]]:
    """The availability grid plus the policy-comparison cells.

    The grid (``phase="churn"``) runs every (replica count × churn rate)
    cell under the default weighted selection.  On top of it, four cells on
    a :data:`BALANCE_REPLICAS`-replica deployment isolate the policies:
    first-healthy vs weighted with zero churn (pure balance), and weighted
    with per-device vs pool-shared health at the top churn rate (pure
    detection).
    """
    rows: list[dict[str, object]] = []
    for replicas in replica_counts:
        for rate in churn_rates:
            rows.append(run_churn(replicas, rate, clients, steps))
    top_rate = max(churn_rates)
    rows.append(
        run_churn(BALANCE_REPLICAS, 0.0, clients, steps, mode=FIRST_HEALTHY, phase="balance")
    )
    rows.append(
        run_churn(BALANCE_REPLICAS, 0.0, clients, steps, mode=WEIGHTED, phase="balance")
    )
    rows.append(
        run_churn(BALANCE_REPLICAS, top_rate, clients, steps, mode=WEIGHTED, phase="detection")
    )
    rows.append(
        run_churn(
            BALANCE_REPLICAS,
            top_rate,
            clients,
            steps,
            mode=WEIGHTED,
            shared_health=True,
            phase="detection",
        )
    )
    return rows


def table_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    return [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]


def emit_json(rows: list[dict[str, object]], clients: int, steps: int, path: Path) -> None:
    """Write the machine-readable availability/failover curves."""
    payload = {
        "experiment": "E14",
        "description": "availability and failover under federation churn "
        "(churn rate x replica count)",
        "world_seed": WORLD_SEED,
        "workload_seed": WORKLOAD_SEED,
        "churn_seed": CHURN_SEED,
        "clients": clients,
        "steps": steps,
        "step_seconds": STEP_SECONDS,
        "downtime_seconds": DOWNTIME_SECONDS,
        "retry_policy": {
            "kind": RETRY_POLICY.kind,
            "base_delay_ms": RETRY_POLICY.base_delay_ms,
            "max_attempts": RETRY_POLICY.max_attempts,
            "dead_server_timeout_ms": RETRY_POLICY.dead_server_timeout_ms,
        },
        "rows": [
            {
                "phase": row["_phase"],
                "selection": row["_selection"],
                "shared_health": row["_shared_health"],
                "replicas": row["replicas"],
                "churn_per_min": row["churn_per_min"],
                "requests": row["requests"],
                "scheduled_events": row["_scheduled_events"],
                "replica_load_cv": row["load_cv"],
                "availability": row["_availability"],
                "snapshot_digest": row["_snapshot_digest"],
                # Deliberately no wall-clock fields: the artifact must be
                # byte-identical across runs (check.sh enforces it).
                "simulated_seconds": row["_simulated_seconds"],
            }
            for row in rows
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def verify(rows: list[dict[str, object]], churn_rates: list[float]) -> list[str]:
    """The experiment's claims, checked on a sweep's rows."""
    failures: list[str] = []
    top_rate = max(churn_rates)
    baseline_rate = min(churn_rates)
    grid = [row for row in rows if row["_phase"] == "churn"]

    def cell(replicas: int, rate: float) -> dict[str, object] | None:
        for row in grid:
            if row["replicas"] == replicas and row["churn_per_min"] == rate:
                return row
        return None

    # (a) With a single replica, availability degrades as churn grows.
    single = [cell(1, rate) for rate in sorted(churn_rates)]
    if all(row is not None for row in single):
        curve = [row["failed_rate"] for row in single]
        if curve != sorted(curve):
            failures.append(f"single-replica failed-rate curve not monotone: {curve}")
        if curve[-1] <= curve[0] + 0.01:
            failures.append(
                f"churn did not degrade single-replica availability "
                f"({curve[0]:.4f} -> {curve[-1]:.4f})"
            )

    # (b) At the same top churn rate, an extra replica restores availability.
    degraded = cell(1, top_rate)
    restored = [cell(r, top_rate) for r in sorted({row["replicas"] for row in grid}) if r > 1]
    restored = [row for row in restored if row is not None]
    if degraded is not None and restored:
        if not any(row["failed_rate"] < 0.01 for row in restored):
            failures.append(
                "no replica count restored failed-request rate below 1% at "
                f"churn rate {top_rate}/min"
            )
        # (c) ...and the failover machinery actually engaged.
        if not any(row["failovers"] > 0 and row["fo_p95_ms"] > 0.0 for row in restored):
            failures.append("replicated runs recorded no failovers / failover latency")

    # With no churn, nothing should fail beyond the workload's own baseline.
    for row in grid:
        if row["churn_per_min"] == baseline_rate == 0.0 and row["chain_fail_rate"] > 0.0:
            failures.append(
                f"replica={row['replicas']}: chains failed with zero churn "
                f"({row['chain_fail_rate']:.4f})"
            )

    # (d) Balance: RFC 2782 weighted selection spreads a 4-replica group's
    # load near-uniformly; the legacy first-healthy ordering funnels it.
    balance = {row["_selection"]: row for row in rows if row["_phase"] == "balance"}
    weighted = balance.get("weighted")
    funneled = balance.get("first-healthy")
    if weighted is not None and weighted["load_cv"] >= 0.15:
        failures.append(
            f"weighted selection left replica load unbalanced "
            f"(cv={weighted['load_cv']:.3f}, expected < 0.15)"
        )
    if funneled is not None and funneled["load_cv"] <= 0.8:
        failures.append(
            f"first-healthy unexpectedly balanced replica load "
            f"(cv={funneled['load_cv']:.3f}, expected > 0.8)"
        )

    # (e) Detection: pool-shared health cuts the mean cost of learning a
    # replica is dead below one dead-server timeout (and below per-device).
    detection = {row["_shared_health"]: row for row in rows if row["_phase"] == "detection"}
    solo = detection.get(False)
    pooled = detection.get(True)
    if pooled is not None:
        timeout_ms = RETRY_POLICY.dead_server_timeout_ms
        if pooled["detect_ms"] >= timeout_ms:
            failures.append(
                f"shared health did not cut mean time-to-detect below one "
                f"dead-server timeout ({pooled['detect_ms']:.1f}ms >= {timeout_ms:.0f}ms)"
            )
        shared_detections = pooled["_availability"]["dead_detections_shared"]
        if shared_detections <= 0:
            failures.append("shared-health run recorded no pool-learned detections")
        if solo is not None and pooled["detect_ms"] >= solo["detect_ms"]:
            failures.append(
                f"shared health did not beat per-device detection "
                f"({pooled['detect_ms']:.1f}ms >= {solo['detect_ms']:.1f}ms)"
            )
    return failures


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_e14_availability_degrades_and_replicas_restore(benchmark):
    """Churn kills single-replica availability; one more replica restores it."""
    rates = [0.0, 3.0]
    # The smoke fleet size: verify()'s balance thresholds (CV < 0.15 for
    # weighted selection) are calibrated against this workload.
    rows = sweep([1, 2], rates, clients=24, steps=10)
    print_table("E14 churn x replicas", table_rows(rows))
    assert not verify(rows, rates)
    benchmark.extra_info["failed_rate_r1"] = rows[1]["failed_rate"]
    benchmark(lambda: run_churn(1, 3.0, clients=8, steps=4))


def test_e14_deterministic(benchmark):
    """Fixed seeds give byte-identical availability snapshots."""
    first = run_churn(2, 3.0, clients=12, steps=6)
    second = run_churn(2, 3.0, clients=12, steps=6)
    assert first["_snapshot_digest"] == second["_snapshot_digest"]
    benchmark(lambda: run_churn(2, 3.0, clients=8, steps=4))


# ----------------------------------------------------------------------
# Standalone mode
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep (finishes in seconds) for CI smoke checks",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=f"where to write the sweep artifact (smoke default {DEFAULT_JSON_PATH.name} "
        f"— the committed, byte-for-byte-gated artifact; full-sweep default "
        f"{FULL_JSON_PATH.name} so exploration never clobbers the gated file)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON artifact"
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="fail (exit 1) if the sweep takes longer than this wall-clock budget",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        replica_counts = [1, 2, 3]
        churn_rates = [0.0, 1.5, 3.0]
        clients, steps = 24, 10
    else:
        replica_counts = [1, 2, 3]
        churn_rates = [0.0, 1.0, 3.0, 6.0]
        clients, steps = 100, 12

    started = time.perf_counter()
    rows = sweep(replica_counts, churn_rates, clients, steps)
    elapsed = time.perf_counter() - started
    print_table("E14 availability under churn (replicas x churn rate)", table_rows(rows))

    failures = verify(rows, churn_rates)

    # Determinism: the cheapest degraded cell must reproduce exactly.
    repeat = run_churn(1, max(churn_rates), clients, steps)
    reference = next(
        row for row in rows
        if row["replicas"] == 1 and row["churn_per_min"] == max(churn_rates)
    )
    if repeat["_snapshot_digest"] != reference["_snapshot_digest"]:
        failures.append("rerun with fixed seed produced a different snapshot")

    json_path = args.json if args.json is not None else (DEFAULT_JSON_PATH if args.smoke else FULL_JSON_PATH)
    if not args.no_json:
        emit_json(rows, clients, steps, json_path)
        print(f"\nwrote {json_path}")

    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        failures.append(
            f"sweep took {elapsed:.1f}s, over the {args.budget_seconds:.1f}s budget "
            "(hot-path regression?)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"\nOK: churn degrades single-replica availability, replication restores "
        f"it below 1% failed requests, failover latency measured ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
