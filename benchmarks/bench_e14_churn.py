"""E14 — federation churn: availability and failover under membership churn.

The paper's discovery story assumes map servers are long-lived DNS
registrants; production federations churn.  This experiment sweeps *churn
rate* (Poisson crash/rejoin arrivals per simulated minute over the store
servers) against *replica count* (each store deployed as a replica group
advertising the same coverage cells) and measures what clients experience:

* **failed-request rate** — client requests that got no service at all
  (every replica chain they tried was exhausted);
* **stale-attempt rate** — attempts addressed to dead servers because the
  device acted on TTL-stale cached discovery results;
* **failover latency** — p50/p95/p99 from first failure detection to
  success on another replica (dead-server timeouts + retry backoff + the
  winning attempt);
* **time-to-rediscovery** — how long after a crashed server re-registers
  until the fleet's traffic reaches it again.

Runs three ways, like E13:

* under pytest-benchmark;
* standalone smoke: ``python benchmarks/bench_e14_churn.py --smoke`` —
  the reduced sweep used by ``scripts/check.sh`` (wall-clock budgeted via
  ``--budget-seconds``); the smoke sweep *is* the committed artifact, so
  every check run re-verifies that ``BENCH_e14.json`` reproduces;
* the full sweep (no flags) runs a larger fleet over more churn rates.

Everything is deterministic under the fixed seeds: the same invocation
rewrites byte-identical JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.churn import ChurnSchedule, RetryPolicy
from repro.core.config import FederationConfig
from repro.simulation.queueing import ServiceTimeModel
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _util import print_table  # noqa: E402

WORLD_SEED = 33
WORKLOAD_SEED = 7
CHURN_SEED = 5
STORE_COUNT = 2
DEVICE_CACHE_TTL_SECONDS = 120.0
TILE_CACHE_ENTRIES = 256
STEP_SECONDS = 20.0
"""Long rounds: the run spans minutes of simulated time, so churn events,
registration-lease decay and cache TTLs all get room to play out."""
DOWNTIME_SECONDS = 45.0

SERVICE_TIMES = ServiceTimeModel(
    default_ms=2.0,
    per_kind_ms={"search": 1.5, "routing": 4.0, "tiles": 0.5, "localization": 2.5},
)
SERVER_QUEUE_CAPACITY = 256

RETRY_POLICY = RetryPolicy.utilization_aware()
"""Utilization-aware exponential backoff: retries against a saturated
replica spread out, retries after a one-off blip stay fast."""

DEFAULT_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e14.json"


def build_churn_scenario(replicas: int):
    """The standard E14 world: E13's city + stores, with store replication."""
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=DEVICE_CACHE_TTL_SECONDS,
        client_tile_cache_entries=TILE_CACHE_ENTRIES,
        service_times=SERVICE_TIMES,
        server_queue_capacity=SERVER_QUEUE_CAPACITY,
        retry_policy=RETRY_POLICY,
    )
    return build_scenario(
        store_count=STORE_COUNT,
        city_rows=5,
        city_cols=5,
        config=config,
        seed=WORLD_SEED,
        reuse_worlds=True,
        store_replicas=replicas,
    )


def run_churn(
    replicas: int,
    churn_rate_per_minute: float,
    clients: int,
    steps: int,
    seed: int = WORKLOAD_SEED,
) -> dict[str, object]:
    """Run one (replica count × churn rate) cell of the sweep."""
    started = time.perf_counter()
    scenario = build_churn_scenario(replicas)
    eligible = [
        server_id
        for index in range(STORE_COUNT)
        for server_id in scenario.store_replica_ids(index)
    ]
    schedule = ChurnSchedule.poisson(
        eligible,
        rate_per_minute=churn_rate_per_minute,
        horizon_seconds=steps * STEP_SECONDS,
        downtime_seconds=DOWNTIME_SECONDS,
        seed=CHURN_SEED,
    )
    engine = WorkloadEngine(
        scenario,
        WorkloadConfig(
            clients=clients,
            steps=steps,
            seed=seed,
            step_seconds=STEP_SECONDS,
            churn=schedule,
        ),
    )
    report = engine.run()
    wall_seconds = time.perf_counter() - started
    availability = report.availability()
    return {
        "replicas": replicas,
        "churn_per_min": churn_rate_per_minute,
        "requests": report.requests + report.errors,
        "failed_rate": availability["failed_request_rate"],
        "chain_fail_rate": availability["failed_chain_rate"],
        "stale_rate": availability["stale_attempt_rate"],
        "failovers": int(availability["failovers"]),
        "fo_p50_ms": availability["failover_p50_ms"],
        "fo_p95_ms": availability["failover_p95_ms"],
        "fo_p99_ms": availability["failover_p99_ms"],
        "events": int(availability["churn_events_applied"]),
        "rediscover": int(availability["rediscoveries"]),
        "redisc_mean_s": availability["rediscovery_seconds_mean"],
        # Carried for the JSON artifact (dropped from the printed table).
        "_availability": availability,
        "_scheduled_events": len(schedule),
        "_wall_seconds": wall_seconds,
        "_simulated_seconds": report.simulated_seconds,
        "_snapshot_digest": _digest(report.snapshot()),
    }


def _digest(snapshot: dict[str, float]) -> str:
    """A short stable fingerprint of a run's full snapshot (determinism)."""
    import hashlib

    payload = json.dumps(snapshot, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def sweep(
    replica_counts: list[int], churn_rates: list[float], clients: int, steps: int
) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for replicas in replica_counts:
        for rate in churn_rates:
            rows.append(run_churn(replicas, rate, clients, steps))
    return rows


def table_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    return [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]


def emit_json(rows: list[dict[str, object]], clients: int, steps: int, path: Path) -> None:
    """Write the machine-readable availability/failover curves."""
    payload = {
        "experiment": "E14",
        "description": "availability and failover under federation churn "
        "(churn rate x replica count)",
        "world_seed": WORLD_SEED,
        "workload_seed": WORKLOAD_SEED,
        "churn_seed": CHURN_SEED,
        "clients": clients,
        "steps": steps,
        "step_seconds": STEP_SECONDS,
        "downtime_seconds": DOWNTIME_SECONDS,
        "retry_policy": {
            "kind": RETRY_POLICY.kind,
            "base_delay_ms": RETRY_POLICY.base_delay_ms,
            "max_attempts": RETRY_POLICY.max_attempts,
            "dead_server_timeout_ms": RETRY_POLICY.dead_server_timeout_ms,
        },
        "rows": [
            {
                "replicas": row["replicas"],
                "churn_per_min": row["churn_per_min"],
                "requests": row["requests"],
                "scheduled_events": row["_scheduled_events"],
                "availability": row["_availability"],
                "snapshot_digest": row["_snapshot_digest"],
                # Deliberately no wall-clock fields: the artifact must be
                # byte-identical across runs (check.sh enforces it).
                "simulated_seconds": row["_simulated_seconds"],
            }
            for row in rows
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def verify(rows: list[dict[str, object]], churn_rates: list[float]) -> list[str]:
    """The experiment's claims, checked on a sweep's rows."""
    failures: list[str] = []
    top_rate = max(churn_rates)
    baseline_rate = min(churn_rates)

    def cell(replicas: int, rate: float) -> dict[str, object] | None:
        for row in rows:
            if row["replicas"] == replicas and row["churn_per_min"] == rate:
                return row
        return None

    # (a) With a single replica, availability degrades as churn grows.
    single = [cell(1, rate) for rate in sorted(churn_rates)]
    if all(row is not None for row in single):
        curve = [row["failed_rate"] for row in single]
        if curve != sorted(curve):
            failures.append(f"single-replica failed-rate curve not monotone: {curve}")
        if curve[-1] <= curve[0] + 0.01:
            failures.append(
                f"churn did not degrade single-replica availability "
                f"({curve[0]:.4f} -> {curve[-1]:.4f})"
            )

    # (b) At the same top churn rate, an extra replica restores availability.
    degraded = cell(1, top_rate)
    restored = [cell(r, top_rate) for r in sorted({row["replicas"] for row in rows}) if r > 1]
    restored = [row for row in restored if row is not None]
    if degraded is not None and restored:
        if not any(row["failed_rate"] < 0.01 for row in restored):
            failures.append(
                "no replica count restored failed-request rate below 1% at "
                f"churn rate {top_rate}/min"
            )
        # (c) ...and the failover machinery actually engaged.
        if not any(row["failovers"] > 0 and row["fo_p95_ms"] > 0.0 for row in restored):
            failures.append("replicated runs recorded no failovers / failover latency")

    # With no churn, nothing should fail beyond the workload's own baseline.
    for row in rows:
        if row["churn_per_min"] == baseline_rate == 0.0 and row["chain_fail_rate"] > 0.0:
            failures.append(
                f"replica={row['replicas']}: chains failed with zero churn "
                f"({row['chain_fail_rate']:.4f})"
            )
    return failures


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_e14_availability_degrades_and_replicas_restore(benchmark):
    """Churn kills single-replica availability; one more replica restores it."""
    rates = [0.0, 3.0]
    rows = sweep([1, 2], rates, clients=16, steps=8)
    print_table("E14 churn x replicas", table_rows(rows))
    assert not verify(rows, rates)
    benchmark.extra_info["failed_rate_r1"] = rows[1]["failed_rate"]
    benchmark(lambda: run_churn(1, 3.0, clients=8, steps=4))


def test_e14_deterministic(benchmark):
    """Fixed seeds give byte-identical availability snapshots."""
    first = run_churn(2, 3.0, clients=12, steps=6)
    second = run_churn(2, 3.0, clients=12, steps=6)
    assert first["_snapshot_digest"] == second["_snapshot_digest"]
    benchmark(lambda: run_churn(2, 3.0, clients=8, steps=4))


# ----------------------------------------------------------------------
# Standalone mode
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep (finishes in seconds) for CI smoke checks",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_JSON_PATH,
        help=f"where to write the sweep artifact (default {DEFAULT_JSON_PATH.name}; "
        "the smoke sweep is the committed artifact, so check runs re-verify "
        "that it reproduces)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON artifact"
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="fail (exit 1) if the sweep takes longer than this wall-clock budget",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        replica_counts = [1, 2, 3]
        churn_rates = [0.0, 1.5, 3.0]
        clients, steps = 24, 10
    else:
        replica_counts = [1, 2, 3]
        churn_rates = [0.0, 1.0, 3.0, 6.0]
        clients, steps = 100, 12

    started = time.perf_counter()
    rows = sweep(replica_counts, churn_rates, clients, steps)
    elapsed = time.perf_counter() - started
    print_table("E14 availability under churn (replicas x churn rate)", table_rows(rows))

    failures = verify(rows, churn_rates)

    # Determinism: the cheapest degraded cell must reproduce exactly.
    repeat = run_churn(1, max(churn_rates), clients, steps)
    reference = next(
        row for row in rows
        if row["replicas"] == 1 and row["churn_per_min"] == max(churn_rates)
    )
    if repeat["_snapshot_digest"] != reference["_snapshot_digest"]:
        failures.append("rerun with fixed seed produced a different snapshot")

    if not args.no_json:
        emit_json(rows, clients, steps, args.json)
        print(f"\nwrote {args.json}")

    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        failures.append(
            f"sweep took {elapsed:.1f}s, over the {args.budget_seconds:.1f}s budget "
            "(hot-path regression?)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"\nOK: churn degrades single-replica availability, replication restores "
        f"it below 1% failed requests, failover latency measured ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
