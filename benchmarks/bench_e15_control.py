"""E15 — operator control plane: live drains, convergence and warm standbys.

The churn experiments (E14) measure what *happens to* a federation; this one
measures what an operator can *do to* a live one through the control plane
(:mod:`repro.control`) while a client fleet keeps issuing traffic:

* **drain convergence** — re-weight a live replica to 0 mid-run (RFC 2782:
  healthy but last-resort) and watch its traffic move to pool mates as each
  device's cached SRV view expires.  The sweep crosses *when* the drain
  lands (drain round) with the *DNS record TTL* (the registration TTL on
  the SRV records), because the client-observed convergence lag is exactly
  the cache decay: a device converges once its own discovery-cache entries
  and its resolver pool's DNS entries have both lapsed, and the DNS TTL is
  the binding clock.  Headline: time-to-converge p50/p95 from
  ``WorkloadReport.control_stats`` — within one DNS TTL (plus the device
  cache TTL and a round of quantization) — with **zero** failed requests: a
  drain is not an outage.
* **warm standby** — a 2-replica group with priorities ``(0, 1)``: the
  tier-1 standby receives *no* traffic while tier 0 serves (strict-tier
  invariant), absorbs the load when tier 0 crashes, and an operator that
  reacts (promote the standby to tier 0, drain the corpse to weight 0)
  spares the fleet most of the dead-server timeouts a cold failover pays.

Runs three ways, like E13/E14:

* under pytest-benchmark;
* standalone smoke: ``python benchmarks/bench_e15_control.py --smoke`` —
  the reduced sweep used by ``scripts/check.sh`` (wall-clock budgeted via
  ``--budget-seconds``); the smoke sweep *is* the committed artifact, so
  every check run re-verifies that ``BENCH_e15.json`` reproduces;
* the full sweep (no flags) runs a larger fleet over more drain/TTL cells.

Everything is deterministic under the fixed seeds: the same invocation
rewrites byte-identical JSON.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.churn import RetryPolicy
from repro.churn.schedule import ChurnEvent, ChurnEventKind, ChurnSchedule
from repro.control import ControlEvent, ControlEventKind, ControlSchedule
from repro.core.config import FederationConfig
from repro.simulation.queueing import ServiceTimeModel
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _util import print_table  # noqa: E402

WORLD_SEED = 33
WORKLOAD_SEED = 7
STEP_SECONDS = 20.0
"""Long rounds, as in E14: control events, cache TTLs and the registration
TTL all get room to play out inside a run."""
DEVICE_TTL_SECONDS = 20.0
"""Per-device discovery-cache TTL (fixed; the sweep varies the DNS TTL)."""
STANDBY_DNS_TTL_SECONDS = 60.0
"""DNS record TTL of the standby cells — short enough that the operator's
promotion/drain reaches clients well inside the post-crash window."""
RESOLVER_POOLS = 3
"""Drain cells shard the fleet across regional resolver pools, so the
pools' DNS entries expire (and refresh) independently."""
DRAIN_REPLICAS = 4
"""Drain cells run a 4-replica group: one drained replica leaves three
mates to absorb its share, so the traffic shift is unmistakable."""
STANDBY_CRASH_AT_SECONDS = 40.0

SERVICE_TIMES = ServiceTimeModel(
    default_ms=2.0,
    per_kind_ms={"search": 1.5, "routing": 4.0, "tiles": 0.5, "localization": 2.5},
)
SERVER_QUEUE_CAPACITY = 256

RETRY_POLICY = RetryPolicy.utilization_aware()

DEFAULT_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e15.json"
"""The committed, check.sh-gated artifact — written by the *smoke* sweep."""
FULL_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e15_full.json"
"""Default output of the full sweep, so exploratory runs never clobber the
byte-for-byte-gated smoke artifact."""


def build_control_scenario(
    dns_ttl_seconds: float,
    replicas: int = DRAIN_REPLICAS,
    priorities: tuple[int, ...] | None = None,
):
    """The E15 world: one replicated store in a small city, short DNS TTLs.

    The registration TTL (the TTL on every SRV record the store's replicas
    publish) is the experiment's sweep knob: it bounds how long resolver
    pools and device caches may serve a pre-drain answer.
    """
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=DEVICE_TTL_SECONDS,
        registration_ttl_seconds=dns_ttl_seconds,
        client_tile_cache_entries=256,
        service_times=SERVICE_TIMES,
        server_queue_capacity=SERVER_QUEUE_CAPACITY,
        retry_policy=RETRY_POLICY,
    )
    return build_scenario(
        store_count=1,
        city_rows=5,
        city_cols=5,
        config=config,
        seed=WORLD_SEED,
        reuse_worlds=True,
        store_replicas=replicas,
        store_replica_priorities=priorities,
    )


def _row(
    label: str,
    phase: str,
    report,
    scenario,
    wall_seconds: float,
    drained_id: str | None = None,
    standby_id: str | None = None,
    **extra,
) -> dict[str, object]:
    availability = report.availability()
    control = report.control_stats
    replica_ids = scenario.store_replica_ids(0)
    arrivals = {
        server_id: report.server_stats.get(server_id, {}).get("arrivals", 0.0)
        for server_id in replica_ids
    }
    drained_share = 0.0
    mates_min_share = 0.0
    if drained_id is not None and sum(arrivals.values()) > 0:
        total = sum(arrivals.values())
        drained_share = arrivals[drained_id] / total
        mates_min_share = min(
            value / total for sid, value in arrivals.items() if sid != drained_id
        )
    row: dict[str, object] = {
        "cell": label,
        "requests": report.requests + report.errors,
        "failed": int(availability["failed_requests"]),
        "stale": int(availability["stale_attempts"]),
        "own_det": int(availability["dead_detections_own"]),
        "tracked": int(control.get("devices_tracked", 0.0)),
        "converged": int(control.get("devices_converged", 0.0)),
        "conv_p50_s": control.get("converge_p50_s", 0.0),
        "conv_p95_s": control.get("converge_p95_s", 0.0),
        "drained_share": drained_share,
        "standby_arr": int(arrivals[standby_id]) if standby_id is not None else 0,
        # Carried for the JSON artifact (dropped from the printed table).
        "_phase": phase,
        "_mates_min_share": mates_min_share,
        "_availability": availability,
        "_control": dict(sorted(control.items())),
        "_replica_arrivals": {sid: arrivals[sid] for sid in replica_ids},
        "_wall_seconds": wall_seconds,
        "_simulated_seconds": report.simulated_seconds,
        "_snapshot_digest": _digest(report.snapshot()),
    }
    row.update(extra)
    return row


def _digest(snapshot: dict[str, float]) -> str:
    """A short stable fingerprint of a run's full snapshot (determinism)."""
    payload = json.dumps(snapshot, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def run_drain(
    drain_round: int,
    dns_ttl_seconds: float,
    clients: int,
    steps: int,
    seed: int = WORKLOAD_SEED,
) -> dict[str, object]:
    """One drain cell: weight replica 0 to zero at a chosen round boundary."""
    started = time.perf_counter()
    scenario = build_control_scenario(dns_ttl_seconds)
    drained = scenario.store_replica_ids(0)[0]
    schedule = ControlSchedule.from_events(
        [ControlEvent(drain_round * STEP_SECONDS, ControlEventKind.DRAIN, drained)]
    )
    engine = WorkloadEngine(
        scenario,
        WorkloadConfig(
            clients=clients,
            steps=steps,
            seed=seed,
            step_seconds=STEP_SECONDS,
            control=schedule,
            resolver_pools=RESOLVER_POOLS,
        ),
    )
    report = engine.run()
    return _row(
        f"drain@r{drain_round}/ttl{dns_ttl_seconds:g}",
        "drain",
        report,
        scenario,
        time.perf_counter() - started,
        drained_id=drained,
        drain_round=drain_round,
        dns_ttl_s=dns_ttl_seconds,
    )


def run_drain_baseline(
    dns_ttl_seconds: float,
    clients: int,
    steps: int,
    seed: int = WORKLOAD_SEED,
) -> dict[str, object]:
    """The drain grid's control cell: the identical run with no control tape.

    Whatever this cell fails is the workload's own baseline (e.g. routing
    aborts at fleet scale), so "zero failed requests attributable to the
    drain" is checked as *failed(drain cell) == failed(baseline)*, not as an
    absolute zero that breaks the moment the underlying workload has any.
    """
    started = time.perf_counter()
    scenario = build_control_scenario(dns_ttl_seconds)
    engine = WorkloadEngine(
        scenario,
        WorkloadConfig(
            clients=clients,
            steps=steps,
            seed=seed,
            step_seconds=STEP_SECONDS,
            resolver_pools=RESOLVER_POOLS,
        ),
    )
    report = engine.run()
    return _row(
        f"baseline/ttl{dns_ttl_seconds:g}",
        "baseline",
        report,
        scenario,
        time.perf_counter() - started,
        drain_round=0,
        dns_ttl_s=dns_ttl_seconds,
    )


def run_standby(
    operator_reacts: bool,
    crash: bool,
    clients: int,
    steps: int,
    seed: int = WORKLOAD_SEED,
) -> dict[str, object]:
    """One warm-standby cell: priorities (0, 1), optional crash + reaction.

    ``operator_reacts`` scripts the control tape an on-call operator would
    run the moment tier 0 dies: promote the standby into tier 0 and drain
    the corpse to weight 0, so clients stop trying the dead primary as soon
    as their cached SRV views converge — instead of every device paying its
    own dead-server timeout for the full record/cache decay window.
    """
    started = time.perf_counter()
    scenario = build_control_scenario(
        STANDBY_DNS_TTL_SECONDS, replicas=2, priorities=(0, 1)
    )
    primary, standby = scenario.store_replica_ids(0)
    churn = None
    if crash:
        churn = ChurnSchedule.from_events(
            [ChurnEvent(STANDBY_CRASH_AT_SECONDS, ChurnEventKind.CRASH, primary)]
        )
    control = None
    if operator_reacts:
        control = ControlSchedule.from_events(
            [
                ControlEvent(
                    STANDBY_CRASH_AT_SECONDS, ControlEventKind.PROMOTE, standby, 0
                ),
                ControlEvent(
                    STANDBY_CRASH_AT_SECONDS, ControlEventKind.SET_WEIGHT, primary, 0
                ),
            ]
        )
    engine = WorkloadEngine(
        scenario,
        WorkloadConfig(
            clients=clients,
            steps=steps,
            seed=seed,
            step_seconds=STEP_SECONDS,
            churn=churn,
            control=control,
        ),
    )
    report = engine.run()
    label = "standby-idle" if not crash else (
        "standby-promoted" if operator_reacts else "standby-cold"
    )
    return _row(
        label,
        "standby",
        report,
        scenario,
        time.perf_counter() - started,
        standby_id=standby,
        drain_round=0,
        dns_ttl_s=STANDBY_DNS_TTL_SECONDS,
    )


def sweep(
    drain_rounds: list[int],
    dns_ttls: list[float],
    clients: int,
    steps: int,
) -> list[dict[str, object]]:
    """The drain grid (with per-TTL baselines) plus the standby cells."""
    rows: list[dict[str, object]] = []
    for ttl in dns_ttls:
        rows.append(run_drain_baseline(ttl, clients, steps))
    for drain_round in drain_rounds:
        for ttl in dns_ttls:
            rows.append(run_drain(drain_round, ttl, clients, steps))
    rows.append(run_standby(False, False, clients, steps))
    rows.append(run_standby(False, True, clients, steps))
    rows.append(run_standby(True, True, clients, steps))
    return rows


def table_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    return [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]


def emit_json(rows: list[dict[str, object]], clients: int, steps: int, path: Path) -> None:
    """Write the machine-readable drain-convergence / standby curves."""
    payload = {
        "experiment": "E15",
        "description": "operator control plane: drain convergence "
        "(drain round x device TTL) and warm-standby tiers",
        "world_seed": WORLD_SEED,
        "workload_seed": WORKLOAD_SEED,
        "clients": clients,
        "steps": steps,
        "step_seconds": STEP_SECONDS,
        "device_ttl_seconds": DEVICE_TTL_SECONDS,
        "resolver_pools": RESOLVER_POOLS,
        "standby_dns_ttl_seconds": STANDBY_DNS_TTL_SECONDS,
        "standby_crash_at_seconds": STANDBY_CRASH_AT_SECONDS,
        "retry_policy": {
            "kind": RETRY_POLICY.kind,
            "base_delay_ms": RETRY_POLICY.base_delay_ms,
            "max_attempts": RETRY_POLICY.max_attempts,
            "dead_server_timeout_ms": RETRY_POLICY.dead_server_timeout_ms,
        },
        "rows": [
            {
                "phase": row["_phase"],
                "cell": row["cell"],
                "drain_round": row["drain_round"],
                "dns_ttl_s": row["dns_ttl_s"],
                "requests": row["requests"],
                "failed_requests": row["failed"],
                "stale_attempts": row["stale"],
                "dead_detections_own": row["own_det"],
                "drained_share": row["drained_share"],
                "standby_arrivals": row["standby_arr"],
                "replica_arrivals": row["_replica_arrivals"],
                "control": row["_control"],
                "availability": row["_availability"],
                "snapshot_digest": row["_snapshot_digest"],
                # Deliberately no wall-clock fields: the artifact must be
                # byte-identical across runs (check.sh enforces it).
                "simulated_seconds": row["_simulated_seconds"],
            }
            for row in rows
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def verify(rows: list[dict[str, object]], dns_ttls: list[float]) -> list[str]:
    """The experiment's claims, checked on a sweep's rows."""
    failures: list[str] = []
    drains = [row for row in rows if row["_phase"] == "drain"]
    baseline_failed = {
        row["dns_ttl_s"]: row["failed"] for row in rows if row["_phase"] == "baseline"
    }

    for row in drains:
        # (a) A drain is not an outage: no failed request beyond the same
        # workload's no-control baseline, and nothing goes stale.
        expected = baseline_failed.get(row["dns_ttl_s"], 0)
        if row["failed"] != expected:
            failures.append(
                f"{row['cell']}: {row['failed']} failed requests vs "
                f"{expected} in the no-drain baseline"
            )
        if row["stale"] != 0:
            failures.append(f"{row['cell']}: drain produced {row['stale']} stale attempts")
        # (b) Devices holding stale views all converge, within the decay
        # window: their own cache TTL plus one DNS TTL.
        if row["tracked"] == 0 or row["converged"] < row["tracked"]:
            failures.append(
                f"{row['cell']}: {row['converged']}/{row['tracked']} devices converged"
            )
        window = DEVICE_TTL_SECONDS + row["dns_ttl_s"] + 2 * STEP_SECONDS
        if row["conv_p95_s"] > window:
            failures.append(
                f"{row['cell']}: converge p95 {row['conv_p95_s']:.1f}s exceeds one "
                f"DNS TTL plus the device cache window ({window:.0f}s)"
            )
        # (c) The drained replica actually starved: over the whole run it
        # took strictly less than every pool mate (a late drain still shows
        # its pre-drain share, so the whole-run number only has to be
        # *below* the balanced split, not near zero).
        if row["drained_share"] >= row["_mates_min_share"]:
            failures.append(
                f"{row['cell']}: drained replica took {row['drained_share']:.1%}, "
                f"not less than its least-loaded mate ({row['_mates_min_share']:.1%})"
            )
        # For the earliest drain (most of the run post-drain) the collapse
        # must be unmistakable: well under half the balanced 1/N share.
        if row["drain_round"] == min(r["drain_round"] for r in drains):
            equal_share = 1.0 / DRAIN_REPLICAS
            if row["drained_share"] >= 0.6 * equal_share:
                failures.append(
                    f"{row['cell']}: early drain left the replica at "
                    f"{row['drained_share']:.1%} of group traffic"
                )

    # (d) The DNS TTL is the convergence lever: for each drain round, a
    # shorter record TTL converges strictly no slower than a longer one.
    small, large = min(dns_ttls), max(dns_ttls)
    if small != large:
        by_round: dict[int, dict[float, float]] = {}
        for row in drains:
            by_round.setdefault(row["drain_round"], {})[row["dns_ttl_s"]] = row[
                "conv_p95_s"
            ]
        for drain_round, curve in sorted(by_round.items()):
            if small in curve and large in curve and curve[small] > curve[large]:
                failures.append(
                    f"drain@r{drain_round}: DNS TTL {small:g}s converged slower than "
                    f"TTL {large:g}s ({curve[small]:.1f}s > {curve[large]:.1f}s)"
                )

    standby = {row["cell"]: row for row in rows if row["_phase"] == "standby"}
    idle = standby.get("standby-idle")
    cold = standby.get("standby-cold")
    promoted = standby.get("standby-promoted")
    # (e) Strict-tier invariant: the tier-1 standby sees no traffic while
    # tier 0 serves, and absorbs it once tier 0 is down.
    if idle is not None and idle["standby_arr"] != 0:
        failures.append(
            f"standby-idle: tier-1 standby served {idle['standby_arr']} requests "
            "with tier 0 healthy"
        )
    for row in (cold, promoted):
        if row is not None and row["standby_arr"] == 0:
            failures.append(f"{row['cell']}: standby absorbed no traffic after the crash")
        if row is not None and row["_availability"]["failed_request_rate"] > 0.01:
            failures.append(
                f"{row['cell']}: failed-request rate "
                f"{row['_availability']['failed_request_rate']:.4f} despite the standby"
            )
    # (f) The operator reaction pays: promotion + drain spares the fleet
    # dead-server timeouts a cold failover keeps paying.
    if cold is not None and promoted is not None:
        if promoted["stale"] >= cold["stale"]:
            failures.append(
                f"promotion did not cut stale attempts "
                f"({promoted['stale']} >= {cold['stale']})"
            )
        if promoted["own_det"] > cold["own_det"]:
            failures.append(
                f"promotion increased own dead detections "
                f"({promoted['own_det']} > {cold['own_det']})"
            )
    return failures


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_e15_drain_converges_without_failures(benchmark):
    """A live drain moves traffic within one DNS TTL, zero failures."""
    rows = sweep([2], [40.0, 80.0], clients=24, steps=12)
    print_table("E15 drain convergence + warm standby", table_rows(rows))
    assert not verify(rows, [40.0, 80.0])
    benchmark.extra_info["conv_p95_s"] = rows[0]["conv_p95_s"]
    benchmark(lambda: run_drain(2, 40.0, clients=8, steps=6))


def test_e15_deterministic(benchmark):
    """Fixed seeds give byte-identical control-plane snapshots."""
    first = run_drain(2, 40.0, clients=12, steps=8)
    second = run_drain(2, 40.0, clients=12, steps=8)
    assert first["_snapshot_digest"] == second["_snapshot_digest"]
    benchmark(lambda: run_standby(True, True, clients=8, steps=6))


# ----------------------------------------------------------------------
# Standalone mode
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep (finishes in seconds) for CI smoke checks",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=f"where to write the sweep artifact (smoke default {DEFAULT_JSON_PATH.name} "
        f"— the committed, byte-for-byte-gated artifact; full-sweep default "
        f"{FULL_JSON_PATH.name} so exploration never clobbers the gated file)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON artifact"
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="fail (exit 1) if the sweep takes longer than this wall-clock budget",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        drain_rounds = [2, 5]
        dns_ttls = [40.0, 80.0]
        clients, steps = 24, 12
    else:
        drain_rounds = [2, 5, 8]
        dns_ttls = [30.0, 60.0, 120.0]
        clients, steps = 64, 14

    started = time.perf_counter()
    rows = sweep(drain_rounds, dns_ttls, clients, steps)
    elapsed = time.perf_counter() - started
    print_table("E15 operator control plane (drain round x DNS TTL)", table_rows(rows))

    failures = verify(rows, dns_ttls)

    # Determinism: the first drain cell must reproduce exactly.
    repeat = run_drain(drain_rounds[0], dns_ttls[0], clients, steps)
    reference = next(
        row
        for row in rows
        if row["_phase"] == "drain"
        and row["drain_round"] == drain_rounds[0]
        and row["dns_ttl_s"] == dns_ttls[0]
    )
    if repeat["_snapshot_digest"] != reference["_snapshot_digest"]:
        failures.append("rerun with fixed seed produced a different snapshot")

    json_path = args.json if args.json is not None else (DEFAULT_JSON_PATH if args.smoke else FULL_JSON_PATH)
    if not args.no_json:
        emit_json(rows, clients, steps, json_path)
        print(f"\nwrote {json_path}")

    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        failures.append(
            f"sweep took {elapsed:.1f}s, over the {args.budget_seconds:.1f}s budget "
            "(hot-path regression?)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"\nOK: live drains converge within the cache-decay window with zero "
        f"failed requests; warm standbys idle until tier 0 dies; operator "
        f"promotion beats cold failover ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
