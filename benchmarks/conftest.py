"""Shared fixtures for the benchmark harness.

Each ``bench_e*.py`` file regenerates one experiment from EXPERIMENTS.md.
Expensive world construction is session-scoped; benchmark functions measure
the steady-state request path and attach the experiment's headline numbers
(recall, error, stretch, message counts) to ``benchmark.extra_info`` so they
appear in the saved benchmark data as well as on stdout.
"""

from __future__ import annotations

import random

import pytest

from repro.worldgen.scenario import FederatedScenario, build_scenario


@pytest.fixture(scope="session")
def bench_scenario() -> FederatedScenario:
    """The standard benchmark world: a 6x6 city, three stores, no campus."""
    return build_scenario(store_count=3, include_campus=False, city_rows=6, city_cols=6, seed=42)


@pytest.fixture(scope="session")
def bench_scenario_with_campus() -> FederatedScenario:
    """A separate world including the campus (used by the privacy experiment)."""
    return build_scenario(store_count=1, include_campus=True, city_rows=5, city_cols=5, seed=43)


@pytest.fixture(scope="session")
def bench_client(bench_scenario: FederatedScenario):
    return bench_scenario.federation.client()


@pytest.fixture()
def bench_rng() -> random.Random:
    return random.Random(2024)
