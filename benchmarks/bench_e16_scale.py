"""E16 — scale: 100k-client smoke, 1M-client sweep on the cohort fast path.

The event-driven engine's cohort fast path (tracers + batched phantom
load) is what turns the workload engine from a ~5k-client tool into one
that runs 100,000 clients inside a CI smoke budget and a million in a
full sweep.  This benchmark measures exactly that: fleet sizes far above
the cohort threshold, servers provisioned proportionally to the fleet
(workers scale with clients, as a real deployment's would), reporting the
clients-per-second simulation rate as the headline alongside weighted
request counts, streaming-histogram latency tails, and measured
server-side saturation (utilization / queue depth / drops, including the
phantom load charged in batch).

Runs three ways:

* under pytest-benchmark like the other experiments;
* standalone: ``python benchmarks/bench_e16_scale.py [--smoke]`` —
  ``--smoke`` runs 20k and 100k clients in seconds (used by
  ``scripts/check.sh`` under the ``E16_SMOKE_BUDGET_SECONDS`` wall-clock
  budget); the smoke sweep *is* the committed ``BENCH_e16.json``
  artifact, byte-for-byte gated like E13/E14/E15;
* the full sweep (no flags) runs 100k → 1,000,000 clients; it writes
  ``BENCH_e16_full.json`` so exploration never clobbers the gated file.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.config import FederationConfig
from repro.simulation.queueing import ServiceTimeModel
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _util import print_table  # noqa: E402

WORLD_SEED = 33
WORKLOAD_SEED = 7
DEVICE_CACHE_TTL_SECONDS = 120.0
TILE_CACHE_ENTRIES = 256

SERVICE_TIMES = ServiceTimeModel(
    default_ms=2.0,
    per_kind_ms={
        "search": 1.5,
        "routing": 4.0,
        "tiles": 0.5,
        "localization": 2.5,
    },
)
"""E13's per-request service times, unchanged, so E16's saturation numbers
compose with the small-fleet sweep's."""

CLIENTS_PER_WORKER = 2000
"""Server provisioning rule: one queue worker per 2000 clients (min 2).

Scale runs measure *relative* saturation: a fixed single worker would pin
every fleet size at 100% utilization and the sweep would only measure the
drop counter.  Scaling capacity with the fleet — as a real operator would —
keeps utilization in the informative range while still letting the biggest
fleets push into the knee."""

SERVER_QUEUE_CAPACITY = 512
"""Per-worker queue slots; deep enough that drops mean sustained overload,
not a single lockstep round's phase alignment."""

DEFAULT_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e16.json"
"""The committed, check.sh-gated artifact — written by the *smoke* sweep."""
FULL_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e16_full.json"
"""Default output of the full (1M-client) sweep."""


def workers_for(clients: int) -> int:
    return max(2, clients // CLIENTS_PER_WORKER)


def build_scale_scenario(clients: int, seed: int = WORLD_SEED):
    """The E13 world with fleet-proportional server capacity."""
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=DEVICE_CACHE_TTL_SECONDS,
        client_tile_cache_entries=TILE_CACHE_ENTRIES,
        service_times=SERVICE_TIMES,
        server_queue_capacity=SERVER_QUEUE_CAPACITY,
        server_workers=workers_for(clients),
    )
    return build_scenario(
        store_count=2,
        city_rows=5,
        city_cols=5,
        config=config,
        seed=seed,
        reuse_worlds=True,
    )


def run_fleet(clients: int, steps: int, seed: int = WORKLOAD_SEED) -> dict[str, object]:
    """Run one large fleet on the cohort fast path and distill the row."""
    started = time.perf_counter()
    scenario = build_scale_scenario(clients)
    engine = WorkloadEngine(
        scenario, WorkloadConfig(clients=clients, steps=steps, seed=seed)
    )
    report = engine.run()
    wall_seconds = time.perf_counter() - started
    if not report.sampling:
        raise AssertionError(
            f"{clients} clients ran on the exact path; E16 measures the cohort fast path"
        )
    tail = report.latency_percentiles()
    utilizations = [s.get("utilization", 0.0) for s in report.server_stats.values()]
    return {
        "clients": clients,
        "requests": report.requests,
        "errors": report.errors,
        "dropped": report.dropped_requests,
        "p50_ms": tail["p50"],
        "p95_ms": tail["p95"],
        "p99_ms": tail["p99"],
        "util_max": max(utilizations, default=0.0),
        "workers": workers_for(clients),
        "tracers": int(report.sampling["tracers"]),
        "max_weight": int(report.sampling["max_weight"]),
        "disc_hit_rate": report.discovery_cache_hit_rate,
        "dns_hit_rate": report.dns_cache_hit_rate,
        # Wall-clock fields stay out of the committed artifact; the
        # clients-per-second headline is printed, never written.
        "_wall_seconds": wall_seconds,
        "_clients_per_second": clients * steps / wall_seconds if wall_seconds else 0.0,
        "_server_stats": report.server_stats,
        "_simulated_seconds": report.simulated_seconds,
        "_sampling": dict(report.sampling),
    }


def sweep(fleet_sizes: list[int], steps: int) -> list[dict[str, object]]:
    return [run_fleet(clients, steps) for clients in fleet_sizes]


def table_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    return [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]


def emit_json(rows: list[dict[str, object]], steps: int, path: Path) -> None:
    """Write the machine-readable sweep artifact future PRs can diff."""
    payload = {
        "experiment": "E16",
        "description": "large-fleet scale sweep on the cohort fast path",
        "world_seed": WORLD_SEED,
        "workload_seed": WORKLOAD_SEED,
        "steps": steps,
        "clients_per_worker": CLIENTS_PER_WORKER,
        "server_queue_capacity": SERVER_QUEUE_CAPACITY,
        "rows": [
            {
                "clients": row["clients"],
                "requests": row["requests"],
                "errors": row["errors"],
                "dropped": row["dropped"],
                "latency_ms": {
                    "p50": row["p50_ms"],
                    "p95": row["p95_ms"],
                    "p99": row["p99_ms"],
                },
                "workers": row["workers"],
                "sampling": row["_sampling"],
                "cache_hit_rates": {
                    "discovery": row["disc_hit_rate"],
                    "dns": row["dns_hit_rate"],
                },
                "servers": row["_server_stats"],
                # Deliberately no wall-clock fields: the artifact must be
                # byte-identical across runs (check.sh enforces it).
                "simulated_seconds": row["_simulated_seconds"],
            }
            for row in rows
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_e16_100k_smoke(benchmark):
    """100k clients run on the cohort fast path in interactive time."""
    row = run_fleet(clients=100_000, steps=3)
    print_table("E16 100k-client smoke", table_rows([row]))
    assert row["requests"] > 250_000
    assert row["tracers"] < 1_000  # the whole point: simulate few, charge many
    assert row["_clients_per_second"] > 10_000
    benchmark.extra_info["clients_per_second"] = row["_clients_per_second"]
    benchmark(lambda: run_fleet(clients=20_000, steps=2))


def test_e16_weighted_totals_scale_linearly(benchmark):
    """Weighted request totals grow ~linearly in fleet size (exact integral
    weights: no sampling drift in the counters)."""
    small = run_fleet(clients=20_000, steps=3)
    large = run_fleet(clients=100_000, steps=3)
    ratio = large["requests"] / small["requests"]
    assert 4.5 < ratio < 5.5
    benchmark(lambda: run_fleet(clients=20_000, steps=2))


def test_e16_deterministic_snapshot(benchmark):
    """Fixed seed → byte-identical snapshot on the cohort fast path too."""

    def one_run():
        scenario = build_scale_scenario(20_000)
        engine = WorkloadEngine(
            scenario, WorkloadConfig(clients=20_000, steps=3, seed=WORKLOAD_SEED)
        )
        return engine.run().snapshot()

    assert one_run() == one_run()
    benchmark(lambda: run_fleet(clients=20_000, steps=2))


# ----------------------------------------------------------------------
# Standalone mode
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="20k + 100k clients (finishes in seconds) for CI smoke checks",
    )
    parser.add_argument("--steps", type=int, default=None, help="steps per client (>= 1)")
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=f"where to write the sweep artifact (smoke default {DEFAULT_JSON_PATH.name} "
        f"— the committed, byte-for-byte-gated artifact; full-sweep default "
        f"{FULL_JSON_PATH.name} so exploration never clobbers the gated file)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON artifact"
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="fail (exit 1) if the sweep takes longer than this wall-clock budget",
    )
    args = parser.parse_args(argv)
    if args.steps is not None and args.steps < 1:
        parser.error("--steps must be >= 1")

    if args.smoke:
        fleet_sizes = [20_000, 100_000]
        steps = args.steps if args.steps is not None else 3
    else:
        fleet_sizes = [100_000, 500_000, 1_000_000]
        steps = args.steps if args.steps is not None else 3

    started = time.perf_counter()
    rows = sweep(fleet_sizes, steps)
    elapsed = time.perf_counter() - started
    print_table("E16 scale sweep (cohort fast path)", table_rows(rows))

    json_path = args.json if args.json is not None else (DEFAULT_JSON_PATH if args.smoke else FULL_JSON_PATH)
    if not args.no_json:
        emit_json(rows, steps, json_path)
        print(f"\nwrote {json_path}")

    failures = []
    for row in rows:
        expected = row["clients"] * steps
        accounted = row["requests"] + row["errors"]
        # Weighted totals must account for every simulated device-step
        # (skipped zero-length routes are the only legitimate shortfall).
        if not 0.9 * expected <= accounted <= 1.001 * expected:
            failures.append(
                f"{row['clients']} clients: weighted totals {accounted:.0f} "
                f"do not account for {expected} device-steps"
            )
    biggest = rows[-1]
    if biggest["util_max"] <= 0.0:
        failures.append("no server-side load measured at the largest fleet")
    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        failures.append(
            f"sweep took {elapsed:.1f}s, over the {args.budget_seconds:.1f}s budget "
            "(fast-path regression?)"
        )

    headline = max(row["_clients_per_second"] for row in rows)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"\nOK: {biggest['clients']:,} clients on {biggest['tracers']} tracers, "
        f"peak {headline:,.0f} simulated client-steps/s, "
        f"max server utilization {biggest['util_max']:.2f} ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
