"""E9 — Section 5.3: the fine-grained security and privacy model.

Quantifies (a) how much private map data each class of principal can see
under the campus policy (user-, service-, and application-level controls),
(b) the same exposure under a centralized model that had to ingest the data
to serve it at all, and (c) the request-path overhead of policy checks.
"""

from __future__ import annotations

from repro.localization.cues import CueBundle, GnssCue
from repro.mapserver.auth import Credential
from repro.mapserver.policy import AccessDenied, ServiceName

from _util import print_table


def _visible_private_rooms(server, campus, credential) -> int:
    building = next(iter(campus.building_locations.values()))
    try:
        results = server.search("room hall lab office", near=building, radius_meters=500.0, credential=credential, limit=100)
    except AccessDenied:
        return 0
    private_names = set(campus.room_locations)
    return sum(1 for r in results if r.label in private_names)


def test_e9_data_exposure_by_principal(benchmark, bench_scenario_with_campus):
    scenario = bench_scenario_with_campus
    campus = scenario.campus
    server = scenario.campus_server
    assert campus is not None and server is not None

    principals = {
        "anonymous": Credential(),
        "outside user": Credential(email="user@gmail.com"),
        "campus user": Credential(email="user@campus.edu"),
    }
    total_private = campus.private_room_count
    rows = []
    for label, credential in principals.items():
        visible = _visible_private_rooms(server, campus, credential)
        rows.append(
            {
                "principal": label,
                "private_rooms_visible": visible,
                "fraction_of_private_data": visible / total_private if total_private else 0.0,
            }
        )
    print_table("E9 private-data exposure by principal (federated, campus policy)", rows)
    assert rows[0]["private_rooms_visible"] == 0
    assert rows[-1]["private_rooms_visible"] > 0
    benchmark.extra_info["campus_user_visible"] = rows[-1]["private_rooms_visible"]

    campus_user = principals["campus user"]
    benchmark(lambda: _visible_private_rooms(server, campus, campus_user))


def test_e9_centralized_exposure_baseline(benchmark):
    """If the campus had uploaded its map centrally, everyone could query it."""
    from repro.worldgen.scenario import build_scenario

    scenario = build_scenario(store_count=0, include_campus=True, centralized_ingests_indoor=True, seed=61)
    campus = scenario.campus
    assert campus is not None
    building = next(iter(campus.building_locations.values()))
    results = scenario.centralized.search("room hall lab office", near=building, radius_meters=500.0, limit=100)
    visible = sum(1 for r in results if r.label in set(campus.room_locations))
    rows = [
        {
            "principal": "anyone (centralized, data ingested)",
            "private_rooms_visible": visible,
            "fraction_of_private_data": visible / campus.private_room_count,
        }
    ]
    print_table("E9 exposure under the centralized model", rows)
    assert visible > 0
    benchmark(lambda: scenario.centralized.search("room", near=building, radius_meters=500.0))


def test_e9_service_level_controls(benchmark, bench_scenario_with_campus):
    """Tiles public, localization app-gated — per-service outcomes by principal."""
    scenario = bench_scenario_with_campus
    campus = scenario.campus
    server = scenario.campus_server
    assert campus is not None and server is not None
    building = next(iter(campus.building_locations.values()))
    from repro.tiles.tile_math import tile_for_point

    principals = {
        "anonymous": Credential(),
        "campus-nav app": Credential(application_id=campus.navigation_app_id),
        "campus user": Credential(email="x@campus.edu"),
    }
    rows = []
    for label, credential in principals.items():
        def allowed(call) -> str:
            try:
                call()
                return "allowed"
            except AccessDenied:
                return "denied"

        rows.append(
            {
                "principal": label,
                "tiles": allowed(lambda: server.get_tile(tile_for_point(building, 18), credential)),
                "search": allowed(lambda: server.search("hall", near=building, credential=credential)),
                "localization": allowed(
                    lambda: server.localize(CueBundle(gnss=GnssCue(building)), credential)
                ),
            }
        )
    print_table("E9 per-service access by principal", rows)
    assert rows[0]["tiles"] == "allowed"
    assert rows[0]["localization"] == "denied"
    assert rows[1]["localization"] == "allowed"
    benchmark.extra_info["rows"] = len(rows)
    credential = principals["campus user"]
    benchmark(lambda: server.policy.allows(ServiceName.SEARCH, credential))


def test_e9_policy_check_overhead(benchmark, bench_scenario_with_campus):
    """The per-request cost of evaluating the access policy is negligible."""
    scenario = bench_scenario_with_campus
    server = scenario.campus_server
    assert server is not None
    credential = Credential(email="x@campus.edu", application_id="campus-nav")
    benchmark(lambda: server.policy.check(ServiceName.SEARCH, credential))
