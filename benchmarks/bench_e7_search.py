"""E7 — Section 2 / Section 5.2: location-based search over federated maps.

The grocery-store walkthrough's search step: recall of indoor product queries
under (a) the federation, where stores answer from their own inventories, and
(b) the centralized provider, which never obtained the indoor maps.  Also
reports the ablation where stores *do* hand over their data, and the fan-out
cost per federated query.
"""

from __future__ import annotations

import random

from repro.worldgen.scenario import build_scenario

from _util import print_table


def _recall(system_search, stores, queries_per_store: int = 8) -> float:
    hits = 0
    total = 0
    for store in stores:
        near = store.entrance.destination(180.0, 60.0)
        for product in store.products[:queries_per_store]:
            total += 1
            results = system_search(product.name, near)
            found = any(
                product.name in (label or "") for label in results
            )
            if found:
                hits += 1
    return hits / total if total else 0.0


def test_e7_indoor_search_recall(benchmark, bench_scenario, bench_client):
    stores = bench_scenario.stores

    def federated_search(query, near):
        result = bench_client.search(query, near=near, radius_meters=300.0, limit=10)
        return [r.tag_dict().get("product") or r.label for r in result.results]

    def centralized_search(query, near):
        results = bench_scenario.centralized.search(query, near=near, radius_meters=300.0, limit=10)
        return [r.tag_dict().get("product") or r.label for r in results]

    federated_recall = _recall(federated_search, stores)
    centralized_recall = _recall(centralized_search, stores)
    rows = [
        {"system": "federated (Fig 2)", "indoor_product_recall": federated_recall},
        {"system": "centralized, indoor maps withheld (Fig 1)", "indoor_product_recall": centralized_recall},
    ]
    print_table("E7 indoor product search recall", rows)
    assert federated_recall > 0.9
    assert centralized_recall < 0.1
    benchmark.extra_info["federated_recall"] = federated_recall
    benchmark.extra_info["centralized_recall"] = centralized_recall

    store = stores[0]
    benchmark(lambda: bench_client.search("seaweed", near=store.entrance, radius_meters=300.0))


def test_e7_centralized_with_ingested_indoor_ablation(benchmark):
    """Ablation: if stores did share their maps, the centralized recall recovers.

    This isolates the cause of E7's gap: it is data availability (the paper's
    privacy/ownership argument), not the search algorithm.
    """
    scenario = build_scenario(store_count=2, centralized_ingests_indoor=True, seed=51)

    def centralized_search(query, near):
        results = scenario.centralized.search(query, near=near, radius_meters=300.0, limit=10)
        return [r.tag_dict().get("product") or r.label for r in results]

    recall = _recall(centralized_search, scenario.stores)
    rows = [{"system": "centralized, indoor maps ingested (ablation)", "indoor_product_recall": recall}]
    print_table("E7 ablation: centralized with ingested indoor maps", rows)
    assert recall > 0.9
    store = scenario.stores[0]
    benchmark(lambda: scenario.centralized.search("seaweed", near=store.entrance, radius_meters=300.0))


def test_e7_fanout_cost(benchmark, bench_scenario, bench_client):
    """How many servers a federated search touches, near and far from stores."""
    store = bench_scenario.stores[0]
    rng = random.Random(1)
    near_store = bench_client.search("seaweed", near=store.entrance, radius_meters=300.0)
    downtown = bench_client.search("cafe", near=bench_scenario.city.random_street_point(rng), radius_meters=300.0)
    rows = [
        {
            "query location": "next to a store",
            "servers_consulted": near_store.servers_consulted,
            "servers_with_results": near_store.servers_with_results,
            "dns_lookups": near_store.dns_lookups,
        },
        {
            "query location": "random street corner",
            "servers_consulted": downtown.servers_consulted,
            "servers_with_results": downtown.servers_with_results,
            "dns_lookups": downtown.dns_lookups,
        },
    ]
    print_table("E7 federated search fan-out", rows)
    assert near_store.servers_consulted >= downtown.servers_with_results
    benchmark(lambda: bench_client.search("seaweed", near=store.entrance, radius_meters=300.0))
