"""E8 — Section 1: scalability of map management under federation.

The paper argues that federation lets map management scale because each
organization registers and maintains only its own map.  This experiment
measures (a) the cost of adding the N-th map server (DNS records created,
registration time), (b) how discovery cost at a client evolves as the number
of independent maps grows, and (c) the total discovery-zone size — contrasted
with the centralized model where each new organization's data must be
re-ingested and re-preprocessed centrally.
"""

from __future__ import annotations

import random
import time

from repro.centralized.system import CentralizedMapSystem
from repro.core.federation import Federation
from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.osm.builder import MapBuilder

from _util import print_table

ANCHOR = LatLng(40.40, -79.99)


def _venue_map(index: int, rng: random.Random):
    anchor = ANCHOR.destination(rng.uniform(0, 360), rng.uniform(50.0, 4_000.0))
    builder = MapBuilder(name=f"venue-{index}")
    entrance = builder.add_node(anchor, {"name": f"venue {index} entrance", "entrance": "main"})
    other = builder.add_node(anchor.destination(45.0, 20.0), {"name": f"venue {index} hall"})
    builder.add_way([entrance, other], {"indoor_path": "yes"})
    map_data = builder.build()
    map_data.set_coverage(Polygon.regular(anchor, 40.0, sides=6))
    return map_data, anchor


def test_e8_registration_and_discovery_vs_server_count(benchmark):
    rows = []
    rng = random.Random(0)
    for server_count in (10, 50, 150):
        federation = Federation()
        locations = []
        start = time.perf_counter()
        for index in range(server_count):
            map_data, anchor = _venue_map(index, rng)
            federation.add_map_server(f"venue-{index}.example", map_data)
            locations.append(anchor)
        registration_seconds = time.perf_counter() - start

        client = federation.client()
        federation.reset_network_stats()
        probe_count = 20
        found_total = 0
        for _ in range(probe_count):
            probe = rng.choice(locations)
            found_total += len(client.discover(probe, uncertainty_meters=60.0).server_ids)
        messages_per_discovery = federation.network.stats.messages_sent / probe_count

        rows.append(
            {
                "map_servers": server_count,
                "registration_s_total": registration_seconds,
                "dns_records": federation.registry.total_records,
                "records_per_server": federation.registry.total_records / server_count,
                "msgs_per_discovery": messages_per_discovery,
                "mean_servers_found": found_total / probe_count,
            }
        )

    print_table("E8 federation growth", rows)
    # Per-server registration cost stays flat and discovery cost does not blow
    # up with the number of independent maps.
    assert rows[-1]["records_per_server"] <= rows[0]["records_per_server"] * 2.0
    assert rows[-1]["msgs_per_discovery"] <= rows[0]["msgs_per_discovery"] * 3.0
    benchmark.extra_info["records_per_server"] = rows[-1]["records_per_server"]

    federation = Federation()
    rng2 = random.Random(1)
    counter = iter(range(10**9))

    def register_one():
        index = next(counter)
        map_data, _ = _venue_map(index, rng2)
        federation.add_map_server(f"bench-venue-{index}.example", map_data)

    benchmark(register_one)


def test_e8_centralized_reingestion_cost(benchmark):
    """The centralized counterpart: every new organization forces re-ingestion.

    The cost of keeping the central database current grows with the *total*
    data volume, not with the size of the newcomer's map.
    """
    rng = random.Random(3)
    rows = []
    for organization_count in (10, 50, 150):
        central = CentralizedMapSystem(use_contraction_hierarchy=False)
        for index in range(organization_count):
            map_data, _ = _venue_map(index, rng)
            central.ingest(map_data)
        start = time.perf_counter()
        central.preprocess()
        preprocess_seconds = time.perf_counter() - start
        rows.append(
            {
                "organizations": organization_count,
                "world_nodes": central.world_map.node_count,
                "preprocess_s": preprocess_seconds,
            }
        )
    print_table("E8 centralized ingestion/preprocessing growth", rows)
    assert rows[-1]["preprocess_s"] >= rows[0]["preprocess_s"]
    central = CentralizedMapSystem(use_contraction_hierarchy=False)
    map_data, _ = _venue_map(0, rng)
    central.ingest(map_data)
    benchmark(central.preprocess)
