"""E19 — closed-loop autoscaling: elastic warm pools vs static provisioning.

E18 gave the federation eyes (windowed telemetry, zonal roll-ups, SLO
burn); this experiment closes the loop.  A per-region
:class:`~repro.autoscale.scaler.Autoscaler` reads *only* telemetry
roll-ups and drives a :class:`~repro.autoscale.warmpool.WarmPool` of
pre-registered zero-weight standbys through the control plane: promote
when the zone pressures, ramp 4→2→1→0 and park when it ebbs.  Three
claims are pinned:

* **flash crowd** — a stadium crowd slams store 0.  Static-lean (the
  capacity you'd buy for the median day) sheds load; static-over (crowd
  capacity deployed 24/7) absorbs it at full cost.  The autoscaled cell
  must beat lean on SLO attainment *and* undercut over on cost, where
  cost is **replica-seconds**: the integral of positively-weighted,
  registered, reachable replicas in the scaled group over simulated time.
* **diurnal curve** — two demand peaks in one simulated day.  Same
  ordering must hold when capacity has to come and go twice.
* **bounded oscillation** — with device/DNS TTLs stretched so clients
  converge a full cache generation behind the controller (the 22–67 s
  regime E15 measured), hysteresis + cooldowns must keep the decision
  tape monotonic: no flap (an up-action on a server whose previous
  action was down), promotions bounded by the pool, a bounded number of
  weight changes.

Runs three ways, like E13–E18:

* under pytest-benchmark;
* standalone smoke: ``python benchmarks/bench_e19_autoscale.py --smoke``
  — used by ``scripts/check.sh`` (wall-clock budgeted via
  ``--budget-seconds``); the smoke sweep *is* the committed artifact, so
  every check run re-verifies that ``BENCH_e19.json`` reproduces;
* the full sweep (no flags) re-runs the cells with a larger fleet and
  writes ``BENCH_e19_full.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.autoscale import AutoscalerConfig
from repro.core.config import FederationConfig
from repro.faults.scenarios import RETRY_POLICY, SERVICE_TIMES
from repro.faults.schedule import FaultPlan
from repro.telemetry import SLOConfig, TelemetryConfig
from repro.telemetry.reader import TelemetryReader
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _util import print_table  # noqa: E402

WORLD_SEED = 33
WORKLOAD_SEED = 7

SMOKE_CLIENTS = 24
FULL_CLIENTS = 48
STEP_SECONDS = 20.0
RESOLVER_POOLS = 2
POOL_SIZE = 2

TELEMETRY = TelemetryConfig(
    window_seconds=40.0,
    slo=SLOConfig(latency_ms=250.0, availability_target=0.99),
)
"""Two rounds per window; a 250 ms latency SLO so attainment counts both
shed requests and queue-bloated slow ones against the budget."""

AUTOSCALE = AutoscalerConfig(
    wait_high_ms=25.0,
    wait_low_ms=8.0,
    burn_high=0.0,
    breach_evals=1,
    recover_evals=2,
    cooldown_seconds=60.0,
    ramp_cooldown_seconds=30.0,
    park_delay_seconds=40.0,
)
"""The responsive profile: act one window after a sustained breach, ramp
down only after two quiet windows.  The burn trigger is disabled — at this
fleet size the per-window burn saturates on baseline noise (24 clients ×
1% budget), so zonal queue-wait/shed are the discriminating signals."""

STABILITY_AUTOSCALE = AutoscalerConfig(
    wait_high_ms=25.0,
    wait_low_ms=8.0,
    burn_high=0.0,
    breach_evals=2,
    recover_evals=3,
    cooldown_seconds=90.0,
    ramp_cooldown_seconds=40.0,
    park_delay_seconds=60.0,
)
"""The oscillation cell's profile: cooldowns sized past the stretched
client-convergence window, streaks requiring multi-window confirmation."""

FLASH_STEPS = 36
FLASH_START, FLASH_END = 60.0, 240.0
FLASH_EXTRA_LOAD = 300

DIURNAL_STEPS = 48
DIURNAL_PEAKS = ((120.0, 280.0, 150), (480.0, 680.0, 300))
"""(start, end, extra_load) per peak: a morning shoulder and a taller
evening peak in one simulated day."""

OSCILLATION_STEPS = 36
OSCILLATION_START, OSCILLATION_END = 60.0, 540.0
OSCILLATION_EXTRA_LOAD = 150
OSCILLATION_DEVICE_TTL = 60.0
OSCILLATION_DNS_TTL = 80.0
MAX_OSCILLATION_WEIGHT_CHANGES = 8

ATTAINMENT_MARGIN = 0.02
"""Autoscaled SLO attainment must beat static-lean by at least this much
(measured headroom is ~0.05 on both traffic patterns)."""

DEFAULT_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e19.json"
"""The committed, check.sh-gated artifact — written by the *smoke* sweep."""
FULL_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e19_full.json"
"""Default output of the full sweep, so exploratory runs never clobber the
byte-for-byte-gated smoke artifact."""


def _digest(snapshot: dict[str, float]) -> str:
    """A short stable fingerprint of a run's full snapshot (determinism)."""
    import hashlib

    payload = json.dumps(snapshot, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def build_world(
    device_ttl: float = 30.0, dns_ttl: float = 60.0
):
    """The E17-style disaster world with TTLs short enough that clients
    converge on weight changes within a couple of telemetry windows."""
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=device_ttl,
        registration_ttl_seconds=dns_ttl,
        client_tile_cache_entries=256,
        service_times=SERVICE_TIMES,
        server_queue_capacity=256,
        retry_policy=RETRY_POLICY,
    )
    return build_scenario(
        store_count=2,
        city_rows=5,
        city_cols=5,
        config=config,
        seed=WORLD_SEED,
        reuse_worlds=True,
        store_replicas=2,
    )


BASE_REPLICAS = 2
"""Store 0's as-built replica count.  Crowd plans pin their extra load to
these *base* replicas only — ``store_replica_ids`` reads live group
membership, which grows when a warm pool attaches, and a crowd that
scales with deployed capacity would make the comparison circular.  The
autoscaler's win is thus indirect, as in production: promoted standbys
absorb the organic fleet traffic that would otherwise queue behind the
crowd on the slammed replicas."""


def _crowd_targets(scenario) -> tuple[str, ...]:
    return tuple(scenario.store_replica_ids(0)[:BASE_REPLICAS])


def flash_plan(scenario) -> FaultPlan:
    return FaultPlan.flash_crowd(
        _crowd_targets(scenario),
        FLASH_START,
        FLASH_END,
        extra_load=FLASH_EXTRA_LOAD,
    )


def diurnal_plan(scenario) -> FaultPlan:
    targets = _crowd_targets(scenario)
    plan = FaultPlan()
    for start, end, extra in DIURNAL_PEAKS:
        plan = plan + FaultPlan.flash_crowd(targets, start, end, extra_load=extra)
    return plan


def run_cell(
    mode: str,
    plan_for,
    steps: int,
    clients: int,
    *,
    autoscale: AutoscalerConfig = AUTOSCALE,
    device_ttl: float = 30.0,
    dns_ttl: float = 60.0,
) -> dict[str, object]:
    """One provisioning cell over one traffic pattern.

    ``mode`` is the provisioning policy for store 0's replica group:

    * ``static-lean`` — just the base replicas (median-day capacity);
    * ``static-over`` — the warm-pool standbys promoted at build time and
      weighted for the whole run (crowd capacity deployed 24/7);
    * ``auto`` — standbys pooled at weight 0, the autoscaler deciding.
    """
    scenario = build_world(device_ttl, dns_ttl)
    federation = scenario.federation
    group_id = sorted(federation.replica_groups)[0]
    if mode != "static-lean":
        federation.attach_warm_pool(group_id, POOL_SIZE)
    if mode == "static-over":
        for standby in federation.warm_pools[group_id].standby_ids:
            federation.set_srv(standby, weight=autoscale.promote_weight)
    config = WorkloadConfig(
        clients=clients,
        steps=steps,
        seed=WORKLOAD_SEED,
        step_seconds=STEP_SECONDS,
        resolver_pools=RESOLVER_POOLS,
        faults=plan_for(scenario),
        telemetry=TELEMETRY,
        autoscale=autoscale if mode == "auto" else None,
    )
    engine = WorkloadEngine(scenario, config)
    report = engine.run()
    assert engine.telemetry is not None
    reader = TelemetryReader(pipeline=engine.telemetry)

    # Cost: replica-seconds of positively-weighted serving capacity in the
    # scaled group.  Static cells never change weights, so their integral
    # is a product; the auto cell's comes from the scaler's own integral
    # (same basis: reachable + registered + weight > 0).
    group = federation.replica_groups[group_id]
    if mode == "auto":
        stats = report.autoscale_stats
        replica_seconds = stats["replica_seconds"]
    else:
        stats = {}
        serving = sum(
            1
            for server_id in group.server_ids
            if server_id in federation.servers
            and server_id in federation.registry.registrations
            and federation.srv_of(server_id)[1] > 0
        )
        replica_seconds = serving * report.simulated_seconds
    return {
        "mode": mode,
        "attainment": reader.attainment(),
        "dropped": report.dropped_requests,
        "p95_ms": report.latency_percentiles()["p95"],
        "cost_rs": replica_seconds,
        "promotions": stats.get("promotions", 0.0),
        "ramp_steps": stats.get("ramp_steps", 0.0),
        "parks": stats.get("parks", 0.0),
        "flaps": stats.get("flaps", 0.0),
        "_weight_changes": stats.get("weight_changes", 0.0),
        "_failed_rate": report.failed_request_rate,
        "_simulated_seconds": report.simulated_seconds,
        "_snapshot_digest": _digest(report.snapshot()),
    }


def run_pattern(name: str, plan_for, steps: int, clients: int) -> list[dict[str, object]]:
    """All three provisioning cells over one traffic pattern."""
    rows = []
    for mode in ("static-lean", "static-over", "auto"):
        row = run_cell(mode, plan_for, steps, clients)
        row["pattern"] = name
        rows.append(row)
    return rows


def oscillation_plan(scenario) -> FaultPlan:
    return FaultPlan.flash_crowd(
        _crowd_targets(scenario),
        OSCILLATION_START,
        OSCILLATION_END,
        extra_load=OSCILLATION_EXTRA_LOAD,
    )


def run_oscillation(clients: int) -> dict[str, object]:
    """The stability cell: stretched TTLs (clients converge a cache
    generation behind the controller) under a long borderline crowd."""
    row = run_cell(
        "auto",
        oscillation_plan,
        OSCILLATION_STEPS,
        clients,
        autoscale=STABILITY_AUTOSCALE,
        device_ttl=OSCILLATION_DEVICE_TTL,
        dns_ttl=OSCILLATION_DNS_TTL,
    )
    row["pattern"] = "oscillation"
    return row


def by_mode(rows: list[dict[str, object]]) -> dict[str, dict[str, object]]:
    return {str(row["mode"]): row for row in rows}


def table_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    return [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]


def verify(
    flash: list[dict[str, object]],
    diurnal: list[dict[str, object]],
    oscillation: dict[str, object],
) -> list[str]:
    """The three experiment claims, checked against the measured cells."""
    failures: list[str] = []
    for name, rows in (("flash", flash), ("diurnal", diurnal)):
        cells = by_mode(rows)
        lean, over, auto = cells["static-lean"], cells["static-over"], cells["auto"]
        if auto["attainment"] < lean["attainment"] + ATTAINMENT_MARGIN:
            failures.append(
                f"{name}: autoscaled attainment {auto['attainment']:.4f} does "
                f"not beat static-lean {lean['attainment']:.4f} by the "
                f"{ATTAINMENT_MARGIN} margin"
            )
        if auto["attainment"] > over["attainment"] + 0.01:
            failures.append(
                f"{name}: autoscaled attainment {auto['attainment']:.4f} "
                f"exceeds the 24/7-capacity ceiling {over['attainment']:.4f} "
                "— the accounting is suspect"
            )
        if auto["cost_rs"] > 0.9 * over["cost_rs"]:
            failures.append(
                f"{name}: autoscaled cost {auto['cost_rs']:.0f} replica-seconds "
                f"is not at least 10% under static-over {over['cost_rs']:.0f}"
            )
        # The crowd's own jobs are pinned to the base replicas (see
        # BASE_REPLICAS), so shed load may not *grow* under autoscaling —
        # the win shows up as organic traffic staying fast, not as fewer
        # crowd drops.
        if auto["dropped"] > lean["dropped"]:
            failures.append(
                f"{name}: autoscaled cell dropped {auto['dropped']} requests, "
                f"more than static-lean's {lean['dropped']}"
            )
        if auto["promotions"] < 1:
            failures.append(f"{name}: the autoscaler never promoted a standby")
        if auto["flaps"] > 0:
            failures.append(f"{name}: the autoscaled cell flapped ({auto['flaps']})")
        if lean["dropped"] < 1:
            failures.append(
                f"{name}: static-lean shed nothing; the crowd is not a crowd"
            )

    if oscillation["flaps"] > 0:
        failures.append(
            f"oscillation: {oscillation['flaps']} flap(s) under delayed "
            "convergence — hysteresis/cooldown failed"
        )
    if oscillation["promotions"] > POOL_SIZE:
        failures.append(
            f"oscillation: {oscillation['promotions']} promotions exceed the "
            f"pool size {POOL_SIZE}"
        )
    if oscillation["_weight_changes"] > MAX_OSCILLATION_WEIGHT_CHANGES:
        failures.append(
            f"oscillation: {oscillation['_weight_changes']} weight changes, "
            f"over the {MAX_OSCILLATION_WEIGHT_CHANGES} bound"
        )
    return failures


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def _smoke_flash():
    return run_pattern("flash", flash_plan, FLASH_STEPS, SMOKE_CLIENTS)


def test_e19_flash_crowd_auto_beats_lean_under_over_cost(benchmark):
    rows = _smoke_flash()
    print_table("E19 flash crowd", table_rows(rows))
    cells = by_mode(rows)
    assert cells["auto"]["attainment"] > cells["static-lean"]["attainment"]
    assert cells["auto"]["cost_rs"] <= 0.9 * cells["static-over"]["cost_rs"]
    benchmark.extra_info["auto_attainment"] = cells["auto"]["attainment"]
    benchmark(lambda: run_cell("auto", flash_plan, 8, SMOKE_CLIENTS))


def test_e19_oscillation_is_bounded(benchmark):
    row = run_oscillation(SMOKE_CLIENTS)
    print_table("E19 oscillation", table_rows([row]))
    assert row["flaps"] == 0
    assert row["promotions"] <= POOL_SIZE
    assert row["_weight_changes"] <= MAX_OSCILLATION_WEIGHT_CHANGES
    benchmark(lambda: run_cell("auto", flash_plan, 8, SMOKE_CLIENTS))


def test_e19_deterministic(benchmark):
    first = run_cell("auto", flash_plan, FLASH_STEPS, SMOKE_CLIENTS)
    second = run_cell("auto", flash_plan, FLASH_STEPS, SMOKE_CLIENTS)
    assert first["_snapshot_digest"] == second["_snapshot_digest"]
    benchmark(lambda: run_cell("auto", flash_plan, 8, SMOKE_CLIENTS))


# ----------------------------------------------------------------------
# Standalone mode
# ----------------------------------------------------------------------
def emit_json(
    flash: list[dict[str, object]],
    diurnal: list[dict[str, object]],
    oscillation: dict[str, object],
    clients: int,
    path: Path,
) -> None:
    def cell_block(row: dict[str, object]) -> dict[str, object]:
        return {
            "attainment": row["attainment"],
            "dropped": row["dropped"],
            "p95_ms": row["p95_ms"],
            "replica_seconds": row["cost_rs"],
            "promotions": row["promotions"],
            "ramp_steps": row["ramp_steps"],
            "parks": row["parks"],
            "flaps": row["flaps"],
            "weight_changes": row["_weight_changes"],
            "failed_rate": row["_failed_rate"],
            "snapshot_digest": row["_snapshot_digest"],
        }

    payload = {
        "experiment": "E19",
        "description": "closed-loop autoscaling from telemetry roll-ups: "
        "elastic warm-pool capacity vs static provisioning on SLO "
        "attainment and replica-seconds cost, with bounded oscillation "
        "under TTL-delayed client convergence",
        "world_seed": WORLD_SEED,
        "workload_seed": WORKLOAD_SEED,
        "clients": clients,
        "pool_size": POOL_SIZE,
        "flash": {row["mode"]: cell_block(row) for row in flash},
        "diurnal": {row["mode"]: cell_block(row) for row in diurnal},
        "oscillation": {
            "device_ttl_seconds": OSCILLATION_DEVICE_TTL,
            "dns_ttl_seconds": OSCILLATION_DNS_TTL,
            "max_weight_changes": MAX_OSCILLATION_WEIGHT_CHANGES,
            **cell_block(oscillation),
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="the calibrated 24-client cells (finishes in seconds) for CI "
        "smoke checks",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=f"where to write the cell artifact (smoke default {DEFAULT_JSON_PATH.name} "
        f"— the committed, byte-for-byte-gated artifact; full-sweep default "
        f"{FULL_JSON_PATH.name} so exploration never clobbers the gated file)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON artifact"
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="fail (exit 1) if the cells take longer than this wall-clock budget",
    )
    args = parser.parse_args(argv)
    clients = SMOKE_CLIENTS if args.smoke else FULL_CLIENTS

    started = time.perf_counter()
    flash = run_pattern("flash", flash_plan, FLASH_STEPS, clients)
    diurnal = run_pattern("diurnal", diurnal_plan, DIURNAL_STEPS, clients)
    oscillation = run_oscillation(clients)
    elapsed = time.perf_counter() - started
    print_table("E19 flash crowd", table_rows(flash))
    print_table("E19 diurnal curve", table_rows(diurnal))
    print_table("E19 oscillation stability", table_rows([oscillation]))

    failures = verify(flash, diurnal, oscillation)

    # Determinism: the richest cell (autoscaler + crowd + telemetry) must
    # reproduce exactly.
    repeat = run_cell("auto", flash_plan, FLASH_STEPS, clients)
    if repeat["_snapshot_digest"] != by_mode(flash)["auto"]["_snapshot_digest"]:
        failures.append("rerun with fixed seed produced a different snapshot")

    json_path = args.json if args.json is not None else (
        DEFAULT_JSON_PATH if args.smoke else FULL_JSON_PATH
    )
    if not args.no_json:
        emit_json(flash, diurnal, oscillation, clients, json_path)
        print(f"\nwrote {json_path}")

    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        failures.append(
            f"cells took {elapsed:.1f}s, over the {args.budget_seconds:.1f}s "
            "budget (hot-path regression?)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    flash_cells, diurnal_cells = by_mode(flash), by_mode(diurnal)
    print(
        f"\nOK: flash attainment lean {flash_cells['static-lean']['attainment']:.3f} "
        f"→ auto {flash_cells['auto']['attainment']:.3f} at "
        f"{flash_cells['auto']['cost_rs'] / flash_cells['static-over']['cost_rs']:.0%} "
        f"of static-over cost; diurnal auto {diurnal_cells['auto']['attainment']:.3f} "
        f"with {diurnal_cells['auto']['promotions']:.0f} promotions; oscillation "
        f"{oscillation['_weight_changes']:.0f} weight changes, "
        f"{oscillation['flaps']:.0f} flaps ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
