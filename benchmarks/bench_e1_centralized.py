"""E1 — Figure 1: the centralized architecture serving the five base services.

Measures, for the centralized baseline, the request latency (wall clock via
pytest-benchmark), and the simulated message count / network latency per
request for each of the five location-based services of Section 4.
"""

from __future__ import annotations

import random

import pytest

from repro.localization.cues import CueBundle, GnssCue
from repro.mapserver.geocode import Address
from repro.tiles.tile_math import tile_for_point

from _util import print_table


@pytest.fixture(scope="module")
def central(bench_scenario):
    return bench_scenario.centralized


def _measure_network(system, fn, repeats: int = 20) -> dict[str, float]:
    system.network.reset_stats()
    for _ in range(repeats):
        fn()
    stats = system.network.stats
    return {
        "messages_per_request": stats.messages_sent / repeats,
        "sim_latency_ms": stats.total_latency_ms / repeats,
    }


def test_e1_geocode(benchmark, bench_scenario, central):
    address = Address.parse(f"{next(iter(bench_scenario.city.building_addresses))}, {bench_scenario.city.city_name}")
    result = benchmark(lambda: central.geocode(address))
    assert result
    info = _measure_network(central, lambda: central.geocode(address))
    benchmark.extra_info.update(info)
    print_table("E1 centralized geocode", [{"service": "geocode", **info}])


def test_e1_search(benchmark, bench_scenario, central):
    near = bench_scenario.city.bounds.center
    result = benchmark(lambda: central.search("cafe", near=near, radius_meters=2000.0))
    assert result
    info = _measure_network(central, lambda: central.search("cafe", near=near, radius_meters=2000.0))
    benchmark.extra_info.update(info)
    print_table("E1 centralized search", [{"service": "search", **info}])


def test_e1_routing(benchmark, bench_scenario, central):
    rng = random.Random(0)
    pairs = [
        (bench_scenario.city.random_street_point(rng), bench_scenario.city.random_street_point(rng))
        for _ in range(10)
    ]
    iterator = iter(range(10**9))

    def route_once():
        index = next(iterator) % len(pairs)
        return central.route(*pairs[index])

    benchmark(route_once)
    info = _measure_network(central, route_once)
    benchmark.extra_info.update(info)
    print_table("E1 centralized routing", [{"service": "routing", **info}])


def test_e1_localization(benchmark, bench_scenario, central):
    center = bench_scenario.city.bounds.center
    cues = CueBundle(gnss=GnssCue(center, accuracy_meters=10.0))
    result = benchmark(lambda: central.localize(cues))
    assert result is not None
    info = _measure_network(central, lambda: central.localize(cues))
    benchmark.extra_info.update(info)
    print_table("E1 centralized localization", [{"service": "localization", **info}])


def test_e1_tiles(benchmark, bench_scenario, central):
    coordinate = tile_for_point(bench_scenario.city.bounds.center, 17)
    result = benchmark(lambda: central.get_tile(coordinate))
    assert result is not None
    info = _measure_network(central, lambda: central.get_tile(coordinate))
    benchmark.extra_info.update(info)
    print_table("E1 centralized tiles", [{"service": "tiles", **info}])


def test_e1_preprocessing_pipeline(benchmark, bench_scenario):
    """The Figure-1 offline stage: ingest + preprocess the whole world map."""
    from repro.centralized.preprocess import preprocess_world_map

    world_map = bench_scenario.centralized.world_map
    report = benchmark.pedantic(
        lambda: preprocess_world_map(world_map, use_contraction_hierarchy=False),
        rounds=3,
        iterations=1,
    )
    rows = [
        {
            "graph_vertices": report.report.graph_vertices,
            "geocode_entries": report.report.geocode_entries,
            "search_entries": report.report.search_entries,
        }
    ]
    benchmark.extra_info.update(rows[0])
    print_table("E1 centralized preprocessing", rows)
