"""E13 — workload engine: client fleets, tail latency and cache hit-rates.

Sweeps fleet size with the mixed search/route/tile/localize workload and
compares cached against uncached discovery, reporting p50/p95/p99 request
latency and the hit-rates of the three cache layers (device discovery cache,
client tile LRU, resolver DNS cache).  This is the traffic-side companion to
E3: instead of one client repeating one query, a Zipf-skewed fleet exercises
the whole client stack.

Runs two ways:

* under pytest-benchmark like the other experiments, or
* standalone: ``python benchmarks/bench_e13_workload.py [--smoke]`` —
  ``--smoke`` runs a reduced sweep that finishes in well under 30 seconds
  (used by ``scripts/check.sh``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.config import FederationConfig
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _util import print_table  # noqa: E402

WORLD_SEED = 33
WORKLOAD_SEED = 7
DEVICE_CACHE_TTL_SECONDS = 120.0
TILE_CACHE_ENTRIES = 256


def build_workload_scenario(cached: bool, seed: int = WORLD_SEED):
    """The standard E13 world, with client-side caches on or off."""
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=DEVICE_CACHE_TTL_SECONDS if cached else 0.0,
        client_tile_cache_entries=TILE_CACHE_ENTRIES if cached else 0,
    )
    return build_scenario(store_count=2, city_rows=5, city_cols=5, config=config, seed=seed)


def run_fleet(clients: int, steps: int, cached: bool, seed: int = WORKLOAD_SEED) -> dict[str, object]:
    """Run one fleet and distill the results row the sweep tables print."""
    scenario = build_workload_scenario(cached)
    engine = WorkloadEngine(
        scenario, WorkloadConfig(clients=clients, steps=steps, seed=seed)
    )
    report = engine.run()
    tail = report.latency_percentiles()
    return {
        "clients": clients,
        "cached": str(cached),
        "requests": report.requests,
        "errors": report.errors,
        "p50_ms": tail["p50"],
        "p95_ms": tail["p95"],
        "p99_ms": tail["p99"],
        "disc_hit_rate": report.discovery_cache_hit_rate,
        "tile_hit_rate": report.tile_cache_hit_rate,
        "dns_hit_rate": report.dns_cache_hit_rate,
    }


def sweep(fleet_sizes: list[int], steps: int) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for clients in fleet_sizes:
        for cached in (False, True):
            rows.append(run_fleet(clients, steps, cached))
    return rows


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_e13_cached_vs_uncached(benchmark):
    """Client-side caching lifts hit-rate and cuts the latency distribution."""
    uncached = run_fleet(clients=25, steps=6, cached=False)
    cached = run_fleet(clients=25, steps=6, cached=True)
    print_table("E13 cached vs uncached discovery (25 clients)", [uncached, cached])

    assert cached["disc_hit_rate"] > uncached["disc_hit_rate"]
    assert cached["disc_hit_rate"] > 0.3
    assert uncached["disc_hit_rate"] == 0.0
    assert cached["p50_ms"] <= uncached["p50_ms"]

    benchmark.extra_info.update(
        {"cached_hit_rate": cached["disc_hit_rate"], "cached_p99": cached["p99_ms"]}
    )
    benchmark(lambda: run_fleet(clients=5, steps=2, cached=True))


def test_e13_fleet_size_sweep(benchmark):
    """Tail latency stays bounded as the fleet grows (shared caches warm up)."""
    rows = sweep([10, 50], steps=4)
    print_table("E13 fleet size sweep", rows)
    cached_rows = [row for row in rows if row["cached"] == "True"]
    assert all(row["disc_hit_rate"] > 0.0 for row in cached_rows)
    benchmark(lambda: run_fleet(clients=10, steps=2, cached=True))


def test_e13_deterministic_snapshot(benchmark):
    """Fixed seed → byte-identical metrics snapshot across engine runs."""
    def one_run():
        scenario = build_workload_scenario(cached=True)
        engine = WorkloadEngine(
            scenario, WorkloadConfig(clients=100, steps=3, seed=WORKLOAD_SEED)
        )
        return engine.run().snapshot()

    first = one_run()
    second = one_run()
    assert first == second
    skipped = sum(value for key, value in first.items() if key.startswith("skipped."))
    assert first["requests"] + skipped + first["errors"] == 300.0  # clients * steps
    benchmark.extra_info["p99_ms"] = first["latency_ms.all.p99"]
    benchmark(lambda: run_fleet(clients=5, steps=2, cached=True))


# ----------------------------------------------------------------------
# Standalone mode
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep (finishes in <30s) for CI smoke checks",
    )
    parser.add_argument("--steps", type=int, default=None, help="steps per client (>= 1)")
    args = parser.parse_args(argv)
    if args.steps is not None and args.steps < 1:
        parser.error("--steps must be >= 1")

    if args.smoke:
        fleet_sizes = [10, 50]
        steps = args.steps if args.steps is not None else 3
    else:
        fleet_sizes = [10, 100, 1000]
        steps = args.steps if args.steps is not None else 4

    rows = sweep(fleet_sizes, steps)
    print_table("E13 workload sweep (cached vs uncached discovery)", rows)

    uncached = [row for row in rows if row["cached"] == "False"]
    cached = [row for row in rows if row["cached"] == "True"]
    for before, after in zip(uncached, cached):
        if after["disc_hit_rate"] <= before["disc_hit_rate"]:
            print("FAIL: cached discovery did not beat the uncached baseline")
            return 1
    print("\nOK: cached discovery hit-rate beats the uncached baseline at every fleet size")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
