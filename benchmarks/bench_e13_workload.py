"""E13 — workload engine: client fleets, tail latency and server saturation.

Sweeps fleet size with the mixed search/route/tile/localize workload and
compares cached against uncached discovery, reporting p50/p95/p99 request
latency (including server-side queueing delay), the hit-rates of the three
cache layers (device discovery cache, client tile LRU, resolver DNS cache),
and — new with the server-side load model — per-map-server utilization,
queue depth and dropped requests, so the sweep shows *where the servers
saturate* rather than only what clients observe.

Runs three ways:

* under pytest-benchmark like the other experiments;
* standalone: ``python benchmarks/bench_e13_workload.py [--smoke]`` —
  ``--smoke`` runs a reduced sweep that finishes in seconds (used by
  ``scripts/check.sh``, which also holds it to a wall-clock budget via
  ``--budget-seconds``); like E14, the smoke sweep *is* the committed
  ``BENCH_e13.json`` artifact, so every check run re-verifies that it
  reproduces byte-for-byte;
* the full sweep (no flags) runs 10 → 10,000 clients (~40 s); write it
  elsewhere (``--json``) when tracking the long perf trajectory so it
  does not clobber the gated smoke artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.config import FederationConfig
from repro.simulation.queueing import ServiceTimeModel
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _util import check_md1_sanity, print_table  # noqa: E402

WORLD_SEED = 33
WORKLOAD_SEED = 7
DEVICE_CACHE_TTL_SECONDS = 120.0
TILE_CACHE_ENTRIES = 256

SERVICE_TIMES = ServiceTimeModel(
    default_ms=2.0,
    per_kind_ms={
        "search": 1.5,
        "routing": 4.0,
        "tiles": 0.5,
        "localization": 2.5,
    },
)
"""Per-request service times for the map-server load model.

Small against the 50 ms WAN round trip, so small fleets still measure the
network; at thousands of concurrent clients per round the per-server work
adds up and the queueing delay (then the drop rate) exposes the saturation
knee.
"""

SERVER_QUEUE_CAPACITY = 256
"""Deeper than the library default (64): the deterministic fleet issues
requests in near-lockstep phases, so a shallow buffer sheds load well before
the service rate itself saturates.  256 keeps drops a signal of genuine
saturation (thousands of clients) rather than phase alignment."""

DEFAULT_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e13.json"
"""The committed, check.sh-gated artifact — written by the *smoke* sweep."""
FULL_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e13_full.json"
"""Default output of the full sweep, so exploratory 10→10k runs never
clobber the byte-for-byte-gated smoke artifact."""


def build_workload_scenario(cached: bool, seed: int = WORLD_SEED, loaded: bool = True):
    """The standard E13 world, with client caches and the server load model."""
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=DEVICE_CACHE_TTL_SECONDS if cached else 0.0,
        client_tile_cache_entries=TILE_CACHE_ENTRIES if cached else 0,
        service_times=SERVICE_TIMES if loaded else None,
        server_queue_capacity=SERVER_QUEUE_CAPACITY,
    )
    return build_scenario(
        store_count=2,
        city_rows=5,
        city_cols=5,
        config=config,
        seed=seed,
        reuse_worlds=True,
    )


def run_fleet(
    clients: int,
    steps: int,
    cached: bool,
    seed: int = WORKLOAD_SEED,
    loaded: bool = True,
) -> dict[str, object]:
    """Run one fleet and distill the results row the sweep tables print."""
    started = time.perf_counter()
    scenario = build_workload_scenario(cached, loaded=loaded)
    engine = WorkloadEngine(
        scenario, WorkloadConfig(clients=clients, steps=steps, seed=seed)
    )
    report = engine.run()
    wall_seconds = time.perf_counter() - started
    tail = report.latency_percentiles()
    utilizations = [s.get("utilization", 0.0) for s in report.server_stats.values()]
    depths = [s.get("max_depth", 0.0) for s in report.server_stats.values()]
    return {
        "clients": clients,
        "cached": str(cached),
        "requests": report.requests,
        "errors": report.errors,
        "dropped": report.dropped_requests,
        "p50_ms": tail["p50"],
        "p95_ms": tail["p95"],
        "p99_ms": tail["p99"],
        "util_max": max(utilizations, default=0.0),
        "qdepth_max": max(depths, default=0.0),
        "disc_hit_rate": report.discovery_cache_hit_rate,
        "tile_hit_rate": report.tile_cache_hit_rate,
        "dns_hit_rate": report.dns_cache_hit_rate,
        # Carried for the JSON artifact (dropped from the printed table).
        "_server_stats": report.server_stats,
        "_wall_seconds": wall_seconds,
        "_simulated_seconds": report.simulated_seconds,
    }


def sweep(fleet_sizes: list[int], steps: int) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for clients in fleet_sizes:
        for cached in (False, True):
            rows.append(run_fleet(clients, steps, cached))
    return rows


def table_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    return [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]


def emit_json(rows: list[dict[str, object]], steps: int, path: Path) -> None:
    """Write the machine-readable sweep artifact future PRs can diff."""
    payload = {
        "experiment": "E13",
        "description": "fleet sweep with server-side queueing model",
        "world_seed": WORLD_SEED,
        "workload_seed": WORKLOAD_SEED,
        "steps": steps,
        "service_times_ms": {
            "default": SERVICE_TIMES.default_ms,
            **dict(SERVICE_TIMES.per_kind_ms),
        },
        "server_queue_capacity": SERVER_QUEUE_CAPACITY,
        "rows": [
            {
                "clients": row["clients"],
                "cached": row["cached"] == "True",
                "requests": row["requests"],
                "errors": row["errors"],
                "dropped": row["dropped"],
                "latency_ms": {
                    "p50": row["p50_ms"],
                    "p95": row["p95_ms"],
                    "p99": row["p99_ms"],
                },
                "cache_hit_rates": {
                    "discovery": row["disc_hit_rate"],
                    "tiles": row["tile_hit_rate"],
                    "dns": row["dns_hit_rate"],
                },
                "servers": row["_server_stats"],
                # Deliberately no wall-clock fields: the artifact must be
                # byte-identical across runs (check.sh enforces it).
                "simulated_seconds": row["_simulated_seconds"],
            }
            for row in rows
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_e13_cached_vs_uncached(benchmark):
    """Client-side caching lifts hit-rate and cuts the latency distribution."""
    uncached = run_fleet(clients=25, steps=6, cached=False)
    cached = run_fleet(clients=25, steps=6, cached=True)
    print_table("E13 cached vs uncached discovery (25 clients)", table_rows([uncached, cached]))

    assert cached["disc_hit_rate"] > uncached["disc_hit_rate"]
    assert cached["disc_hit_rate"] > 0.3
    assert uncached["disc_hit_rate"] == 0.0
    assert cached["p50_ms"] <= uncached["p50_ms"]

    benchmark.extra_info.update(
        {"cached_hit_rate": cached["disc_hit_rate"], "cached_p99": cached["p99_ms"]}
    )
    benchmark(lambda: run_fleet(clients=5, steps=2, cached=True))


def test_e13_fleet_size_sweep(benchmark):
    """Tail latency stays bounded as the fleet grows (shared caches warm up)."""
    rows = sweep([10, 50], steps=4)
    print_table("E13 fleet size sweep", table_rows(rows))
    cached_rows = [row for row in rows if row["cached"] == "True"]
    assert all(row["disc_hit_rate"] > 0.0 for row in cached_rows)
    benchmark(lambda: run_fleet(clients=10, steps=2, cached=True))


def test_e13_server_saturation(benchmark):
    """Server utilization grows with fleet size under the queueing model."""
    small = run_fleet(clients=10, steps=3, cached=True)
    large = run_fleet(clients=400, steps=3, cached=True)
    print_table("E13 server saturation", table_rows([small, large]))
    assert large["util_max"] > small["util_max"]
    assert large["qdepth_max"] >= small["qdepth_max"]
    # The queueing delay clients wait out grows with the fleet.
    def worst_mean_wait(row):
        return max(s["mean_wait_ms"] for s in row["_server_stats"].values())

    assert worst_mean_wait(large) > worst_mean_wait(small)
    benchmark.extra_info["util_max_400"] = large["util_max"]
    benchmark(lambda: run_fleet(clients=50, steps=2, cached=True))


def test_e13_deterministic_snapshot(benchmark):
    """Fixed seed → byte-identical metrics snapshot across engine runs."""
    def one_run():
        scenario = build_workload_scenario(cached=True)
        engine = WorkloadEngine(
            scenario, WorkloadConfig(clients=100, steps=3, seed=WORKLOAD_SEED)
        )
        return engine.run().snapshot()

    first = one_run()
    second = one_run()
    assert first == second
    skipped = sum(value for key, value in first.items() if key.startswith("skipped."))
    assert first["requests"] + skipped + first["errors"] == 300.0  # clients * steps
    benchmark.extra_info["p99_ms"] = first["latency_ms.all.p99"]
    benchmark(lambda: run_fleet(clients=5, steps=2, cached=True))


# ----------------------------------------------------------------------
# Standalone mode
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep (finishes in seconds) for CI smoke checks",
    )
    parser.add_argument("--steps", type=int, default=None, help="steps per client (>= 1)")
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=f"where to write the sweep artifact (smoke default {DEFAULT_JSON_PATH.name} "
        f"— the committed, byte-for-byte-gated artifact; full-sweep default "
        f"{FULL_JSON_PATH.name} so exploration never clobbers the gated file)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON artifact"
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="fail (exit 1) if the sweep takes longer than this wall-clock budget",
    )
    args = parser.parse_args(argv)
    if args.steps is not None and args.steps < 1:
        parser.error("--steps must be >= 1")

    if args.smoke:
        fleet_sizes = [10, 50]
        steps = args.steps if args.steps is not None else 3
    else:
        fleet_sizes = [10, 100, 1000, 10_000]
        steps = args.steps if args.steps is not None else 4

    started = time.perf_counter()
    rows = sweep(fleet_sizes, steps)
    elapsed = time.perf_counter() - started
    print_table("E13 workload sweep (cached vs uncached discovery)", table_rows(rows))

    json_path = args.json if args.json is not None else (DEFAULT_JSON_PATH if args.smoke else FULL_JSON_PATH)
    if not args.no_json:
        emit_json(rows, steps, json_path)
        print(f"\nwrote {json_path}")

    failures = []
    uncached = [row for row in rows if row["cached"] == "False"]
    cached = [row for row in rows if row["cached"] == "True"]
    for before, after in zip(uncached, cached):
        if after["disc_hit_rate"] <= before["disc_hit_rate"]:
            failures.append("cached discovery did not beat the uncached baseline")
            break
    if len(fleet_sizes) > 1:
        smallest = [r for r in rows if r["clients"] == fleet_sizes[0]]
        largest = [r for r in rows if r["clients"] == fleet_sizes[-1]]
        if max(r["util_max"] for r in largest) <= max(r["util_max"] for r in smallest):
            failures.append("server utilization did not grow with fleet size")
    # Analytic sanity: below saturation, measured mean waits must sit within
    # the M/D/1 (Pollaczek–Khinchine) band — Poisson lower bound to
    # one-batch-per-round upper bound.
    for row in rows:
        for failure in check_md1_sanity(row["_server_stats"], steps):
            failures.append(f"M/D/1 sanity ({row['clients']} clients, cached={row['cached']}): {failure}")
    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        failures.append(
            f"sweep took {elapsed:.1f}s, over the {args.budget_seconds:.1f}s budget "
            "(hot-path regression?)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"\nOK: cached discovery wins at every fleet size and server load grows "
        f"toward saturation ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
