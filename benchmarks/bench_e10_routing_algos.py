"""E10 — Section 4.1: the preprocessing/query trade-off of contraction hierarchies.

The centralized pipeline (and each federated map server) can preprocess its
road graph with contraction hierarchies to make queries cheap.  This
experiment reproduces the characteristic trade-off: preprocessing cost grows
with graph size, while queries settle far fewer vertices than plain Dijkstra
and return identical distances.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.geometry.point import LatLng
from repro.routing.contraction import build_contraction_hierarchy
from repro.routing.graph import RoutingGraph
from repro.routing.shortest_path import astar, bidirectional_dijkstra, dijkstra

from _util import print_table


def _grid_graph(rows: int, cols: int, drop_probability: float = 0.1, seed: int = 0) -> RoutingGraph:
    rng = random.Random(seed)
    graph = RoutingGraph()
    origin = LatLng(40.0, -80.0)
    for i in range(rows):
        for j in range(cols):
            graph.add_vertex(i * cols + j, origin.destination(0.0, i * 100.0).destination(90.0, j * 100.0))
    for i in range(rows):
        for j in range(cols):
            vertex = i * cols + j
            if j + 1 < cols and rng.random() > drop_probability:
                graph.connect(vertex, vertex + 1)
            if i + 1 < rows and rng.random() > drop_probability:
                graph.connect(vertex, vertex + cols)
    return graph


def test_e10_preprocessing_vs_query_speedup(benchmark):
    rows = []
    for side in (6, 10, 14):
        graph = _grid_graph(side, side, seed=side)
        start = time.perf_counter()
        hierarchy = build_contraction_hierarchy(graph)
        preprocess_seconds = time.perf_counter() - start

        rng = random.Random(1)
        dijkstra_settled = 0
        ch_settled = 0
        query_count = 0
        for _ in range(20):
            source = rng.randrange(graph.vertex_count)
            target = rng.randrange(graph.vertex_count)
            try:
                plain = dijkstra(graph, source, target)
                fast = hierarchy.query(source, target)
            except Exception:
                continue
            assert fast.cost == pytest.approx(plain.cost, rel=1e-9)
            dijkstra_settled += plain.settled_vertices
            ch_settled += fast.settled_vertices
            query_count += 1

        rows.append(
            {
                "vertices": graph.vertex_count,
                "shortcuts": hierarchy.shortcut_count,
                "preprocess_s": preprocess_seconds,
                "dijkstra_settled/query": dijkstra_settled / max(1, query_count),
                "ch_settled/query": ch_settled / max(1, query_count),
            }
        )
    print_table("E10 contraction hierarchies: preprocessing vs query work", rows)
    # CH queries settle no more vertices than Dijkstra (usually far fewer).
    for row in rows:
        assert row["ch_settled/query"] <= row["dijkstra_settled/query"] * 1.05
    benchmark.extra_info["largest_graph_shortcuts"] = rows[-1]["shortcuts"]

    graph = _grid_graph(8, 8, seed=99)
    benchmark(lambda: build_contraction_hierarchy(graph))


def test_e10_query_algorithm_comparison(benchmark):
    """Query-time comparison of Dijkstra, A*, bidirectional and CH on one graph."""
    graph = _grid_graph(12, 12, seed=7)
    hierarchy = build_contraction_hierarchy(graph)
    rng = random.Random(2)
    pairs = [(rng.randrange(graph.vertex_count), rng.randrange(graph.vertex_count)) for _ in range(20)]

    def timed(fn) -> tuple[float, float]:
        start = time.perf_counter()
        settled = 0
        for source, target in pairs:
            try:
                settled += fn(source, target).settled_vertices
            except Exception:
                continue
        return (time.perf_counter() - start) * 1000.0 / len(pairs), settled / len(pairs)

    rows = []
    for name, fn in (
        ("dijkstra", lambda s, t: dijkstra(graph, s, t)),
        ("astar", lambda s, t: astar(graph, s, t)),
        ("bidirectional", lambda s, t: bidirectional_dijkstra(graph, s, t)),
        ("contraction hierarchy", lambda s, t: hierarchy.query(s, t)),
    ):
        per_query_ms, settled = timed(fn)
        rows.append({"algorithm": name, "ms_per_query": per_query_ms, "settled_per_query": settled})
    print_table("E10 query algorithms on a 144-vertex graph", rows)
    assert rows[-1]["settled_per_query"] <= rows[0]["settled_per_query"]
    source, target = pairs[0]
    benchmark(lambda: hierarchy.query(source, target))


def test_e10_city_graph_ablation(benchmark, bench_scenario):
    """The same ablation on the generated city graph used by the experiments."""
    from repro.routing.graph import graph_from_map

    graph = graph_from_map(bench_scenario.city.map_data)
    start = time.perf_counter()
    hierarchy = build_contraction_hierarchy(graph)
    preprocess_seconds = time.perf_counter() - start
    rng = random.Random(5)
    vertices = list(graph.vertices())
    settled_plain = 0
    settled_ch = 0
    for _ in range(15):
        source, target = rng.choice(vertices), rng.choice(vertices)
        plain = dijkstra(graph, source, target)
        fast = hierarchy.query(source, target)
        assert fast.cost == pytest.approx(plain.cost, rel=1e-9)
        settled_plain += plain.settled_vertices
        settled_ch += fast.settled_vertices
    rows = [
        {
            "graph": "scenario city",
            "vertices": graph.vertex_count,
            "preprocess_s": preprocess_seconds,
            "dijkstra_settled": settled_plain / 15,
            "ch_settled": settled_ch / 15,
        }
    ]
    print_table("E10 city road graph", rows)
    source, target = rng.choice(vertices), rng.choice(vertices)
    benchmark(lambda: hierarchy.query(source, target))
