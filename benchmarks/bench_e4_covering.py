"""E4 — Section 5.1: cell coverings as DNS names.

How many domain names does a map registration need, and how much does the
covering over-approximate the true region (the "fuzzy boundary")?  Sweeps the
covering level limit and the region size.
"""

from __future__ import annotations

from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.spatialindex.covering import (
    CoveringOptions,
    RegionCoverer,
    covering_area_square_meters,
)

from _util import print_table

CENTER = LatLng(40.44, -79.95)


def test_e4_covering_size_vs_level(benchmark):
    """Covering size and over-approximation for a store-sized region."""
    region = Polygon.regular(CENTER, 40.0, sides=8)
    rows = []
    for max_level in (13, 15, 17, 19):
        coverer = RegionCoverer(CoveringOptions(min_level=11, max_level=max_level, max_cells=128))
        cells = coverer.cover_polygon(region)
        rows.append(
            {
                "max_level": max_level,
                "cells (DNS names)": len(cells),
                "blowup_factor": covering_area_square_meters(cells) / region.area_square_meters(),
            }
        )
    print_table("E4 covering of a 40 m store vs max level", rows)
    # Finer levels trade more names for a tighter region approximation.
    assert rows[-1]["blowup_factor"] < rows[0]["blowup_factor"]
    benchmark.extra_info["finest_cells"] = rows[-1]["cells (DNS names)"]
    coverer = RegionCoverer(CoveringOptions(min_level=11, max_level=17, max_cells=128))
    benchmark(lambda: coverer.cover_polygon(region))


def test_e4_covering_size_vs_region_size(benchmark):
    """From a store to a campus to a whole city district."""
    rows = []
    for radius in (30.0, 150.0, 600.0, 2_000.0):
        region = Polygon.regular(CENTER, radius, sides=10)
        coverer = RegionCoverer(CoveringOptions(min_level=11, max_level=17, max_cells=256))
        cells = coverer.cover_polygon(region)
        rows.append(
            {
                "region_radius_m": radius,
                "cells (DNS names)": len(cells),
                "blowup_factor": covering_area_square_meters(cells) / region.area_square_meters(),
            }
        )
    print_table("E4 covering size vs region size (levels 11-17)", rows)
    assert all(row["cells (DNS names)"] <= 256 for row in rows)
    benchmark.extra_info["largest_region_cells"] = rows[-1]["cells (DNS names)"]
    region = Polygon.regular(CENTER, 600.0, sides=10)
    coverer = RegionCoverer(CoveringOptions(min_level=11, max_level=17, max_cells=256))
    benchmark(lambda: coverer.cover_polygon(region))


def test_e4_boundary_fuzziness_false_positive_rate(benchmark):
    """How often does a point just outside the region still discover it?

    The covering over-approximation means nearby-but-outside clients discover
    the server and must filter it out afterwards; this quantifies how often,
    as a function of distance from the boundary.
    """
    region = Polygon.regular(CENTER, 50.0, sides=12)
    coverer = RegionCoverer(CoveringOptions(min_level=13, max_level=17, max_cells=64))
    cells = coverer.cover_polygon(region)

    rows = []
    for extra_distance in (10.0, 50.0, 150.0, 400.0):
        hits = 0
        samples = 72
        for step in range(samples):
            bearing = 360.0 * step / samples
            probe = CENTER.destination(bearing, 50.0 + extra_distance)
            if any(cell.contains_point(probe) for cell in cells):
                hits += 1
        rows.append(
            {
                "meters_outside": extra_distance,
                "discovery_false_positive_rate": hits / samples,
            }
        )
    print_table("E4 fuzzy-boundary false positives", rows)
    # Fuzziness decays with distance: far-away points rarely sweep the server in.
    assert rows[-1]["discovery_false_positive_rate"] <= rows[0]["discovery_false_positive_rate"]
    benchmark(lambda: coverer.cover_polygon(region))
