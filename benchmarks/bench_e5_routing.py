"""E5 — Section 5.2 Routing: quality of stitched federated routes.

For random origin/destination pairs, compares the federated stitched route
against the centralized optimum over the same data (route stretch), and
reports how many servers/legs each route needed.  Also measures the
street-to-shelf scenario where only the federation can complete the route.
"""

from __future__ import annotations

import random

from repro.simulation.metrics import Summary

from _util import print_table


def test_e5_outdoor_route_stretch(benchmark, bench_scenario, bench_client):
    """Outdoor routes: the federation should match the centralized optimum."""
    rng = random.Random(3)
    stretch = Summary("stretch")
    pairs = []
    for _ in range(15):
        origin = bench_scenario.city.random_street_point(rng)
        destination = bench_scenario.city.random_street_point(rng)
        if origin.distance_to(destination) < 100.0:
            continue
        pairs.append((origin, destination))

    for origin, destination in pairs:
        federated = bench_client.route(origin, destination)
        central = bench_scenario.centralized.route(origin, destination)
        assert central is not None
        optimal = max(central.cost, 1.0)
        stretch.observe(federated.length_meters / optimal)

    rows = [
        {
            "routes": stretch.count,
            "mean_stretch": stretch.mean,
            "max_stretch": stretch.maximum,
        }
    ]
    print_table("E5 outdoor route stretch (federated / centralized optimum)", rows)
    assert stretch.mean < 1.3
    benchmark.extra_info["mean_stretch"] = stretch.mean
    origin, destination = pairs[0]
    benchmark(lambda: bench_client.route(origin, destination))


def test_e5_street_to_shelf_routes(benchmark, bench_scenario, bench_client):
    """Indoor destinations: only the federation reaches the shelf."""
    from repro.worldgen.scenario import outdoor_point_near

    rows = []
    reach_gap = Summary("gap")
    for index, store in enumerate(bench_scenario.stores):
        origin = outdoor_point_near(bench_scenario, index, 180.0)
        shelf = next(iter(store.product_locations.values()))
        federated = bench_client.route(origin, shelf)
        central_polyline = bench_scenario.centralized.route_locations(origin, shelf)
        central_gap = central_polyline[-1].distance_to(shelf) if central_polyline else float("nan")
        reach_gap.observe(federated.route.points[-1].distance_to(shelf))
        rows.append(
            {
                "store": store.name,
                "federated_legs": federated.legs_used,
                "federated_end_gap_m": federated.route.points[-1].distance_to(shelf),
                "centralized_end_gap_m": central_gap,
            }
        )
    print_table("E5 street-to-shelf routes", rows)
    assert reach_gap.maximum < 5.0
    store = bench_scenario.stores[0]
    from repro.worldgen.scenario import outdoor_point_near as _near

    origin = _near(bench_scenario, 0, 180.0)
    shelf = next(iter(store.product_locations.values()))
    benchmark(lambda: bench_client.route(origin, shelf))


def test_e5_per_server_work(benchmark, bench_scenario, bench_client):
    """How much of the route computation each map server performed."""
    from repro.worldgen.scenario import outdoor_point_near

    store = bench_scenario.stores[0]
    origin = outdoor_point_near(bench_scenario, 0, 200.0)
    shelf = next(iter(store.product_locations.values()))

    before = {sid: server.stats.requests_by_service.get("routing", 0) for sid, server in bench_scenario.federation.servers.items()}
    result = bench_client.route(origin, shelf)
    after = {sid: server.stats.requests_by_service.get("routing", 0) for sid, server in bench_scenario.federation.servers.items()}
    rows = [
        {"server": sid, "routing_requests": after[sid] - before[sid]}
        for sid in sorted(after)
        if after[sid] - before[sid] > 0
    ]
    print_table("E5 per-server routing requests for one street-to-shelf query", rows)
    assert result.servers_consulted >= len(rows) > 0
    benchmark(lambda: bench_client.route(origin, shelf))
