"""E11 — Section 5.2 Tile rendering / Section 3 heterogeneity.

Measures (a) MapCruncher-style alignment error as a function of the number of
manual correspondences and their noise, and (b) composite-viewport coverage
when stitching the city map with a store's higher-fidelity indoor map, versus
the city map alone.
"""

from __future__ import annotations

import random

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import LocalPoint
from repro.tiles.correspondence import CorrespondenceSet
from repro.tiles.renderer import TileRenderer
from repro.tiles.stitcher import TileStitcher, composite_coverage
from repro.tiles.tile_math import tiles_for_box

from _util import print_table


def test_e11_alignment_error_vs_correspondences(benchmark, bench_scenario):
    """More (noisy) manual correspondences give a better frame alignment."""
    store = bench_scenario.stores[0]
    truth = store.projection
    rng = random.Random(3)

    probes = [
        LocalPoint(rng.uniform(0, store.width_meters), rng.uniform(0, store.depth_meters), truth.frame)
        for _ in range(20)
    ]

    def mean_error(correspondence_count: int, noise_meters: float) -> float:
        correspondences = CorrespondenceSet(local_frame=truth.frame)
        for _ in range(correspondence_count):
            local = LocalPoint(
                rng.uniform(0, store.width_meters), rng.uniform(0, store.depth_meters), truth.frame
            )
            geographic = truth.to_geographic(local).destination(
                rng.uniform(0, 360.0), abs(rng.gauss(0.0, noise_meters))
            )
            correspondences.add(local, geographic)
        alignment = correspondences.estimate_alignment()
        return sum(
            alignment.local_to_geographic(p).distance_to(truth.to_geographic(p)) for p in probes
        ) / len(probes)

    rows = []
    for count in (2, 4, 8, 16):
        errors = [mean_error(count, noise_meters=1.0) for _ in range(5)]
        rows.append({"correspondences": count, "mean_alignment_error_m": sum(errors) / len(errors)})
    print_table("E11 alignment error vs manual correspondences (1 m annotation noise)", rows)
    assert rows[-1]["mean_alignment_error_m"] < rows[0]["mean_alignment_error_m"] + 0.5
    assert rows[-1]["mean_alignment_error_m"] < 2.0
    benchmark.extra_info["best_alignment_error_m"] = rows[-1]["mean_alignment_error_m"]
    benchmark(lambda: mean_error(8, 1.0))


def test_e11_composite_viewport_coverage(benchmark, bench_scenario, bench_client):
    """Stitching the store map over the city map increases viewport content."""
    store = bench_scenario.stores[0]
    viewport = BoundingBox.around(store.entrance, 50.0)
    zoom = 19

    # City-only rendering.
    city_renderer = TileRenderer(bench_scenario.city.map_data, line_thickness=1)
    stitcher = TileStitcher()
    city_only = {
        coordinate: stitcher.stitch([city_renderer.render(coordinate)])
        for coordinate in tiles_for_box(viewport, zoom)
    }

    # Federated composite through the client.
    view = bench_client.render_viewport(viewport, zoom=zoom)

    rows = [
        {"view": "city map only", "mean_coverage": composite_coverage(city_only)},
        {"view": "federated composite", "mean_coverage": view.coverage_fraction},
    ]
    print_table("E11 viewport coverage around the storefront", rows)
    assert view.coverage_fraction >= composite_coverage(city_only)
    benchmark.extra_info["federated_coverage"] = view.coverage_fraction
    benchmark(lambda: bench_client.render_viewport(viewport, zoom=zoom))


def test_e11_tile_render_and_stitch_cost(benchmark, bench_scenario):
    """Raw cost of rendering + compositing one tile from two sources."""
    store = bench_scenario.stores[0]
    from repro.tiles.tile_math import tile_for_point

    coordinate = tile_for_point(store.entrance, 19)
    city_renderer = TileRenderer(bench_scenario.city.map_data)
    store_renderer = TileRenderer(store.map_data, line_thickness=2)
    stitcher = TileStitcher()

    def render_and_stitch():
        return stitcher.stitch([city_renderer.render(coordinate), store_renderer.render(coordinate)])

    composite = render_and_stitch()
    assert composite.coverage_fraction >= 0.0
    benchmark(render_and_stitch)
