"""E6 — Section 5.2 Localization + Section 2: indoor localization accuracy.

Compares indoor localization error of (a) the coarse GNSS-style fix the
centralized provider is limited to, and (b) the federated flow where store
map servers localize against their private beacon/image fingerprints and the
client selects the most plausible result.  Also sweeps sensor noise.
"""

from __future__ import annotations

import random

from repro.simulation.metrics import Summary, percentile

from _util import print_table


def test_e6_indoor_error_federated_vs_gnss(benchmark, bench_scenario, bench_client):
    store = bench_scenario.stores[0]
    rng = random.Random(5)
    federated_errors = []
    gnss_errors = []
    for _ in range(30):
        true_local = store.random_interior_point(rng)
        true_geo = store.local_to_geographic(true_local)
        cues = store.sense_cues(true_local, rng)
        fix = bench_client.localize(true_geo, cues)
        assert fix.best is not None
        federated_errors.append(fix.location.distance_to(true_geo))
        central = bench_scenario.centralized.localize(cues)
        gnss_errors.append(central.location.distance_to(true_geo))

    rows = [
        {
            "system": "federated (store map servers)",
            "mean_error_m": sum(federated_errors) / len(federated_errors),
            "p90_error_m": percentile(federated_errors, 0.9),
        },
        {
            "system": "centralized (GNSS only)",
            "mean_error_m": sum(gnss_errors) / len(gnss_errors),
            "p90_error_m": percentile(gnss_errors, 0.9),
        },
    ]
    print_table("E6 indoor localization error", rows)
    assert rows[0]["mean_error_m"] < rows[1]["mean_error_m"]
    benchmark.extra_info["federated_mean_error_m"] = rows[0]["mean_error_m"]
    benchmark.extra_info["gnss_mean_error_m"] = rows[1]["mean_error_m"]

    true_local = store.random_interior_point(rng)
    cues = store.sense_cues(true_local, rng)
    benchmark(lambda: bench_client.localize(store.local_to_geographic(true_local), cues))


def test_e6_error_vs_sensor_noise(benchmark, bench_scenario, bench_client):
    """Localization degrades gracefully as cue noise grows."""
    store = bench_scenario.stores[1]
    rows = []
    for rssi_noise in (1.0, 3.0, 6.0, 10.0):
        rng = random.Random(int(rssi_noise * 10))
        errors = Summary("err")
        for _ in range(15):
            true_local = store.random_interior_point(rng)
            true_geo = store.local_to_geographic(true_local)
            cues = store.sense_cues(true_local, rng, rssi_noise_db=rssi_noise, image_noise=rssi_noise / 10.0)
            fix = bench_client.localize(true_geo, cues)
            if fix.best is not None:
                errors.observe(fix.location.distance_to(true_geo))
        rows.append({"rssi_noise_db": rssi_noise, "mean_error_m": errors.mean, "max_error_m": errors.maximum})
    print_table("E6 localization error vs sensor noise", rows)
    assert rows[0]["mean_error_m"] <= rows[-1]["mean_error_m"] + 3.0
    rng = random.Random(0)
    true_local = store.random_interior_point(rng)
    cues = store.sense_cues(true_local, rng)
    benchmark(lambda: bench_client.localize(store.local_to_geographic(true_local), cues))


def test_e6_technology_breakdown(benchmark, bench_scenario, bench_client):
    """Which advertised technology wins, and with what accuracy."""
    store = bench_scenario.stores[2]
    rng = random.Random(9)
    by_technology: dict[str, Summary] = {}
    for trial in range(30):
        true_local = store.random_interior_point(rng)
        true_geo = store.local_to_geographic(true_local)
        cues = store.sense_cues(true_local, rng, include_fiducial=(trial % 3 == 0))
        fix = bench_client.localize(true_geo, cues)
        if fix.best is None:
            continue
        technology = fix.best.result.cue_type.value
        by_technology.setdefault(technology, Summary(technology)).observe(
            fix.location.distance_to(true_geo)
        )
    rows = [
        {"technology": name, "wins": summary.count, "mean_error_m": summary.mean}
        for name, summary in sorted(by_technology.items())
    ]
    print_table("E6 winning localization technology", rows)
    assert rows
    true_local = store.random_interior_point(rng)
    cues = store.sense_cues(true_local, rng)
    benchmark(lambda: bench_client.localize(store.local_to_geographic(true_local), cues))
