"""E17 — correlated disasters: fault injection and graceful degradation.

E14 measures availability under *independent* churn (one server crashes,
one lease expires).  Production federations are judged on the *correlated*
failures: a region loses its uplink, a DNS authority goes dark, a stadium
fills, a bad kernel rolls across a replica fleet.  This experiment runs
the named disaster library (:mod:`repro.faults.scenarios`) — each scenario
twice, fault-free baseline and faulted — and checks every scenario's
measured availability/latency/degradation metrics against its acceptance
bands:

* **regional-outage** — replica 0 of every store partitioned for 100s;
  failed-request rate must stay within the baseline envelope because
  clients fail over to replica 1 (``failovers`` must engage).
* **stadium-flash-crowd** — external search load past queue capacity on
  store 0; the overload must shed server-side (``dropped_requests``)
  without collapsing fleet availability.
* **authority-outage** — discovery DNS dark for 120s; warm devices must
  coast on stale-while-unreachable cached SRV views (``stale_serves`` and
  ``degraded_rate`` must engage), bounded by ``stale_serve_max_ms``.
* **asymmetric-partition** — region 0 loses a replica while operators
  drain the healthy one; region-0 clients must still find service.
* **rolling-gray** — 12x latency + 35% loss marching across replica
  ranks; bounded retransmits keep requests succeeding at inflated p95.

Runs three ways, like E13–E16:

* under pytest-benchmark;
* standalone smoke: ``python benchmarks/bench_e17_faults.py --smoke`` —
  used by ``scripts/check.sh`` (wall-clock budgeted via
  ``--budget-seconds``); the smoke sweep *is* the committed artifact, so
  every check run re-verifies that ``BENCH_e17.json`` reproduces;
* the full sweep (no flags) runs the same scenarios with a larger fleet.

Everything is deterministic under the fixed seeds: the same invocation
rewrites byte-identical JSON.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.faults.scenarios import (
    SCENARIOS,
    WORKLOAD_SEED,
    WORLD_SEED,
    DisasterSpec,
    check_bands,
    scenario_metrics,
)
from repro.workload import WorkloadEngine

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _util import print_table  # noqa: E402

DEFAULT_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e17.json"
"""The committed, check.sh-gated artifact — written by the *smoke* sweep."""
FULL_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e17_full.json"
"""Default output of the full sweep, so exploratory runs never clobber the
byte-for-byte-gated smoke artifact."""

FULL_CLIENTS = 60
"""Fleet size of the full sweep (the smoke sweep uses each scenario's own
``clients``, which is what the committed bands are calibrated against)."""


def _digest(snapshot: dict[str, float]) -> str:
    """A short stable fingerprint of a run's full snapshot (determinism)."""
    import hashlib

    payload = json.dumps(snapshot, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def run_disaster(spec: DisasterSpec, clients: int | None = None) -> dict[str, object]:
    """Run one scenario's baseline + faulted pair and fold the metrics."""
    if clients is not None:
        spec = dataclasses.replace(spec, clients=clients)
    started = time.perf_counter()
    baseline_world = spec.build()
    baseline = WorkloadEngine(
        baseline_world, spec.workload(baseline_world, faulted=False)
    ).run()
    faulted_world = spec.build()
    faulted = WorkloadEngine(
        faulted_world, spec.workload(faulted_world, faulted=True)
    ).run()
    wall_seconds = time.perf_counter() - started
    metrics = scenario_metrics(baseline, faulted)
    return {
        "scenario": spec.name,
        "requests": faulted.requests + faulted.errors,
        "avail": metrics["availability"],
        "base_fail": metrics["baseline_failed_rate"],
        "fail_rate": metrics["failed_rate"],
        "failovers": int(metrics["failovers"]),
        "degraded": metrics["degraded_rate"],
        "stale": int(metrics["stale_serves"]),
        "dropped": int(metrics["dropped_requests"]),
        "p95_x": metrics["p95_inflation"],
        "events": int(metrics["events_applied"]),
        # Carried for the JSON artifact (dropped from the printed table).
        "_title": spec.title,
        "_clients": spec.clients,
        "_metrics": metrics,
        "_bands": {
            name: list(band) for name, band in sorted(spec.bands.items())
        },
        "_band_failures": check_bands(spec, metrics),
        "_wall_seconds": wall_seconds,
        "_baseline_snapshot_digest": _digest(baseline.snapshot()),
        "_snapshot_digest": _digest(faulted.snapshot()),
        "_simulated_seconds": faulted.simulated_seconds,
    }


def sweep(clients: int | None = None) -> list[dict[str, object]]:
    return [run_disaster(spec, clients) for spec in SCENARIOS]


def table_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    return [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]


def emit_json(rows: list[dict[str, object]], path: Path) -> None:
    """Write the machine-readable disaster outcomes + acceptance bands."""
    payload = {
        "experiment": "E17",
        "description": "correlated-disaster scenario library: availability "
        "and graceful degradation under fault injection",
        "world_seed": WORLD_SEED,
        "workload_seed": WORKLOAD_SEED,
        "scenarios": [
            {
                "name": row["scenario"],
                "title": row["_title"],
                "clients": row["_clients"],
                "requests": row["requests"],
                "metrics": row["_metrics"],
                "bands": row["_bands"],
                "band_failures": row["_band_failures"],
                "baseline_snapshot_digest": row["_baseline_snapshot_digest"],
                "snapshot_digest": row["_snapshot_digest"],
                # Deliberately no wall-clock fields: the artifact must be
                # byte-identical across runs (check.sh enforces it).
                "simulated_seconds": row["_simulated_seconds"],
            }
            for row in rows
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def verify(rows: list[dict[str, object]]) -> list[str]:
    """Every scenario's band violations, plus cross-scenario claims."""
    failures: list[str] = []
    for row in rows:
        failures.extend(row["_band_failures"])
    by_name = {row["scenario"]: row for row in rows}

    # The disaster library must cover every fault family the subsystem
    # models: partitions must force failovers, crowds must shed load,
    # authority outages must degrade gracefully, gray must inflate tails.
    outage = by_name.get("regional-outage")
    if outage is not None and outage["failovers"] < 1:
        failures.append("regional outage engaged no failovers")
    crowd = by_name.get("stadium-flash-crowd")
    if crowd is not None and crowd["dropped"] < 1:
        failures.append("flash crowd shed no load")
    authority = by_name.get("authority-outage")
    if authority is not None:
        if authority["stale"] < 1:
            failures.append("authority outage served nothing stale")
        if authority["degraded"] <= 0.0:
            failures.append("authority outage degraded no requests")
    gray = by_name.get("rolling-gray")
    if gray is not None and gray["p95_x"] <= 1.0:
        failures.append("rolling gray failure did not inflate tail latency")
    return failures


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_e17_disasters_stay_in_band(benchmark):
    """Every scenario's faulted run stays inside its acceptance bands."""
    rows = sweep()
    print_table("E17 correlated disasters", table_rows(rows))
    assert not verify(rows)
    benchmark.extra_info["authority_degraded_rate"] = next(
        row["degraded"] for row in rows if row["scenario"] == "authority-outage"
    )
    benchmark(lambda: run_disaster(SCENARIOS[0], clients=8))


def test_e17_deterministic(benchmark):
    """Fixed seeds give byte-identical disaster snapshots."""
    first = run_disaster(SCENARIOS[2])
    second = run_disaster(SCENARIOS[2])
    assert first["_snapshot_digest"] == second["_snapshot_digest"]
    assert first["_baseline_snapshot_digest"] == second["_baseline_snapshot_digest"]
    benchmark(lambda: run_disaster(SCENARIOS[0], clients=8))


# ----------------------------------------------------------------------
# Standalone mode
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="the scenario library at its calibrated fleet sizes (finishes "
        "in seconds) for CI smoke checks",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=f"where to write the sweep artifact (smoke default {DEFAULT_JSON_PATH.name} "
        f"— the committed, byte-for-byte-gated artifact; full-sweep default "
        f"{FULL_JSON_PATH.name} so exploration never clobbers the gated file)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON artifact"
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="fail (exit 1) if the sweep takes longer than this wall-clock budget",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    rows = sweep(clients=None if args.smoke else FULL_CLIENTS)
    elapsed = time.perf_counter() - started
    print_table("E17 correlated disasters (baseline vs faulted)", table_rows(rows))

    failures = verify(rows)

    # Determinism: the richest scenario (authority outage: DNS timeouts,
    # stale serving, degraded accounting) must reproduce exactly.
    repeat = run_disaster(
        SCENARIOS[2], clients=None if args.smoke else FULL_CLIENTS
    )
    reference = next(row for row in rows if row["scenario"] == repeat["scenario"])
    if repeat["_snapshot_digest"] != reference["_snapshot_digest"]:
        failures.append("rerun with fixed seed produced a different snapshot")

    json_path = args.json if args.json is not None else (DEFAULT_JSON_PATH if args.smoke else FULL_JSON_PATH)
    if not args.no_json:
        emit_json(rows, json_path)
        print(f"\nwrote {json_path}")

    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        failures.append(
            f"sweep took {elapsed:.1f}s, over the {args.budget_seconds:.1f}s budget "
            "(hot-path regression?)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"\nOK: all {len(rows)} disasters stayed inside their acceptance bands "
        f"— failover under partitions, load shedding under crowds, stale-serve "
        f"degradation under authority outage ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
