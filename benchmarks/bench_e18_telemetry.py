"""E18 — federation-wide telemetry: roll-ups, SLO burn, measured overhead.

E13–E17 judge the federation by *global* counters: fleet availability,
one latency histogram, one drop total.  The telemetry pipeline
(:mod:`repro.telemetry`) is the observability substrate that makes those
numbers *actionable*: windowed emission at round boundaries, spatial
roll-ups over the covering-cell hierarchy, and per-region SLO error-budget
burn.  This experiment pins the three claims that justify it:

* **hot-spot localization** — a stadium flash crowd saturates one store's
  replicas.  The *global* p95 barely moves (the fleet is fine on average),
  but the zonal shed-rate map puts every dropped request in one covering
  cell: the roll-up sees what the global histogram hides.
* **SLO burn alerting** — a regional uplink cut partitions region-1
  clients from every map server.  Region 1's error-budget burn crosses
  the fast *and* slow multi-window thresholds exactly during the fault
  windows; region 0 and the fault-free baseline never alert.
* **measured overhead** — the pipeline rides the cohort fast path at
  100,000 clients.  Telemetry-on wall clock is compared against
  telemetry-off, and with telemetry disabled the snapshot is
  byte-identical to a run without the subsystem (the E13–E17 artifacts
  cannot move).

Runs three ways, like E13–E17:

* under pytest-benchmark;
* standalone smoke: ``python benchmarks/bench_e18_telemetry.py --smoke``
  — used by ``scripts/check.sh`` (wall-clock budgeted via
  ``--budget-seconds``); the smoke sweep *is* the committed artifact, so
  every check run re-verifies that ``BENCH_e18.json`` reproduces;
* the full sweep (no flags) re-runs the probes with a larger overhead
  fleet and writes ``BENCH_e18_full.json``.

Wall-clock overhead is machine-dependent, so the committed artifact pins
the ``overhead.measured`` block from the last ``--record-overhead`` run;
every invocation still measures fresh and enforces a generous ceiling,
it just does not rewrite the pinned numbers (byte-for-byte gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.config import FederationConfig
from repro.faults.scenarios import RETRY_POLICY, SERVICE_TIMES
from repro.faults.schedule import FaultPlan
from repro.telemetry import SLOConfig, TelemetryConfig
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_e16_scale  # noqa: E402
from _util import print_table  # noqa: E402

WORLD_SEED = 33
WORKLOAD_SEED = 7

CLIENTS = 24
STEPS = 10
STEP_SECONDS = 20.0
RESOLVER_POOLS = 2

TELEMETRY = TelemetryConfig(
    window_seconds=40.0,
    slo=SLOConfig(latency_ms=10_000.0, availability_target=0.99),
)
"""Two rounds per window; an availability-centric SLO (the 10s latency
threshold never fires in this world) with a 1% error budget, so burn is
driven by failed requests and the fault-free baseline stays quiet."""

FAULT_START = 45.0
CROWD_END = 145.0
PARTITION_END = 165.0
CROWD_EXTRA_LOAD = 300

OVERHEAD_STEPS = 3
SMOKE_OVERHEAD_CLIENTS = 100_000
FULL_OVERHEAD_CLIENTS = 250_000
OVERHEAD_CEILING_PCT = 75.0
"""Fresh-measurement guard: telemetry-on may not cost more than this over
telemetry-off at the smoke fleet (the pinned artifact records far less)."""

DEFAULT_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e18.json"
"""The committed, check.sh-gated artifact — written by the *smoke* sweep."""
FULL_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e18_full.json"
"""Default output of the full sweep, so exploratory runs never clobber the
byte-for-byte-gated smoke artifact."""


def _digest(snapshot: dict[str, float]) -> str:
    """A short stable fingerprint of a run's full snapshot (determinism)."""
    import hashlib

    payload = json.dumps(snapshot, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def build_world():
    """The E17-style disaster world: 5x5 city, two stores, two replicas."""
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=120.0,
        registration_ttl_seconds=3600.0,
        client_tile_cache_entries=256,
        service_times=SERVICE_TIMES,
        server_queue_capacity=256,
        retry_policy=RETRY_POLICY,
    )
    return build_scenario(
        store_count=2,
        city_rows=5,
        city_cols=5,
        config=config,
        seed=WORLD_SEED,
        reuse_worlds=True,
        store_replicas=2,
    )


def run_probe_workload(faults: FaultPlan | None = None):
    """One telemetry-on workload over the probe world, faulted or not."""
    scenario = build_world()
    config = WorkloadConfig(
        clients=CLIENTS,
        steps=STEPS,
        seed=WORKLOAD_SEED,
        resolver_pools=RESOLVER_POOLS,
        step_seconds=STEP_SECONDS,
        faults=faults,
        telemetry=TELEMETRY,
    )
    return WorkloadEngine(scenario, config).run()


def run_hotspot() -> dict[str, object]:
    """Flash crowd on store 0: drops localize to one zonal cell while the
    global p95 stays flat — the roll-up sees what the histogram hides."""
    baseline = run_probe_workload()
    crowd_targets = tuple(build_world().store_replica_ids(0))
    faulted = run_probe_workload(
        FaultPlan.flash_crowd(
            crowd_targets, FAULT_START, CROWD_END, extra_load=CROWD_EXTRA_LOAD
        )
    )
    telemetry = faulted.telemetry
    zonal = telemetry.server_zonal()
    dropped_total = sum(zone["dropped"] for zone in zonal.values())
    top_cell, top_zone = max(
        zonal.items(), key=lambda item: (item[1]["dropped"], item[0])
    )
    base_p95 = baseline.latency_percentiles()["p95"]
    fault_p95 = faulted.latency_percentiles()["p95"]
    return {
        "probe": "hotspot",
        "dropped": int(dropped_total),
        "top_cell": top_cell,
        "share": top_zone["dropped"] / dropped_total if dropped_total else 0.0,
        "shed": top_zone["shed_rate"],
        "wait_ms": top_zone["mean_wait_ms"],
        "p95_x": fault_p95 / base_p95 if base_p95 else 0.0,
        "zones": len(zonal),
        "_baseline_dropped": baseline.dropped_requests,
        "_fault_windows": telemetry.fault_windows().get("flash-crowd", []),
        "_baseline_snapshot_digest": _digest(baseline.snapshot()),
        "_snapshot_digest": _digest(faulted.snapshot()),
    }


def run_slo_burn() -> dict[str, object]:
    """Region-1 uplink cut: burn crosses both multi-window thresholds in
    exactly the fault windows; region 0 and the baseline never alert."""
    baseline = run_probe_workload()
    all_servers = tuple(sorted(build_world().federation.registry.registrations))
    faulted = run_probe_workload(
        FaultPlan.partition(all_servers, FAULT_START, PARTITION_END, regions=(1,))
    )
    telemetry = faulted.telemetry
    hit_region, quiet_region = 1, 0
    series = telemetry.burn_series(hit_region)
    alerts = telemetry.alert_windows(hit_region)
    baseline_max = max(
        (
            burn
            for region in baseline.telemetry.regions()
            for burn in baseline.telemetry.burn_series(region)
        ),
        default=0.0,
    )
    quiet_series = telemetry.burn_series(quiet_region)
    return {
        "probe": "slo-burn",
        "region": hit_region,
        "max_burn": max(series, default=0.0),
        "alerts": len(alerts),
        "quiet_max": max(quiet_series, default=0.0),
        "base_max": baseline_max,
        "_burn_series": series,
        "_alert_windows": alerts,
        "_quiet_alerts": telemetry.alert_windows(quiet_region),
        "_baseline_alerts": sum(
            len(baseline.telemetry.alert_windows(region))
            for region in baseline.telemetry.regions()
        ),
        "_fault_windows": telemetry.fault_windows().get("partition", []),
        "_baseline_snapshot_digest": _digest(baseline.snapshot()),
        "_snapshot_digest": _digest(faulted.snapshot()),
    }


def _strip_telemetry(snapshot: dict[str, float]) -> dict[str, float]:
    return {
        key: value
        for key, value in snapshot.items()
        if not key.startswith("telemetry.")
    }


def run_overhead(clients: int, steps: int = OVERHEAD_STEPS) -> dict[str, object]:
    """Telemetry on vs off at scale, on the cohort fast path.

    Also proves transparency: the telemetry-on snapshot minus its
    ``telemetry.*`` keys equals the telemetry-off snapshot byte for byte,
    which is why the committed E13–E17 artifacts cannot move.
    """

    def one_run(telemetry: TelemetryConfig | None):
        scenario = bench_e16_scale.build_scale_scenario(clients)
        config = WorkloadConfig(
            clients=clients,
            steps=steps,
            seed=bench_e16_scale.WORKLOAD_SEED,
            telemetry=telemetry,
        )
        started = time.perf_counter()
        report = WorkloadEngine(scenario, config).run()
        return report, time.perf_counter() - started

    off_report, off_seconds = one_run(None)
    on_report, on_seconds = one_run(TelemetryConfig())
    off_snapshot = off_report.snapshot()
    on_snapshot = on_report.snapshot()
    summary = on_report.telemetry.summary()
    overhead_pct = (
        (on_seconds - off_seconds) / off_seconds * 100.0 if off_seconds else 0.0
    )
    return {
        "probe": "overhead",
        "clients": clients,
        "records": summary["records"],
        "windows": int(len(on_report.telemetry.windows)),
        "cells": int(summary["cells"]),
        "transparent": _strip_telemetry(on_snapshot) == off_snapshot,
        "pct": overhead_pct,
        "_steps": steps,
        "_measured": {
            "off_seconds": round(off_seconds, 3),
            "on_seconds": round(on_seconds, 3),
            "overhead_pct": round(overhead_pct, 2),
        },
        "_snapshot_digest_on": _digest(on_snapshot),
        "_snapshot_digest_off": _digest(off_snapshot),
    }


def table_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    return [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]


def emit_json(
    hotspot: dict[str, object],
    burn: dict[str, object],
    overhead: dict[str, object],
    measured: dict[str, float],
    path: Path,
) -> None:
    """Write the machine-readable probe outcomes.

    ``measured`` is the wall-clock block to embed — the caller passes the
    pinned block from the committed artifact unless ``--record-overhead``
    asked to refresh it, keeping the artifact byte-identical across hosts.
    """
    payload = {
        "experiment": "E18",
        "description": "federation-wide telemetry: zonal hot-spot "
        "localization, per-region SLO burn alerting, and measured "
        "telemetry-on overhead at scale",
        "world_seed": WORLD_SEED,
        "workload_seed": WORKLOAD_SEED,
        "hotspot": {
            "clients": CLIENTS,
            "dropped_total": hotspot["dropped"],
            "baseline_dropped": hotspot["_baseline_dropped"],
            "top_drop_cell": hotspot["top_cell"],
            "top_cell_drop_share": hotspot["share"],
            "top_cell_shed_rate": hotspot["shed"],
            "top_cell_mean_wait_ms": hotspot["wait_ms"],
            "global_p95_inflation": hotspot["p95_x"],
            "zones": hotspot["zones"],
            "fault_windows": hotspot["_fault_windows"],
            "baseline_snapshot_digest": hotspot["_baseline_snapshot_digest"],
            "snapshot_digest": hotspot["_snapshot_digest"],
        },
        "slo_burn": {
            "hit_region": burn["region"],
            "max_burn": burn["max_burn"],
            "alert_windows": burn["alerts"],
            "alert_window_indexes": burn["_alert_windows"],
            "burn_series": burn["_burn_series"],
            "quiet_region_max_burn": burn["quiet_max"],
            "baseline_max_burn": burn["base_max"],
            "fault_windows": burn["_fault_windows"],
            "baseline_snapshot_digest": burn["_baseline_snapshot_digest"],
            "snapshot_digest": burn["_snapshot_digest"],
        },
        "overhead": {
            "clients": overhead["clients"],
            "steps": overhead["_steps"],
            "records": overhead["records"],
            "windows_retained": overhead["windows"],
            "cells": overhead["cells"],
            "telemetry_transparent": overhead["transparent"],
            "snapshot_digest_on": overhead["_snapshot_digest_on"],
            "snapshot_digest_off": overhead["_snapshot_digest_off"],
            # Wall clock is machine-dependent: pinned, not re-measured,
            # unless --record-overhead (the byte gate needs stability).
            "measured": measured,
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def pinned_measured() -> dict[str, float] | None:
    """The committed artifact's wall-clock block, if it exists and parses."""
    try:
        block = json.loads(DEFAULT_JSON_PATH.read_text())["overhead"]["measured"]
    except (OSError, ValueError, KeyError, TypeError):
        return None
    return block if isinstance(block, dict) else None


def verify(
    hotspot: dict[str, object],
    burn: dict[str, object],
    overhead: dict[str, object],
) -> list[str]:
    """The three probe claims, checked against the measured outcomes."""
    failures: list[str] = []

    # Hot-spot: the crowd must shed, the shed must localize, and the
    # global tail must *not* give it away.
    if hotspot["dropped"] < 1:
        failures.append("flash crowd shed no load; nothing to localize")
    if hotspot["share"] < 0.9:
        failures.append(
            f"top cell holds only {hotspot['share']:.0%} of drops "
            "(zonal roll-up failed to localize the hot-spot)"
        )
    if not 0.95 <= hotspot["p95_x"] <= 1.05:
        failures.append(
            f"global p95 moved {hotspot['p95_x']:.2f}x under the crowd — "
            "the 'global histogram hides it' claim does not hold here"
        )
    if hotspot["_baseline_dropped"] != 0:
        failures.append("baseline run dropped requests; hot-spot probe polluted")
    if not hotspot["_fault_windows"]:
        failures.append("windows were not annotated with the flash-crowd fault")

    # SLO burn: the hit region alerts during the fault, nobody else does.
    if burn["alerts"] < 1:
        failures.append("regional partition fired no burn alerts")
    if burn["max_burn"] < TELEMETRY.slo.fast_burn_threshold:
        failures.append(
            f"max burn {burn['max_burn']:.1f}x never crossed the fast "
            f"threshold {TELEMETRY.slo.fast_burn_threshold:.0f}x"
        )
    if not set(burn["_alert_windows"]) <= set(burn["_fault_windows"]):
        failures.append("burn alerts fired outside the partition's windows")
    if burn["_quiet_alerts"]:
        failures.append("the unpartitioned region raised burn alerts")
    if burn["_baseline_alerts"]:
        failures.append("the fault-free baseline raised burn alerts")
    if burn["base_max"] >= TELEMETRY.slo.fast_burn_threshold:
        failures.append(
            f"baseline burn {burn['base_max']:.1f}x already crosses the "
            "fast threshold; the alert has no headroom"
        )

    # Overhead: telemetry must be transparent when off and cheap when on.
    if not overhead["transparent"]:
        failures.append(
            "telemetry-on snapshot minus telemetry.* keys differs from the "
            "telemetry-off snapshot (transparency broken)"
        )
    if overhead["records"] <= 0:
        failures.append("scale run recorded no telemetry")
    if overhead["windows"] < 1:
        failures.append("scale run retained no telemetry windows")
    if overhead["pct"] > OVERHEAD_CEILING_PCT:
        failures.append(
            f"telemetry-on overhead measured {overhead['pct']:.1f}%, over "
            f"the {OVERHEAD_CEILING_PCT:.0f}% ceiling"
        )
    return failures


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_e18_hotspot_localizes_what_global_p95_hides(benchmark):
    hotspot = run_hotspot()
    print_table("E18 hot-spot localization", table_rows([hotspot]))
    assert hotspot["dropped"] >= 1
    assert hotspot["share"] >= 0.9
    assert 0.95 <= hotspot["p95_x"] <= 1.05
    benchmark.extra_info["top_cell_drop_share"] = hotspot["share"]
    benchmark(run_probe_workload)


def test_e18_burn_alerts_track_the_fault_windows(benchmark):
    burn = run_slo_burn()
    print_table("E18 SLO burn", table_rows([burn]))
    assert burn["alerts"] >= 1
    assert set(burn["_alert_windows"]) <= set(burn["_fault_windows"])
    assert not burn["_quiet_alerts"]
    assert not burn["_baseline_alerts"]
    benchmark(run_probe_workload)


def test_e18_telemetry_is_transparent_when_off(benchmark):
    overhead = run_overhead(clients=20_000)
    assert overhead["transparent"]
    assert overhead["records"] > 0
    benchmark(run_probe_workload)


def test_e18_deterministic(benchmark):
    first = run_hotspot()
    second = run_hotspot()
    assert first["_snapshot_digest"] == second["_snapshot_digest"]
    assert first["_baseline_snapshot_digest"] == second["_baseline_snapshot_digest"]
    benchmark(run_probe_workload)


# ----------------------------------------------------------------------
# Standalone mode
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="the calibrated probes with the 100k-client overhead fleet "
        "(finishes in seconds) for CI smoke checks",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=f"where to write the probe artifact (smoke default {DEFAULT_JSON_PATH.name} "
        f"— the committed, byte-for-byte-gated artifact; full-sweep default "
        f"{FULL_JSON_PATH.name} so exploration never clobbers the gated file)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON artifact"
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="fail (exit 1) if the probes take longer than this wall-clock budget",
    )
    parser.add_argument(
        "--record-overhead",
        action="store_true",
        help="rewrite the artifact's pinned overhead.measured wall-clock "
        "block from this run instead of carrying the committed one forward",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    hotspot = run_hotspot()
    burn = run_slo_burn()
    overhead = run_overhead(
        clients=SMOKE_OVERHEAD_CLIENTS if args.smoke else FULL_OVERHEAD_CLIENTS
    )
    elapsed = time.perf_counter() - started
    print_table("E18 hot-spot localization", table_rows([hotspot]))
    print_table("E18 SLO burn alerting", table_rows([burn]))
    print_table("E18 telemetry overhead", table_rows([overhead]))

    failures = verify(hotspot, burn, overhead)

    # Determinism: the richest probe (queue shedding + zonal attribution +
    # fault-window annotation) must reproduce exactly.
    repeat = run_hotspot()
    if repeat["_snapshot_digest"] != hotspot["_snapshot_digest"]:
        failures.append("rerun with fixed seed produced a different snapshot")

    measured = overhead["_measured"]
    if args.smoke and not args.record_overhead:
        pinned = pinned_measured()
        if pinned is not None:
            measured = pinned
    json_path = args.json if args.json is not None else (
        DEFAULT_JSON_PATH if args.smoke else FULL_JSON_PATH
    )
    if not args.no_json:
        emit_json(hotspot, burn, overhead, measured, json_path)
        print(f"\nwrote {json_path}")

    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        failures.append(
            f"probes took {elapsed:.1f}s, over the {args.budget_seconds:.1f}s "
            "budget (hot-path regression?)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"\nOK: zonal roll-up put {hotspot['share']:.0%} of shed load in cell "
        f"{hotspot['top_cell']} while global p95 moved {hotspot['p95_x']:.2f}x; "
        f"region {burn['region']} burned {burn['max_burn']:.1f}x budget with "
        f"{burn['alerts']} alert window(s); telemetry at "
        f"{overhead['clients']:,} clients cost {overhead['pct']:+.1f}% "
        f"({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
