"""E3 — Section 5.1: DNS-based discovery latency, message counts and caching.

Reports discovery cost with a cold resolver cache, a warm cache, and after
TTL expiry, plus the effect of query-location popularity (Zipf-like repeats)
on the achieved cache hit rate — the property the paper leans on when it
argues the DNS's "ubiquitous caching mechanism" makes spatial discovery cheap.
"""

from __future__ import annotations

import random

import pytest

from repro.core.federation import Federation
from repro.geometry.point import LatLng
from repro.geometry.polygon import Polygon
from repro.worldgen.outdoor import generate_city

from _util import print_table


@pytest.fixture(scope="module")
def discovery_world():
    """A federation with a grid of small map servers registered."""
    federation = Federation()
    city = generate_city(rows=5, cols=5, seed=3)
    federation.add_map_server("city.example", city.map_data, is_world_provider=True)
    rng = random.Random(0)
    locations = []
    for index in range(24):
        row = rng.randrange(4)
        col = rng.randrange(4)
        anchor = city.intersections[row][col].location.destination(
            rng.uniform(0, 360), rng.uniform(20.0, 60.0)
        )
        region = Polygon.regular(anchor, rng.uniform(30.0, 80.0), sides=6)
        from repro.osm.builder import MapBuilder

        builder = MapBuilder(name=f"venue-{index}")
        builder.add_node(anchor, {"name": f"venue {index}"})
        map_data = builder.build()
        map_data.set_coverage(region)
        federation.add_map_server(f"venue-{index}.example", map_data)
        locations.append(anchor)
    return federation, city, locations


def test_e3_cold_vs_warm_discovery(benchmark, discovery_world):
    federation, city, locations = discovery_world
    client = federation.client()
    probe = locations[0]

    # Cold: flush the resolver cache first.
    federation.resolver.cache.flush()
    federation.reset_network_stats()
    client.discover(probe, uncertainty_meters=80.0)
    cold = {
        "cache_state": "cold",
        "messages": float(federation.network.stats.messages_sent),
        "sim_latency_ms": federation.network.stats.total_latency_ms,
    }

    # Warm: repeat the same query.
    federation.reset_network_stats()
    client.discover(probe, uncertainty_meters=80.0)
    warm = {
        "cache_state": "warm",
        "messages": float(federation.network.stats.messages_sent),
        "sim_latency_ms": federation.network.stats.total_latency_ms,
    }

    # Expired: advance past the registration TTL.
    federation.network.clock.advance(federation.config.registration_ttl_seconds + 1.0)
    federation.reset_network_stats()
    client.discover(probe, uncertainty_meters=80.0)
    expired = {
        "cache_state": "after TTL expiry",
        "messages": float(federation.network.stats.messages_sent),
        "sim_latency_ms": federation.network.stats.total_latency_ms,
    }

    rows = [cold, warm, expired]
    print_table("E3 discovery cost vs cache state", rows)
    assert warm["sim_latency_ms"] < cold["sim_latency_ms"]
    benchmark.extra_info["cold_messages"] = cold["messages"]
    benchmark.extra_info["warm_messages"] = warm["messages"]
    benchmark(lambda: client.discover(probe, uncertainty_meters=80.0))


def test_e3_zipf_workload_cache_hit_rate(benchmark, discovery_world):
    """Popular places dominate discovery traffic; the cache absorbs them."""
    federation, city, locations = discovery_world
    client = federation.client()
    rng = random.Random(11)
    federation.resolver.cache.flush()

    # Zipf-ish popularity over the venue locations.
    weights = [1.0 / (rank + 1) for rank in range(len(locations))]
    total = sum(weights)
    weights = [w / total for w in weights]

    def one_query():
        location = rng.choices(locations, weights=weights, k=1)[0]
        client.discover(location, uncertainty_meters=60.0)

    for _ in range(150):
        one_query()
    stats = federation.resolver.cache.stats
    hit_rate = stats.hit_rate
    rows = [
        {
            "queries": 150,
            "cache_hit_rate": hit_rate,
            "authoritative_exchanges": float(federation.resolver.stats.authoritative_exchanges),
        }
    ]
    print_table("E3 Zipf discovery workload", rows)
    assert hit_rate > 0.5
    benchmark.extra_info["cache_hit_rate"] = hit_rate
    benchmark(one_query)


def test_e3_discovery_away_from_any_server(benchmark, discovery_world):
    """Negative caching keeps 'nothing here' queries cheap too."""
    federation, _, _ = discovery_world
    client = federation.client()
    empty_spot = LatLng(41.2, -78.3)
    client.discover(empty_spot, uncertainty_meters=60.0)
    federation.reset_network_stats()
    result = client.discover(empty_spot, uncertainty_meters=60.0)
    rows = [
        {
            "servers_found": len(result.server_ids),
            "repeat_messages": float(federation.network.stats.messages_sent),
        }
    ]
    print_table("E3 discovery of an empty region (repeat query)", rows)
    assert result.server_ids == ()
    benchmark(lambda: client.discover(empty_spot, uncertainty_meters=60.0))
