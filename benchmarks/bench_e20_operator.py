"""E20 — the operator API layer: control ops as messages on the wire.

E15 measured the control plane as in-process method calls; E19 closed the
autoscaling loop the same way.  This experiment puts the *operator* on
the network: every control op travels as an authenticated, schema-
validated request through :mod:`repro.operator`, charged real (simulated)
latency, loss, and partitions on the control hop.  Four claims are
pinned:

* **drain convergence lag** — the same one-event drain tape is played
  three ways: ``direct`` (in-process API, the byte-identity transport),
  ``net-healthy`` (every request pays the control-hop RTT) and
  ``net-lossy`` (a gray-failing control endpoint: retransmits, timeouts,
  and same-token retries at later rounds).  Delivery lag — scripted
  instant to the op landing at the authority — must be *strictly* above
  the direct baseline once the wire is real, and grow again under loss;
  the tape must still fully deliver, and a networked drain is still not
  an outage (zero failed requests, fleet convergence intact).
* **partitioned operator** — two operator consoles in different regions
  issue *conflicting* drains on a two-replica group while a region-scoped
  partition cuts one console off.  The partition heals, the cut-off
  console's same-token retry arrives late, and the shared audit log's
  sequence order resolves the race: one audited winner, the loser's
  record shows ``conflict``, the group keeps a registered positive-weight
  member throughout (zero NXDOMAIN windows).
* **autoscaler reaction lag** — the E19 flash-crowd cell re-run with the
  autoscaler's batches routed through the operator API.  Over the network
  transport its first capacity action lands measurably later than over
  the direct transport — the control hop's RTT is now part of the
  reaction time — while the loop still promotes and still beats the
  crowd.
* **audit replay determinism** — replaying the partitioned cell's audit
  log through a fresh API over a fresh federation reproduces the exact
  final SRV state (equal state digests).

Runs three ways, like E13–E19:

* under pytest-benchmark;
* standalone smoke: ``python benchmarks/bench_e20_operator.py --smoke``
  — used by ``scripts/check.sh`` (wall-clock budgeted via
  ``--budget-seconds``); the smoke sweep *is* the committed artifact, so
  every check run re-verifies that ``BENCH_e20.json`` reproduces;
* the full sweep (no flags) re-runs the cells with a larger fleet and
  writes ``BENCH_e20_full.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.control.schedule import ControlEvent, ControlEventKind, ControlSchedule
from repro.core.config import FederationConfig
from repro.faults.scenarios import RETRY_POLICY, SERVICE_TIMES
from repro.operator import (
    AuditLog,
    OperatorApi,
    OperatorClient,
    OperatorConfig,
    PrincipalRegistry,
    replay_audit,
    state_digest,
)
from repro.operator.permissions import ALL_PERMISSIONS
from repro.simulation.network import GrayFailure
from repro.workload import WorkloadConfig, WorkloadEngine
from repro.worldgen.scenario import build_scenario

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _util import print_table  # noqa: E402
from bench_e19_autoscale import (  # noqa: E402
    AUTOSCALE,
    FLASH_STEPS,
    POOL_SIZE,
    RESOLVER_POOLS,
    TELEMETRY,
    build_world,
    flash_plan,
)

WORLD_SEED = 33
WORKLOAD_SEED = 7

SMOKE_CLIENTS = 16
FULL_CLIENTS = 32
AUTOSCALE_SMOKE_CLIENTS = 24
AUTOSCALE_FULL_CLIENTS = 48
STEP_SECONDS = 20.0
DRAIN_STEPS = 14
REPLICAS = 4

CONTROL_LOSS = 0.95
"""The lossy cell's gray loss probability on the control endpoint.  High
enough that the retransmit budget (8) is exhausted on a meaningful
fraction of exchanges (~63% per exchange), forcing full timeouts and
next-round same-token retries — not just padded latencies."""

OPERATOR_TIMEOUT_MS = 400.0

DEFAULT_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e20.json"
"""The committed, check.sh-gated artifact — written by the *smoke* sweep."""
FULL_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_e20_full.json"
"""Default output of the full sweep, so exploratory runs never clobber the
byte-for-byte-gated smoke artifact."""


def _digest(snapshot: dict[str, float]) -> str:
    """A short stable fingerprint of a run's full snapshot (determinism)."""
    import hashlib

    payload = json.dumps(snapshot, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


# ----------------------------------------------------------------------
# Drain-convergence cells
# ----------------------------------------------------------------------
def drain_world():
    """One store, four replicas, the E17 service-time/retry models — the
    same control-plane regime E15 measured, now with an operator door."""
    config = FederationConfig(
        device_discovery_cache_ttl_seconds=20.0,
        registration_ttl_seconds=60.0,
        client_tile_cache_entries=256,
        service_times=SERVICE_TIMES,
        server_queue_capacity=256,
        retry_policy=RETRY_POLICY,
    )
    return build_scenario(
        store_count=1,
        city_rows=5,
        city_cols=5,
        config=config,
        seed=WORLD_SEED,
        reuse_worlds=True,
        store_replicas=REPLICAS,
    )


def drain_tape(server_id: str) -> ControlSchedule:
    """Drain → undrain → drain again: three operator requests, so the
    lossy cell gets several independent chances to lose one."""
    return ControlSchedule.from_events(
        [
            ControlEvent(2 * STEP_SECONDS, ControlEventKind.DRAIN, server_id),
            ControlEvent(6 * STEP_SECONDS, ControlEventKind.UNDRAIN, server_id),
            ControlEvent(9 * STEP_SECONDS, ControlEventKind.DRAIN, server_id),
        ]
    )


def run_drain_cell(mode: str, clients: int) -> dict[str, object]:
    """One transport mode over the drain tape.

    ``direct`` routes the tape through the API in-process; ``net-healthy``
    pays the control-hop RTT per request; ``net-lossy`` additionally gray-
    fails the control endpoint at :data:`CONTROL_LOSS`.
    """
    scenario = drain_world()
    drained = scenario.store_replica_ids(0)[0]
    transport = "direct" if mode == "direct" else "network"
    engine = WorkloadEngine(
        scenario,
        WorkloadConfig(
            clients=clients,
            steps=DRAIN_STEPS,
            seed=WORKLOAD_SEED,
            step_seconds=STEP_SECONDS,
            control=drain_tape(drained),
            operator=OperatorConfig(transport=transport, timeout_ms=OPERATOR_TIMEOUT_MS),
        ),
    )
    if mode == "net-lossy":
        scenario.federation.network.fault_state().set_gray(
            scenario.federation.discovery_authority_id,
            GrayFailure(loss_probability=CONTROL_LOSS),
        )
    report = engine.run()
    stats = report.operator_stats
    network = scenario.federation.network
    player = engine.control_plane
    # The three transports run byte-identically until the first tape event
    # fires, so its delivery lag isolates the pure transport delta; later
    # events also carry round-position drift from the diverged clocks.
    lag_first = player.delivery_lags[0] if player.delivery_lags else float("inf")
    return {
        "mode": mode,
        "lag_first_s": lag_first,
        "lag_mean_s": stats["delivery_lag_mean"],
        "lag_max_s": stats["delivery_lag_max"],
        "requests": stats["requests"],
        "delivered": stats["delivered"],
        "timeouts": stats["timeouts"],
        "retransmits": float(network.stats.retransmissions),
        "tape_retries": stats["tape_retries"],
        "applied": report.control_stats["events_applied"],
        "converge_p95_s": report.control_stats["converge_p95_s"],
        "failed": float(report.failed_requests),
        "_tape_pending": stats["tape_pending"],
        "_unconverged": report.control_stats["devices_unconverged"],
        "_audit_records": stats["audit_records"],
        "_snapshot_digest": _digest(report.snapshot()),
    }


def run_drain_cells(clients: int) -> list[dict[str, object]]:
    return [run_drain_cell(mode, clients) for mode in ("direct", "net-healthy", "net-lossy")]


# ----------------------------------------------------------------------
# Partitioned-operator cell
# ----------------------------------------------------------------------
def run_partition_cell() -> dict[str, object]:
    """Two consoles, one partition, one audited winner.

    Operator ``east`` (region 0) and operator ``west`` (region 1) target
    the two replicas of one group with conflicting drains.  A region-
    scoped partition cuts ``west`` off from the control endpoint first:
    its request burns the full timeout and goes *pending* — the API never
    saw it.  ``east``'s drain lands.  The partition heals, ``west``
    retries with the same idempotency token, and the group guard turns
    the late arrival into an audited ``conflict``.  Throughout, the group
    keeps a registered positive-weight member — no NXDOMAIN window."""
    scenario = build_scenario(
        store_count=1,
        city_rows=5,
        city_cols=5,
        config=FederationConfig(
            device_discovery_cache_ttl_seconds=20.0,
            registration_ttl_seconds=60.0,
            service_times=SERVICE_TIMES,
            retry_policy=RETRY_POLICY,
        ),
        seed=WORLD_SEED,
        reuse_worlds=True,
        store_replicas=2,
    )
    federation = scenario.federation
    first, second = scenario.store_replica_ids(0)
    group_id = sorted(federation.replica_groups)[0]
    endpoint = federation.discovery_authority_id
    audit = AuditLog()

    def console(name: str, region: int) -> OperatorClient:
        principals = PrincipalRegistry()
        principals.register(name, ALL_PERMISSIONS)
        api = OperatorApi(federation=federation, principals=principals, audit=audit)
        return OperatorClient(
            api=api,
            principal=name,
            transport="network",
            endpoint_id=endpoint,
            region=region,
            timeout_ms=OPERATOR_TIMEOUT_MS,
        )

    east = console("east", 0)
    west = console("west", 1)
    faults = federation.network.fault_state()

    def registered_positive() -> bool:
        return any(
            server_id in federation.registry.registrations
            and federation.srv_of(server_id)[1] > 0
            for server_id in federation.replica_groups[group_id].server_ids
        )

    nxdomain_free = registered_positive()
    # Partition the west console's region away from the control endpoint.
    faults.block(endpoint, regions=(1,))
    west_token = west.next_token()
    cut_off = west.request("drain", second, token=west_token)
    nxdomain_free = nxdomain_free and registered_positive()
    won = east.request("drain", first)
    nxdomain_free = nxdomain_free and registered_positive()
    # Heal; the west console retries the *same* logical request.
    faults.unblock(endpoint, regions=(1,))
    lost = west.request("drain", second, token=west_token)
    nxdomain_free = nxdomain_free and registered_positive()

    weights = sorted(federation.srv_of(server_id)[1] for server_id in (first, second))
    digest = state_digest(federation)

    # Replay determinism: the shared audit log, replayed through a fresh
    # API over a fresh federation, must land the identical state digest.
    fresh = build_scenario(
        store_count=1,
        city_rows=5,
        city_cols=5,
        config=FederationConfig(
            device_discovery_cache_ttl_seconds=20.0,
            registration_ttl_seconds=60.0,
            service_times=SERVICE_TIMES,
            retry_policy=RETRY_POLICY,
        ),
        seed=WORLD_SEED,
        reuse_worlds=True,
        store_replicas=2,
    )
    replay_principals = PrincipalRegistry()
    replay_principals.register("east", ALL_PERMISSIONS)
    replay_principals.register("west", ALL_PERMISSIONS)
    replay_api = OperatorApi(federation=fresh.federation, principals=replay_principals)
    replay_audit(audit.records, replay_api)
    replay_digest = state_digest(fresh.federation)

    return {
        "cut_off_arrived": cut_off.arrived,
        "winner": "east" if won.response.ok else "west",
        "winner_seq": won.response.seq,
        "loser_seq": lost.response.seq,
        "loser_error": lost.response.error or "",
        "west_timeouts": float(west.counters["unreachable"] + west.counters["timeouts"]),
        "drained_weights": weights,
        "nxdomain_free": nxdomain_free,
        "audit_outcomes": [record.outcome for record in audit.records],
        "state_digest": digest,
        "replay_digest": replay_digest,
    }


# ----------------------------------------------------------------------
# Autoscaler reaction-lag cells
# ----------------------------------------------------------------------
def run_reaction_cell(transport: str, clients: int) -> dict[str, object]:
    """The E19 flash-crowd auto cell, scaler batches routed through the
    operator API over ``transport``."""
    scenario = build_world()
    federation = scenario.federation
    group_id = sorted(federation.replica_groups)[0]
    federation.attach_warm_pool(group_id, POOL_SIZE)
    engine = WorkloadEngine(
        scenario,
        WorkloadConfig(
            clients=clients,
            steps=FLASH_STEPS,
            seed=WORKLOAD_SEED,
            step_seconds=STEP_SECONDS,
            resolver_pools=RESOLVER_POOLS,
            faults=flash_plan(scenario),
            telemetry=TELEMETRY,
            autoscale=AUTOSCALE,
            operator=OperatorConfig(transport=transport, timeout_ms=OPERATOR_TIMEOUT_MS),
        ),
    )
    report = engine.run()
    assert engine.operator_api is not None
    first_action_at = next(
        (
            record.at_seconds
            for record in engine.operator_api.audit
            if record.outcome == "applied"
        ),
        float("inf"),
    )
    stats = report.autoscale_stats
    return {
        "transport": transport,
        "first_action_s": first_action_at,
        "promotions": stats["promotions"],
        "ops_applied": stats["ops_applied"],
        "ops_rejected": stats["ops_rejected"],
        "audited": report.operator_stats["audit_records"],
        "_snapshot_digest": _digest(report.snapshot()),
    }


def run_reaction_cells(clients: int) -> list[dict[str, object]]:
    return [run_reaction_cell(transport, clients) for transport in ("direct", "network")]


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------
def by_mode(rows: list[dict[str, object]], key: str = "mode") -> dict[str, dict[str, object]]:
    return {str(row[key]): row for row in rows}


def table_rows(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    return [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]


def verify(
    drain: list[dict[str, object]],
    partition: dict[str, object],
    reaction: list[dict[str, object]],
) -> list[str]:
    """The experiment's claims, checked against the measured cells."""
    failures: list[str] = []
    cells = by_mode(drain)
    direct, healthy, lossy = cells["direct"], cells["net-healthy"], cells["net-lossy"]

    for row in drain:
        if row["_tape_pending"] != 0.0:
            failures.append(f"{row['mode']}: tape never fully delivered")
        if row["applied"] != 3.0:
            failures.append(
                f"{row['mode']}: {row['applied']:.0f} of 3 tape events applied"
            )
        if row["failed"] != 0.0:
            failures.append(
                f"{row['mode']}: {row['failed']:.0f} failed requests — a drain "
                "became an outage"
            )
        if row["_unconverged"] != 0.0:
            failures.append(f"{row['mode']}: fleet never converged on the tape")
    if direct["timeouts"] != 0.0 or direct["retransmits"] != 0.0:
        failures.append("direct: charged network failures on an in-process transport")
    if healthy["lag_first_s"] <= direct["lag_first_s"]:
        failures.append(
            f"net-healthy first-event lag {healthy['lag_first_s']:.3f}s not "
            f"strictly above the direct baseline {direct['lag_first_s']:.3f}s"
        )
    if lossy["lag_first_s"] <= healthy["lag_first_s"]:
        failures.append(
            f"net-lossy first-event lag {lossy['lag_first_s']:.3f}s not above "
            f"net-healthy {healthy['lag_first_s']:.3f}s"
        )
    if lossy["retransmits"] < 1.0:
        failures.append("net-lossy: the gray control endpoint lost nothing")
    if lossy["timeouts"] < 1.0 or lossy["tape_retries"] < 1.0:
        failures.append(
            "net-lossy: no request ever timed out and retried — the loss "
            "rate is not exercising the retry path"
        )

    if partition["cut_off_arrived"]:
        failures.append("partition: the cut-off console's request reached the API")
    if partition["winner"] != "east":
        failures.append("partition: the unpartitioned console did not win")
    if partition["loser_error"] != "conflict":
        failures.append(
            f"partition: the late retry resolved to {partition['loser_error']!r}, "
            "not an audited conflict"
        )
    if not partition["winner_seq"] < partition["loser_seq"]:
        failures.append("partition: audit sequence does not order the winner first")
    if partition["drained_weights"][0] != 0 or partition["drained_weights"][1] <= 0:
        failures.append(
            f"partition: group weights {partition['drained_weights']} — exactly "
            "one replica must be drained"
        )
    if not partition["nxdomain_free"]:
        failures.append("partition: the group lost its last registered member")
    if partition["replay_digest"] != partition["state_digest"]:
        failures.append(
            "partition: audit replay did not reproduce the state digest "
            f"({partition['replay_digest']} != {partition['state_digest']})"
        )

    reaction_cells = by_mode(reaction, key="transport")
    r_direct, r_net = reaction_cells["direct"], reaction_cells["network"]
    for row in reaction:
        if row["promotions"] < 1.0:
            failures.append(
                f"reaction[{row['transport']}]: the autoscaler never promoted"
            )
    if r_net["first_action_s"] <= r_direct["first_action_s"]:
        failures.append(
            f"reaction: networked first action at {r_net['first_action_s']:.3f}s "
            f"is not after the direct transport's {r_direct['first_action_s']:.3f}s"
        )
    return failures


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_e20_networked_drain_lags_direct(benchmark):
    rows = run_drain_cells(SMOKE_CLIENTS)
    print_table("E20 drain transports", table_rows(rows))
    cells = by_mode(rows)
    assert cells["net-healthy"]["lag_first_s"] > cells["direct"]["lag_first_s"]
    assert cells["net-lossy"]["lag_first_s"] > cells["net-healthy"]["lag_first_s"]
    assert all(row["failed"] == 0.0 for row in rows)
    benchmark(lambda: run_drain_cell("net-healthy", SMOKE_CLIENTS))


def test_e20_partitioned_operators_resolve_by_audit_order(benchmark):
    cell = run_partition_cell()
    assert cell["winner"] == "east"
    assert cell["loser_error"] == "conflict"
    assert cell["winner_seq"] < cell["loser_seq"]
    assert cell["nxdomain_free"]
    assert cell["replay_digest"] == cell["state_digest"]
    benchmark(run_partition_cell)


def test_e20_deterministic(benchmark):
    first = run_drain_cell("net-lossy", SMOKE_CLIENTS)
    second = run_drain_cell("net-lossy", SMOKE_CLIENTS)
    assert first["_snapshot_digest"] == second["_snapshot_digest"]
    benchmark(lambda: run_drain_cell("direct", SMOKE_CLIENTS))


# ----------------------------------------------------------------------
# Standalone mode
# ----------------------------------------------------------------------
def emit_json(
    drain: list[dict[str, object]],
    partition: dict[str, object],
    reaction: list[dict[str, object]],
    clients: int,
    path: Path,
) -> None:
    def drain_block(row: dict[str, object]) -> dict[str, object]:
        return {
            "delivery_lag_first_s": row["lag_first_s"],
            "delivery_lag_mean_s": row["lag_mean_s"],
            "delivery_lag_max_s": row["lag_max_s"],
            "requests": row["requests"],
            "delivered": row["delivered"],
            "timeouts": row["timeouts"],
            "retransmits": row["retransmits"],
            "tape_retries": row["tape_retries"],
            "events_applied": row["applied"],
            "converge_p95_s": row["converge_p95_s"],
            "failed_requests": row["failed"],
            "audit_records": row["_audit_records"],
            "snapshot_digest": row["_snapshot_digest"],
        }

    def reaction_block(row: dict[str, object]) -> dict[str, object]:
        return {
            "first_action_s": row["first_action_s"],
            "promotions": row["promotions"],
            "ops_applied": row["ops_applied"],
            "ops_rejected": row["ops_rejected"],
            "audit_records": row["audited"],
            "snapshot_digest": row["_snapshot_digest"],
        }

    payload = {
        "experiment": "E20",
        "description": "the operator API layer: control ops as "
        "authenticated, schema-validated messages over the simulated "
        "network — drain delivery lag per transport, partitioned "
        "operators resolved by audit-log order, autoscaler reaction lag, "
        "audit replay determinism",
        "world_seed": WORLD_SEED,
        "workload_seed": WORKLOAD_SEED,
        "clients": clients,
        "control_loss": CONTROL_LOSS,
        "operator_timeout_ms": OPERATOR_TIMEOUT_MS,
        "drain": {row["mode"]: drain_block(row) for row in drain},
        "partition": {
            "winner": partition["winner"],
            "winner_seq": partition["winner_seq"],
            "loser_seq": partition["loser_seq"],
            "loser_error": partition["loser_error"],
            "west_timeouts": partition["west_timeouts"],
            "drained_weights": partition["drained_weights"],
            "nxdomain_free": partition["nxdomain_free"],
            "audit_outcomes": partition["audit_outcomes"],
            "state_digest": partition["state_digest"],
            "replay_digest": partition["replay_digest"],
        },
        "autoscaler": {row["transport"]: reaction_block(row) for row in reaction},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="the calibrated small-fleet cells (finishes in seconds) for CI "
        "smoke checks",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=f"where to write the cell artifact (smoke default {DEFAULT_JSON_PATH.name} "
        f"— the committed, byte-for-byte-gated artifact; full-sweep default "
        f"{FULL_JSON_PATH.name} so exploration never clobbers the gated file)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing the JSON artifact"
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="fail (exit 1) if the cells take longer than this wall-clock budget",
    )
    args = parser.parse_args(argv)
    clients = SMOKE_CLIENTS if args.smoke else FULL_CLIENTS
    reaction_clients = AUTOSCALE_SMOKE_CLIENTS if args.smoke else AUTOSCALE_FULL_CLIENTS

    started = time.perf_counter()
    drain = run_drain_cells(clients)
    partition = run_partition_cell()
    reaction = run_reaction_cells(reaction_clients)
    elapsed = time.perf_counter() - started
    print_table("E20 drain transports", table_rows(drain))
    print_table(
        "E20 partitioned operators",
        [
            {
                key: partition[key]
                for key in (
                    "winner",
                    "winner_seq",
                    "loser_seq",
                    "loser_error",
                    "west_timeouts",
                    "nxdomain_free",
                )
            }
        ],
    )
    print_table("E20 autoscaler reaction", table_rows(reaction))

    failures = verify(drain, partition, reaction)

    # Determinism: the richest cell (lossy control hop: RNG-drawn
    # retransmits, timeouts, and round retries) must reproduce exactly.
    repeat = run_drain_cell("net-lossy", clients)
    if repeat["_snapshot_digest"] != by_mode(drain)["net-lossy"]["_snapshot_digest"]:
        failures.append("rerun with fixed seed produced a different snapshot")

    json_path = args.json if args.json is not None else (
        DEFAULT_JSON_PATH if args.smoke else FULL_JSON_PATH
    )
    if not args.no_json:
        emit_json(drain, partition, reaction, clients, json_path)
        print(f"\nwrote {json_path}")

    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        failures.append(
            f"cells took {elapsed:.1f}s, over the {args.budget_seconds:.1f}s "
            "budget (hot-path regression?)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    cells = by_mode(drain)
    reaction_cells = by_mode(reaction, key="transport")
    print(
        f"\nOK: first-event drain lag direct {cells['direct']['lag_first_s']:.2f}s "
        f"→ healthy {cells['net-healthy']['lag_first_s']:.2f}s → lossy "
        f"{cells['net-lossy']['lag_first_s']:.2f}s; partition winner seq "
        f"{partition['winner_seq']} < loser {partition['loser_seq']} "
        f"({partition['loser_error']}); autoscaler first action "
        f"{reaction_cells['direct']['first_action_s']:.1f}s → "
        f"{reaction_cells['network']['first_action_s']:.1f}s networked; "
        f"replay digest {partition['replay_digest']} ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
