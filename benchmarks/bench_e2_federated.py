"""E2 — Figure 2: the OpenFLAME federated architecture serving the same services.

Runs the five base services through the federated client against the same
world as E1 and reports the federation overhead (messages and simulated
latency per request, DNS lookups) relative to the one-exchange centralized
baseline.
"""

from __future__ import annotations

import random

import pytest

from repro.geometry.bbox import BoundingBox
from repro.mapserver.geocode import Address

from _util import print_table


@pytest.fixture(scope="module")
def warm_client(bench_scenario):
    """A client whose resolver cache has been warmed with one pass of queries."""
    client = bench_scenario.federation.client()
    store = bench_scenario.stores[0]
    client.search("seaweed", near=store.entrance, radius_meters=300.0)
    return client


def _measure_network(scenario, fn, repeats: int = 10) -> dict[str, float]:
    scenario.federation.reset_network_stats()
    for _ in range(repeats):
        fn()
    stats = scenario.federation.network.stats
    return {
        "messages_per_request": stats.messages_sent / repeats,
        "sim_latency_ms": stats.total_latency_ms / repeats,
    }


def test_e2_federated_search(benchmark, bench_scenario, warm_client):
    store = bench_scenario.stores[0]
    result = benchmark(lambda: warm_client.search("seaweed", near=store.entrance, radius_meters=300.0))
    assert len(result) > 0
    info = _measure_network(
        bench_scenario, lambda: warm_client.search("seaweed", near=store.entrance, radius_meters=300.0)
    )
    benchmark.extra_info.update(info)
    print_table("E2 federated search", [{"service": "search", **info}])


def test_e2_federated_geocode(benchmark, bench_scenario, warm_client):
    address = Address.parse(
        f"{next(iter(bench_scenario.city.building_addresses))}, {bench_scenario.city.city_name}"
    )
    result = benchmark(lambda: warm_client.geocoder.geocode(address))
    assert result.best is not None
    info = _measure_network(bench_scenario, lambda: warm_client.geocoder.geocode(address))
    benchmark.extra_info.update(info)
    print_table("E2 federated geocode", [{"service": "geocode", **info}])


def test_e2_federated_routing(benchmark, bench_scenario, warm_client):
    rng = random.Random(1)
    pairs = [
        (bench_scenario.city.random_street_point(rng), bench_scenario.city.random_street_point(rng))
        for _ in range(8)
    ]
    counter = iter(range(10**9))

    def route_once():
        index = next(counter) % len(pairs)
        return warm_client.route(*pairs[index])

    benchmark(route_once)
    info = _measure_network(bench_scenario, route_once)
    benchmark.extra_info.update(info)
    print_table("E2 federated routing", [{"service": "routing", **info}])


def test_e2_federated_localization(benchmark, bench_scenario, warm_client):
    store = bench_scenario.stores[0]
    rng = random.Random(2)
    true_local = store.random_interior_point(rng)
    true_geo = store.local_to_geographic(true_local)
    cues = store.sense_cues(true_local, rng)
    result = benchmark(lambda: warm_client.localize(true_geo, cues))
    assert result.best is not None
    info = _measure_network(bench_scenario, lambda: warm_client.localize(true_geo, cues))
    benchmark.extra_info.update(info)
    print_table("E2 federated localization", [{"service": "localization", **info}])


def test_e2_federated_tiles(benchmark, bench_scenario, warm_client):
    store = bench_scenario.stores[0]
    viewport = BoundingBox.around(store.entrance, 50.0)
    result = benchmark(lambda: warm_client.render_viewport(viewport, zoom=19))
    assert result.tiles_downloaded > 0
    info = _measure_network(bench_scenario, lambda: warm_client.render_viewport(viewport, zoom=19))
    benchmark.extra_info.update(info)
    print_table("E2 federated tiles", [{"service": "tiles", **info}])


def test_e2_overhead_summary(benchmark, bench_scenario, warm_client):
    """The headline comparison row: federated vs centralized message counts."""
    store = bench_scenario.stores[0]
    central = bench_scenario.centralized

    federated = _measure_network(
        bench_scenario, lambda: warm_client.search("seaweed", near=store.entrance, radius_meters=300.0)
    )
    central.network.reset_stats()
    for _ in range(10):
        central.search("seaweed", near=store.entrance, radius_meters=300.0)
    centralized = {
        "messages_per_request": central.network.stats.messages_sent / 10,
        "sim_latency_ms": central.network.stats.total_latency_ms / 10,
    }
    rows = [
        {"architecture": "federated (Fig 2)", **federated},
        {"architecture": "centralized (Fig 1)", **centralized},
    ]
    benchmark.extra_info["federated_messages"] = federated["messages_per_request"]
    benchmark.extra_info["centralized_messages"] = centralized["messages_per_request"]
    print_table("E2 search overhead: federated vs centralized", rows)
    benchmark(lambda: warm_client.search("seaweed", near=store.entrance, radius_meters=300.0))
