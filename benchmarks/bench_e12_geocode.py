"""E12 — Section 4 / 5.2: forward and reverse geocoding over federated maps.

Measures the two-stage federated geocode flow (coarse world-map lookup, then
precise lookup in discovered maps): success rate and positional error for
street addresses and for indoor destinations, the per-query fan-out, and
reverse-geocode precision indoors versus the centralized baseline.
"""

from __future__ import annotations

from repro.simulation.metrics import Summary

from _util import print_table


def test_e12_street_address_geocoding(benchmark, bench_scenario, bench_client):
    """Street addresses resolve through the world provider with small error."""
    addresses = list(bench_scenario.city.building_addresses.items())[:20]
    error = Summary("error")
    resolved = 0
    fanout = Summary("fanout")
    for address, location in addresses:
        result = bench_client.geocode(f"{address}, {bench_scenario.city.city_name}")
        fanout.observe(result.servers_consulted)
        if result.best is None:
            continue
        resolved += 1
        error.observe(result.best.location.distance_to(location))
    rows = [
        {
            "queries": len(addresses),
            "resolved_fraction": resolved / len(addresses),
            "mean_error_m": error.mean,
            "mean_servers_consulted": fanout.mean,
        }
    ]
    print_table("E12 federated forward geocode: street addresses", rows)
    assert rows[0]["resolved_fraction"] > 0.9
    assert rows[0]["mean_error_m"] < 30.0
    benchmark.extra_info.update(rows[0])
    address, _ = addresses[0]
    benchmark(lambda: bench_client.geocode(f"{address}, {bench_scenario.city.city_name}"))


def test_e12_indoor_destination_geocoding(benchmark, bench_scenario, bench_client):
    """Indoor destinations (store entrances) resolve via the two-stage flow."""
    rows = []
    for store in bench_scenario.stores:
        entrance_address = None
        for node in store.map_data.nodes():
            if "addr:full" in node.tags:
                entrance_address = node.tags["addr:full"]
                break
        query = f"{store.name} entrance, {entrance_address}"
        result = bench_client.geocode(query)
        error = result.best.location.distance_to(store.entrance) if result.best else float("nan")
        rows.append(
            {
                "store": store.name,
                "resolved": result.best is not None,
                "error_m": error,
                "coarse_stage_used": result.coarse_location is not None,
            }
        )
    print_table("E12 federated forward geocode: indoor destinations", rows)
    assert all(row["resolved"] for row in rows)
    store = bench_scenario.stores[0]
    entrance_address = next(
        node.tags["addr:full"] for node in store.map_data.nodes() if "addr:full" in node.tags
    )
    benchmark(lambda: bench_client.geocode(f"{store.name} entrance, {entrance_address}"))


def test_e12_reverse_geocode_precision(benchmark, bench_scenario, bench_client):
    """Reverse geocoding an indoor point: federated snaps to the shelf, the
    centralized baseline can only snap to an outdoor feature far away."""
    store = bench_scenario.stores[0]
    federated_distance = Summary("federated")
    centralized_distance = Summary("centralized")
    samples = list(store.product_locations.values())[:10]
    for location in samples:
        federated = bench_client.reverse_geocode(location, max_distance_meters=150.0)
        if federated.best is not None:
            federated_distance.observe(federated.best.distance_meters)
        central = bench_scenario.centralized.reverse_geocode(location, max_distance_meters=500.0)
        if central is not None:
            centralized_distance.observe(central.distance_meters)
    rows = [
        {"system": "federated", "mean_snap_distance_m": federated_distance.mean, "answers": federated_distance.count},
        {"system": "centralized", "mean_snap_distance_m": centralized_distance.mean, "answers": centralized_distance.count},
    ]
    print_table("E12 reverse geocode of indoor points", rows)
    assert federated_distance.mean < centralized_distance.mean
    benchmark.extra_info["federated_snap_m"] = federated_distance.mean
    location = samples[0]
    benchmark(lambda: bench_client.reverse_geocode(location, max_distance_meters=150.0))
