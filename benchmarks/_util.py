"""Small helpers shared by the benchmark files."""

from __future__ import annotations


def md1_mean_wait_ms(service_ms: float, utilization: float) -> float:
    """Mean queueing wait of an M/D/1 server (milliseconds).

    Pollaczek–Khinchine with deterministic service: Wq = ρ·S / (2·(1−ρ)).
    Used as an analytic sanity check on the measured wait-time curves: the
    simulated arrival process is round-phased rather than Poisson, so the
    comparison is a sanity band, not an identity.  Utilization at or above
    1.0 has no steady state — callers must not ask.
    """
    if service_ms < 0.0:
        raise ValueError("service time cannot be negative")
    if not (0.0 <= utilization < 1.0):
        raise ValueError("M/D/1 has a steady state only for utilization in [0, 1)")
    return utilization * service_ms / (2.0 * (1.0 - utilization))


def batch_md1_mean_wait_ms(service_ms: float, batch_size: float, utilization: float) -> float:
    """Mean wait of an M/D/1 queue fed one batch of ``batch_size`` per arrival.

    The fleet engine issues each round's requests from the same simulated
    instant, so a server's arrivals are closer to periodic *batches* than to
    a Poisson stream.  If a whole round's K requests truly landed at one
    instant, the k-th would wait (k−1)·S, giving a batch mean of
    ``(K−1)/2·S`` on top of the Poisson-congestion term — the upper edge of
    the analytic band (clients' differing DNS walks spread real arrivals
    out, so measured waits fall below it).
    """
    if batch_size < 1.0:
        return md1_mean_wait_ms(service_ms, utilization)
    return (batch_size - 1.0) / 2.0 * service_ms + md1_mean_wait_ms(service_ms, utilization)


def check_md1_sanity(
    server_stats: dict[str, dict[str, float]],
    steps: int,
    max_utilization: float = 0.7,
    rel_tolerance: float = 1.5,
    abs_slack_ms: float = 0.5,
) -> list[str]:
    """Check measured mean waits against the M/D/1 analytic band.

    For every server comfortably below saturation (utilization ≤
    ``max_utilization``; beyond that the finite buffer dominates), the
    measured mean wait must lie between the Poisson M/D/1 lower bound (the
    least bursty arrival process at the observed rate) and the
    one-batch-per-round upper bound (the most bursty the round structure
    allows), each with tolerance.  Returns human-readable failure strings
    (empty = all sane) so callers can aggregate across sweep rows.
    """
    failures: list[str] = []
    for server_id, stats in sorted(server_stats.items()):
        served = stats.get("served", 0.0)
        utilization = stats.get("utilization", 0.0)
        if served < 10 or not (0.0 < utilization <= max_utilization):
            continue
        mean_service_ms = stats.get("busy_ms", 0.0) / served
        measured = stats.get("mean_wait_ms", 0.0)
        lower = md1_mean_wait_ms(mean_service_ms, min(utilization, 0.999))
        batch = stats.get("arrivals", served) / max(1, steps)
        upper = batch_md1_mean_wait_ms(mean_service_ms, batch, min(utilization, 0.999))
        if measured > rel_tolerance * upper + abs_slack_ms:
            failures.append(
                f"{server_id}: measured wait {measured:.3f}ms above batch-M/D/1 "
                f"upper bound {upper:.3f}ms (util {utilization:.2f}, batch {batch:.1f})"
            )
        elif measured < lower / rel_tolerance - abs_slack_ms:
            failures.append(
                f"{server_id}: measured wait {measured:.3f}ms below M/D/1 "
                f"lower bound {lower:.3f}ms (util {utilization:.2f})"
            )
    return failures


def print_table(title: str, rows: list[dict[str, object]]) -> None:
    """Print an experiment's result rows in a compact aligned table."""
    print(f"\n## {title}")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    header = " | ".join(f"{key:>18s}" for key in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for key in keys:
            value = row.get(key)
            if isinstance(value, float):
                cells.append(f"{value:>18.3f}")
            else:
                cells.append(f"{str(value):>18s}")
        print(" | ".join(cells))
