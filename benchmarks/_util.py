"""Small helpers shared by the benchmark files."""

from __future__ import annotations


def print_table(title: str, rows: list[dict[str, object]]) -> None:
    """Print an experiment's result rows in a compact aligned table."""
    print(f"\n## {title}")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    header = " | ".join(f"{key:>18s}" for key in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for key in keys:
            value = row.get(key)
            if isinstance(value, float):
                cells.append(f"{value:>18.3f}")
            else:
                cells.append(f"{str(value):>18s}")
        print(" | ".join(cells))
