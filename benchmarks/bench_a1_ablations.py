"""A1/A2 — design-choice ablations called out in DESIGN.md.

A1: the device-side discovery cache (client keeps per-cell results for a short
TTL on top of the resolver's DNS cache) — how much of the federated overhead
measured in E2/E3 it removes for a user who stays in one place.

A2: the discovery naming level — coarser cells mean fewer DNS names and
lookups but more false-positive server contacts; finer cells the reverse.
This is the central tuning knob of the §5.1 naming scheme.
"""

from __future__ import annotations

from repro.core.config import FederationConfig
from repro.core.federation import Federation
from repro.geometry.point import LatLng
from repro.spatialindex.covering import CoveringOptions
from repro.worldgen.indoor import generate_store
from repro.worldgen.outdoor import generate_city

from _util import print_table

ANCHOR = LatLng(40.4420, -79.9580)


def _small_world(config: FederationConfig) -> tuple[Federation, LatLng]:
    federation = Federation(config=config)
    city = generate_city(rows=4, cols=4, seed=5)
    federation.add_map_server("city.maps.example", city.map_data, is_world_provider=True)
    store = generate_store("store.maps.example", ANCHOR, seed=6)
    server = federation.add_map_server("store.maps.example", store.map_data)
    store.equip_map_server(server)
    return federation, store.entrance


def test_a1_device_cache_ablation(benchmark):
    """Repeated same-place discovery with and without the device-side cache."""
    rows = []
    for label, ttl in (("no device cache", 0.0), ("device cache (60 s TTL)", 60.0)):
        federation, entrance = _small_world(
            FederationConfig(device_discovery_cache_ttl_seconds=ttl)
        )
        client = federation.client()
        client.discover(entrance, uncertainty_meters=60.0)  # warm everything
        federation.reset_network_stats()
        repeats = 20
        for _ in range(repeats):
            client.discover(entrance, uncertainty_meters=60.0)
        rows.append(
            {
                "configuration": label,
                "msgs_per_discovery": federation.network.stats.messages_sent / repeats,
                "sim_latency_ms": federation.network.stats.total_latency_ms / repeats,
            }
        )
    print_table("A1 device-side discovery cache", rows)
    assert rows[1]["msgs_per_discovery"] < rows[0]["msgs_per_discovery"]
    benchmark.extra_info["cached_msgs"] = rows[1]["msgs_per_discovery"]

    federation, entrance = _small_world(FederationConfig(device_discovery_cache_ttl_seconds=60.0))
    client = federation.client()
    client.discover(entrance, uncertainty_meters=60.0)
    benchmark(lambda: client.discover(entrance, uncertainty_meters=60.0))


def test_a2_discovery_level_ablation(benchmark):
    """Sweep the discovery/registration cell level (the §5.1 naming granularity)."""
    rows = []
    for level in (14, 16, 18):
        config = FederationConfig(
            discovery_level=level,
            discovery_ancestor_levels=max(4, level - 10),
            registration_covering=CoveringOptions(min_level=max(10, level - 4), max_level=level, max_cells=64),
        )
        federation, entrance = _small_world(config)
        client = federation.client()

        # Cost: DNS records published + lookups for a cold discovery.
        records = federation.registry.total_records
        federation.resolver.cache.flush()
        federation.reset_network_stats()
        result = client.discover(entrance, uncertainty_meters=60.0)
        cold_messages = federation.network.stats.messages_sent

        # Precision: how often a probe 250 m away still discovers the store
        # (a false positive the client must filter).
        false_positives = 0
        probes = 24
        for index in range(probes):
            probe = entrance.destination(360.0 * index / probes, 250.0)
            if "store.maps.example" in client.discover(probe, uncertainty_meters=10.0).server_ids:
                false_positives += 1

        rows.append(
            {
                "cell_level": level,
                "dns_records": records,
                "cold_discovery_msgs": float(cold_messages),
                "servers_found": len(result.server_ids),
                "false_positive_rate_250m": false_positives / probes,
            }
        )
    print_table("A2 discovery naming level ablation", rows)
    # Finer levels should reduce distant false positives.
    assert rows[-1]["false_positive_rate_250m"] <= rows[0]["false_positive_rate_250m"]
    benchmark.extra_info["levels"] = [row["cell_level"] for row in rows]

    federation, entrance = _small_world(FederationConfig())
    client = federation.client()
    benchmark(lambda: client.discover(entrance, uncertainty_meters=60.0))
